"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that editable installs work in offline environments whose
setuptools cannot build PEP 660 wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
