"""Setuptools configuration for the ISS reproduction.

The repo is runnable in place (``PYTHONPATH=src``, see the Makefile); an
install additionally provides the live-deployment console scripts::

    repro-kv-server      # boot a live localhost cluster (repro.kv_server)
    repro-kv-client      # put/get/cas against it (repro.kv_client)
    repro-trace-report   # summarise an exported trace (repro.trace_report)

Offline editable installs: ``pip install -e . --no-use-pep517``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-iss",
    version="1.0.0",
    description=(
        "Reproduction of ISS (Insanely Scalable SMR): deterministic "
        "simulator plus a live TCP deployment backend"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-kv-server=repro.kv_server:main",
            "repro-kv-client=repro.kv_client:main",
            "repro-trace-report=repro.trace_report:main",
        ]
    },
)
