"""Deterministic discrete-event simulator.

All ISS components run on top of this event loop instead of real threads and
sockets.  Virtual time is a float in seconds.  Determinism matters: given the
same seeds and configuration, every run produces the same schedule, which the
test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class _Event:
    """Queue entry; ordering is handled by the (time, seq) heap tuple."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False


class Timer:
    """Handle for a scheduled callback; supports cancellation and rescheduling."""

    def __init__(self, sim: "Simulator", event: _Event):
        self._sim = sim
        self._event = event

    @property
    def fire_time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled and self._event.time >= self._sim.now

    def cancel(self) -> None:
        self._event.cancelled = True

    def reset(self, delay: float) -> "Timer":
        """Cancel this timer and schedule the same callback ``delay`` from now."""
        self.cancel()
        new = self._sim.schedule(delay, self._event.callback)
        self._event = new._event
        return self


class Simulator:
    """A minimal but complete discrete-event scheduler.

    Typical usage::

        sim = Simulator(seed=1)
        sim.schedule(0.5, lambda: print("hello at t=0.5"))
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0):
        #: Heap of ``(time, seq, event)`` tuples; float/int comparison keeps
        #: heap operations cheap even with millions of events.
        self._queue: List[tuple] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        #: Number of events executed so far (useful for profiling tests).
        self.events_executed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = _Event(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return Timer(self, event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback)

    def call_soon(self, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.schedule(0.0, callback)

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final virtual time."""
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0][2]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = max(self._now, event.time)
                event.callback()
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and (not self._queue or self._peek_time() > until):
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events`` as a safety net)."""
        return self.run(max_events=max_events)

    def _peek_time(self) -> float:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else float("inf")

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _t, _s, e in self._queue if not e.cancelled)
