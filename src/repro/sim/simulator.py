"""Deterministic discrete-event simulator.

All ISS components run on top of this event loop instead of real threads and
sockets.  Virtual time is a float in seconds.  Determinism matters: given the
same seeds and configuration, every run produces the same schedule, which the
test suite relies on.

The scheduler has two entry points with identical ordering semantics:

* :meth:`Simulator.schedule` returns a :class:`Timer` handle supporting
  cancellation and rescheduling (protocol timeouts, pacers, heartbeats);
* :meth:`Simulator.schedule_callback` is the allocation-free fast path used
  for the one-shot events that dominate a run (message deliveries and the
  wire batcher's flush ticks): it pushes the bare callback onto the heap
  with no ``_Event``/``Timer`` wrapper.

Both paths draw sequence numbers from the same counter, so interleaving them
preserves the global (time, insertion) order.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class _Event:
    """Queue entry for cancellable timers; heap order comes from the
    ``(time, seq)`` tuple prefix."""

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False


class Timer:
    """Handle for a scheduled callback; supports cancellation and rescheduling."""

    def __init__(self, sim: "Simulator", event: _Event):
        self._sim = sim
        self._event = event

    @property
    def fire_time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the callback is still going to run: not cancelled and
        not yet fired."""
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        self._sim._cancel_event(self._event)

    def reset(self, delay: float) -> "Timer":
        """Cancel this timer and schedule the same callback ``delay`` from now."""
        self.cancel()
        new = self._sim.schedule(delay, self._event.callback)
        self._event = new._event
        return self


#: Compaction threshold: rebuild the heap once more than half of it is
#: cancelled entries (and it is large enough for the rebuild to pay off).
_COMPACT_MIN_SIZE = 64


class Simulator:
    """A minimal but complete discrete-event scheduler.

    Typical usage::

        sim = Simulator(seed=1)
        sim.schedule(0.5, lambda: print("hello at t=0.5"))
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0):
        #: Heap of ``(time, seq, item)`` tuples where ``item`` is either a
        #: cancellable ``_Event`` or a bare callback (fast path).  The unique
        #: ``seq`` guarantees comparison never reaches ``item``.
        self._queue: List[tuple] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        #: Number of events executed so far (useful for profiling tests).
        self.events_executed = 0
        #: Live (scheduled, not cancelled, not executed) events — O(1) pending.
        self._live = 0
        #: Cancelled events still sitting in the heap awaiting lazy removal.
        self._stale = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = _Event(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        self._live += 1
        return Timer(self, event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback)

    def call_soon(self, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.schedule(0.0, callback)

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Allocation-free fast path: schedule a one-shot, non-cancellable
        callback ``delay`` seconds from now.

        Used for the events that dominate large runs (message deliveries,
        wire-batch flush ticks); same ordering semantics as
        :meth:`schedule`, but no ``Timer`` handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))
        self._live += 1

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_callback`."""
        self.schedule_callback(max(0.0, time - self._now), callback)

    # ---------------------------------------------------------- cancellation
    def _cancel_event(self, event: _Event) -> None:
        """Mark a timer event cancelled; its heap entry is removed lazily."""
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._live -= 1
        self._stale += 1
        if self._stale * 2 > len(self._queue) and len(self._queue) >= _COMPACT_MIN_SIZE:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place, so that a loop
        holding a reference to the queue list keeps seeing the live heap)."""
        self._queue[:] = [
            entry
            for entry in self._queue
            if not (entry[2].__class__ is _Event and entry[2].cancelled)
        ]
        heapq.heapify(self._queue)
        self._stale = 0

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final virtual time."""
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        event_cls = _Event
        try:
            while queue:
                head = queue[0]
                item = head[2]
                if item.__class__ is event_cls:
                    if item.cancelled:
                        pop(queue)
                        self._stale -= 1
                        continue
                    callback = item.callback
                else:
                    callback = item
                time = head[0]
                if until is not None and time > until:
                    break
                pop(queue)
                # The event is no longer pending once popped — decrement
                # before the callback so a raising callback cannot desync
                # the O(1) pending_events counter.
                self._live -= 1
                if time > self._now:
                    self._now = time
                if callback is not item:
                    item.fired = True
                callback()
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and (not queue or self._peek_time() > until):
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events`` as a safety net)."""
        return self.run(max_events=max_events)

    def _peek_time(self) -> float:
        queue = self._queue
        while queue:
            item = queue[0][2]
            if item.__class__ is _Event and item.cancelled:
                heapq.heappop(queue)
                self._stale -= 1
                continue
            return queue[0][0]
        return float("inf")

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live
