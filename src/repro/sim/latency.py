"""WAN latency model.

The paper deploys nodes uniformly across 16 datacenters spread over Europe,
America, Australia and Asia (Section 6.1).  We reproduce that topology with a
synthetic latency matrix: datacenters are placed on a ring of continents and
the one-way latency between two datacenters grows with their "distance",
bounded by a configurable mean.  The exact milliseconds do not matter for the
reproduction; what matters is that cross-datacenter hops cost tens of
milliseconds while intra-datacenter hops cost sub-millisecond, as on the real
testbed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core.config import NetworkConfig
from ..core.types import NodeId


#: Names of the 16 datacenter locations used in the paper's deployment
#: (IBM Cloud regions across four continents).  Only used for reporting.
DATACENTER_NAMES: Tuple[str, ...] = (
    "dallas", "washington", "san-jose", "toronto",
    "frankfurt", "london", "paris", "milan",
    "amsterdam", "madrid", "sao-paulo", "mexico",
    "tokyo", "osaka", "sydney", "chennai",
)


class LatencyModel:
    """Pairwise one-way latency between nodes placed in datacenters."""

    def __init__(self, config: NetworkConfig, num_nodes: int):
        config.validate()
        self.config = config
        self.num_nodes = num_nodes
        self._rng = random.Random(config.random_seed)
        self.placement: Dict[NodeId, int] = {
            node: node % config.num_datacenters for node in range(num_nodes)
        }
        if config.dc_latency_matrix is not None:
            # Explicit measured matrix (e.g. the WAN-region scenarios);
            # copied so later config mutation cannot skew a running model.
            self._dc_latency = [list(row) for row in config.dc_latency_matrix]
        else:
            self._dc_latency = self._build_dc_matrix(config.num_datacenters)

    def _build_dc_matrix(self, num_dcs: int) -> List[List[float]]:
        """Build a symmetric datacenter-to-datacenter latency matrix.

        Distance on a ring of datacenters is used as a proxy for geographic
        distance; latencies are spread between 25% and 175% of the configured
        mean inter-datacenter latency.
        """
        base = self.config.inter_dc_latency
        matrix = [[0.0] * num_dcs for _ in range(num_dcs)]
        for a in range(num_dcs):
            for b in range(a + 1, num_dcs):
                ring_distance = min(abs(a - b), num_dcs - abs(a - b))
                max_distance = max(1, num_dcs // 2)
                scale = 0.25 + 1.5 * (ring_distance / max_distance)
                latency = base * scale
                matrix[a][b] = latency
                matrix[b][a] = latency
        return matrix

    def datacenter_of(self, node: NodeId) -> int:
        return self.placement[node]

    def dc_latency(self, dc_a: int, dc_b: int) -> float:
        """One-way base latency between two datacenters (seconds).

        Intra-datacenter pairs return the configured intra-DC latency.
        Used by the harness to derive the sharded engine's conservative
        lookahead (minimum latency between datacenters in different
        shards).
        """
        if dc_a == dc_b:
            return self.config.intra_dc_latency
        return self._dc_latency[dc_a][dc_b]

    def datacenter_name(self, node: NodeId) -> str:
        dc = self.placement[node] % len(DATACENTER_NAMES)
        return DATACENTER_NAMES[dc]

    def base_latency(self, src: NodeId, dst: NodeId) -> float:
        """One-way propagation latency between two nodes, without jitter."""
        if src == dst:
            return 0.0
        dc_src = self.placement.get(src, src % self.config.num_datacenters)
        dc_dst = self.placement.get(dst, dst % self.config.num_datacenters)
        if dc_src == dc_dst:
            return self.config.intra_dc_latency
        return self._dc_latency[dc_src][dc_dst]

    def sample_latency(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """Base latency plus multiplicative jitter drawn from ``rng``."""
        base = self.base_latency(src, dst)
        if base == 0.0:
            return 0.0
        jitter = self.config.jitter
        if jitter <= 0:
            return base
        factor = 1.0 + rng.uniform(-jitter, jitter)
        return max(0.0, base * factor)

    def mean_latency(self) -> float:
        """Average pairwise latency across all node pairs (reporting aid)."""
        total = 0.0
        pairs = 0
        for a in range(self.num_nodes):
            for b in range(self.num_nodes):
                if a == b:
                    continue
                total += self.base_latency(a, b)
                pairs += 1
        return total / pairs if pairs else 0.0

    def register_extra_endpoints(self, endpoints: Sequence[NodeId]) -> None:
        """Place additional endpoints (e.g. clients) across datacenters."""
        for endpoint in endpoints:
            if endpoint not in self.placement:
                self.placement[endpoint] = (
                    self._rng.randrange(self.config.num_datacenters)
                )

    def register_extra_nodes(self, nodes: Sequence[NodeId]) -> None:
        """Place replica endpoints beyond the genesis set (dynamic-membership
        joiners) with the same deterministic round-robin rule genesis nodes
        use — no RNG draw, so scheduling a join cannot perturb the placement
        of anything registered after it."""
        for node in nodes:
            if node not in self.placement:
                self.placement[node] = node % self.config.num_datacenters
