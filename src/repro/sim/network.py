"""Simulated message-passing network with bandwidth and latency modelling.

The network reproduces the resource that drives the paper's scalability
result: every node owns a network interface with finite bandwidth
(1 Gbps in the paper's testbed) on which outgoing messages are *serialised*.
A single leader that must push a batch to ``n-1`` followers therefore pays
``(n-1) * batch_bytes / bandwidth`` of NIC time per decision, which is what
caps single-leader throughput at roughly ``1/n``.  ISS spreads proposals over
many leaders, so the aggregate NIC capacity grows with ``n``.

Messages are delivered point-to-point with a WAN propagation latency drawn
from :class:`repro.sim.latency.LatencyModel` plus optional jitter, and can be
dropped or blocked by crash faults and partitions.  On top of the per-node
NIC, ``NetworkConfig.link_bandwidth_bps`` optionally models per-directed-link
serialisation: a saturated link queues back-to-back wire messages (batched
frames included), which is the contention the NIC-only model hides once
batching amortises the sender's NIC events.

``send`` is the single hottest call in large simulations (one per message),
so its common path is deliberately slim: the wire-size accessor is resolved
once per message *type*, fault/partition/filter checks cost one truthiness
test each when no fault is configured, and delivery is scheduled through the
simulator's allocation-free callback path.

When ``NetworkConfig.batch_flush_interval`` is positive, small batchable
messages (protocol votes, client requests and acknowledgements — see
:mod:`repro.sim.batching`) are additionally coalesced per (src, dst, flush
tick) into single wire frames before paying any of those costs; receivers
still see each payload individually.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.config import NetworkConfig
from ..core.types import NodeId
from ..runtime.wire import (
    MessageBatcher,
    MessageBatchMsg,
    is_batchable,
    wire_size,
)
from .chaos import (
    DROP_CRASH,
    DROP_LINK_FAULT,
    DROP_LINK_FILTER,
    DROP_NO_HANDLER,
    DROP_PARTITION,
    DROP_RANDOM,
    ActiveLinkFault,
    LinkFaultSpec,
)
from .latency import LatencyModel
from .simulator import Simulator

#: A message handler registered by an endpoint: ``handler(src, message)``.
MessageHandler = Callable[[NodeId, object], None]

#: Optional filter applied to every message: return False to drop it.
#: Signature: ``fn(src, dst, message) -> bool``.
LinkFilter = Callable[[NodeId, NodeId, object], bool]

#: Per-node adversarial send hook (see :mod:`repro.sim.adversary`):
#: ``fn(dst, message)`` returns the messages actually put on the wire
#: towards ``dst`` — transformed, duplicated, or none at all.
AdversarialSendHook = Callable[[NodeId, object], Iterable[object]]

@dataclass
class NetworkStats:
    """Aggregate traffic statistics, useful for complexity assertions in tests."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    #: Wire batches among ``messages_sent`` and logical payloads inside them
    #: (see :mod:`repro.sim.batching`; both stay 0 with batching disabled).
    batches_sent: int = 0
    payloads_batched: int = 0
    per_node_bytes_sent: Counter = field(default_factory=Counter)
    per_node_messages_sent: Counter = field(default_factory=Counter)
    #: ``messages_dropped`` broken down by cause (see
    #: :data:`repro.sim.chaos.DROP_CAUSES`: crash / partition / link-filter /
    #: random / link-fault / no-handler), so scenarios can tell a partition
    #: drop from a lossy link from a crashed peer.
    dropped_by_cause: Counter = field(default_factory=Counter)
    #: Lossy-link retransmissions performed by the retransmit transport
    #: (total and per source node).  Unlike the per-fault counters on
    #: :class:`~repro.sim.chaos.ActiveLinkFault` these survive fault healing,
    #: so end-of-run reports can still attribute the traffic.
    retransmissions: int = 0
    retransmissions_by_node: Counter = field(default_factory=Counter)

    def record_send(self, src: NodeId, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.per_node_bytes_sent[src] += size
        self.per_node_messages_sent[src] += 1

    def record_drop(self, cause: str) -> None:
        self.messages_dropped += 1
        self.dropped_by_cause[cause] += 1


class Network:
    """Point-to-point authenticated-channel network simulation.

    Endpoints (nodes and clients) register a handler; ``send`` models NIC
    serialisation at the sender, propagation latency, jitter, and a small
    processing delay at the receiver before invoking the handler inside the
    discrete-event simulator.
    """

    def __init__(self, sim: Simulator, config: NetworkConfig, latency: LatencyModel):
        config.validate()
        self.sim = sim
        self.config = config
        self.latency = latency
        self._rng = random.Random(config.random_seed ^ 0x5EED)
        self._handlers: Dict[NodeId, MessageHandler] = {}
        #: Virtual time at which each endpoint's NIC becomes free again.
        self._nic_free_at: Dict[NodeId, float] = {}
        #: Virtual time each directed link finishes its queued transmissions
        #: (only populated when ``config.link_bandwidth_bps`` > 0).
        self._link_free_at: Dict[Tuple[NodeId, NodeId], float] = {}
        #: Shard-aware delivery scheduling when the simulator offers it
        #: (see :meth:`repro.sim.sharded.ShardedSimulator.schedule_callback_for`):
        #: deliveries queue in the *destination's* shard, turning cross-shard
        #: sends into horizon-stamped handoffs.  ``None`` on the single
        #: engine, whose fast path stays untouched.
        self._schedule_delivery = getattr(sim, "schedule_callback_for", None)
        self._crashed: Set[NodeId] = set()
        #: Current partition: a node-to-group mapping; messages across groups drop.
        self._partition_group: Dict[NodeId, int] = {}
        #: Bridge endpoints of the current partition: connected to every group.
        self._partition_bridges: Set[NodeId] = set()
        #: Installed link faults per directed link (see :mod:`repro.sim.chaos`);
        #: empty in chaos-free runs, so the hot path pays one truthiness test.
        self._link_faults: Dict[Tuple[NodeId, NodeId], List[ActiveLinkFault]] = {}
        self._link_filters: List[LinkFilter] = []
        #: Adversarial send hooks by node (empty in non-Byzantine runs, so
        #: the hot path pays one truthiness test).
        self._adversaries: Dict[NodeId, AdversarialSendHook] = {}
        self.stats = NetworkStats()
        #: Observability hook (``repro.obs.RequestTracer``); installed by the
        #: harness only when tracing is enabled, ``None`` otherwise.  Only
        #: rare paths (drops, retransmits) consult it.
        self.tracer = None
        #: Wire batcher coalescing small batchable messages per (src, dst,
        #: flush tick); ``None`` when batching is disabled (the default).
        self.batcher: Optional[MessageBatcher] = None
        if config.batch_flush_interval > 0.0:
            self.batcher = MessageBatcher(
                sim=sim,
                flush_interval=config.batch_flush_interval,
                send_fn=self._send_now,
                size_fn=wire_size,
            )

    # ------------------------------------------------------------ membership
    def register(self, endpoint: NodeId, handler: MessageHandler) -> None:
        """Register an endpoint.  Re-registering replaces the handler."""
        self._handlers[endpoint] = handler
        self._nic_free_at.setdefault(endpoint, 0.0)

    def unregister(self, endpoint: NodeId) -> None:
        self._handlers.pop(endpoint, None)

    def endpoints(self) -> Iterable[NodeId]:
        return self._handlers.keys()

    # ---------------------------------------------------------------- faults
    def crash(self, node: NodeId) -> None:
        """Crash an endpoint: it stops sending and receiving permanently
        (until :meth:`recover`)."""
        self._crashed.add(node)

    def recover(self, node: NodeId) -> None:
        """Reconnect a crashed endpoint (the restart path).

        The replacement node re-registers its handler itself; this clears
        the crash flag and resets the endpoint's NIC — a rebooted machine
        comes back with an empty transmit queue, not the backlog its
        previous incarnation had accumulated.
        """
        self._crashed.discard(node)
        if self._nic_free_at.get(node, 0.0) > self.sim.now:
            self._nic_free_at[node] = self.sim.now

    def is_crashed(self, node: NodeId) -> bool:
        return node in self._crashed

    def partition(
        self,
        groups: Iterable[Iterable[NodeId]],
        bridges: Iterable[NodeId] = (),
    ) -> None:
        """Partition endpoints into isolated groups; inter-group traffic drops.

        Endpoints not mentioned in any group stay fully connected to each
        other and to the *first* group (group 0), mirroring the common
        "minority cut off" scenario.  ``bridges`` stay connected to *every*
        group (a router that still sees both sides); traffic to or from a
        bridge always passes.
        """
        self._partition_group = {}
        self._partition_bridges = set(bridges)
        for index, group in enumerate(groups):
            for node in group:
                self._partition_group[node] = index

    def heal_partition(self) -> None:
        """Drop the current partition.

        This is purely a connectivity change: nodes that fell behind while
        cut off do *not* magically catch up — the fault injector's heal path
        (see :meth:`repro.sim.faults.FaultInjector.heal_partition_now`)
        notifies the harness, which triggers the state-transfer catch-up.
        """
        self._partition_group = {}
        self._partition_bridges = set()

    def install_link_fault(self, spec: LinkFaultSpec) -> ActiveLinkFault:
        """Install one directional link fault, active immediately.

        Scheduling (activation at ``spec.start_time``, removal at
        ``spec.end_time``) is the fault injector's job; installing directly
        means "active now".  Returns the runtime handle (counters + RNG) for
        :meth:`remove_link_fault` and reporting.
        """
        fault = ActiveLinkFault(spec)
        self._link_faults.setdefault((spec.src, spec.dst), []).append(fault)
        return fault

    def remove_link_fault(self, fault: ActiveLinkFault) -> None:
        """Remove an installed link fault (the link heals)."""
        key = (fault.spec.src, fault.spec.dst)
        faults = self._link_faults.get(key)
        if not faults:
            return
        if fault in faults:
            faults.remove(fault)
        if not faults:
            del self._link_faults[key]

    def set_adversary(self, node: NodeId, hook: AdversarialSendHook) -> None:
        """Install an adversarial send hook for ``node`` (Byzantine faults).

        Every message ``node`` sends to a *remote* endpoint is routed through
        ``hook(dst, message)`` first; whatever the hook returns goes on the
        wire instead.  Local short-circuits (a node's messages to itself)
        never touch the network, so the adversary cannot corrupt its own
        state by accident — exactly the power a malicious replica has.
        """
        self._adversaries[node] = hook

    def clear_adversary(self, node: NodeId) -> None:
        """Remove ``node``'s adversarial send hook (it turns honest again)."""
        self._adversaries.pop(node, None)

    def add_link_filter(self, fn: LinkFilter) -> None:
        """Install a message filter (drop/allow) evaluated on every send."""
        self._link_filters.append(fn)

    def clear_link_filters(self) -> None:
        self._link_filters.clear()

    def _passes_filters(self, src: NodeId, dst: NodeId, message: object) -> bool:
        for fn in self._link_filters:
            if not fn(src, dst, message):
                return False
        return True

    def _blocked_by_partition(self, src: NodeId, dst: NodeId) -> bool:
        if not self._partition_group:
            return False
        bridges = self._partition_bridges
        if bridges and (src in bridges or dst in bridges):
            return False
        group_src = self._partition_group.get(src, 0)
        group_dst = self._partition_group.get(dst, 0)
        return group_src != group_dst

    # ------------------------------------------------------------------ send
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        The call returns immediately; delivery (if any) happens later in
        virtual time.  Sends from or to crashed endpoints, across partitions,
        through vetoing link filters, or hit by random drops are silently
        discarded — exactly what an unreliable asynchronous network does.

        When ``src`` has an adversarial send hook installed (Byzantine
        faults, see :meth:`set_adversary`), the hook rewrites the message
        first; each of its outputs then pays the full normal path (batching,
        faults, NIC, latency) like any honestly sent message.

        With wire batching enabled, batchable messages (see
        :mod:`repro.sim.batching`) detour through the batcher and hit the
        wire as part of a coalesced frame at the link's next flush tick;
        fault checks, NIC serialisation and latency then apply to the frame.
        """
        if self._adversaries:
            hook = self._adversaries.get(src)
            if hook is not None:
                for out in hook(dst, message):
                    # Tampered messages get their size re-measured.
                    self._dispatch(
                        src, dst, out, size_bytes if out is message else None
                    )
                return
        self._dispatch(src, dst, message, size_bytes)

    def _dispatch(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Post-adversary send path: link faults first, then forwarding.

        Link-fault drop and duplication decisions run here — per payload,
        before the batching detour — so a lossy or flapping link acts on
        individual messages and can never be hidden (or amplified wholesale)
        by a coalesced wire frame.  Extra copies re-enter the forward path
        like honestly sent duplicates.
        """
        if self._link_faults and src != dst:
            faults = self._link_faults.get((src, dst))
            if faults:
                now = self.sim.now
                for fault in faults:
                    if fault.drops(now):
                        self.stats.record_drop(DROP_LINK_FAULT)
                        if self.tracer is not None:
                            self._trace_drop(DROP_LINK_FAULT, src, dst, message)
                        retry = fault.spec.retransmit
                        if retry > 0:
                            # Reliable-transport model (TCP under packet
                            # loss): the payload is lost on the wire but the
                            # sender's transport re-offers it after the
                            # retransmission timeout, re-subjected to the
                            # link's chaos (so repeated loss keeps backing
                            # it up until the link lets it through).
                            fault.payloads_retransmitted += 1
                            self.stats.retransmissions += 1
                            self.stats.retransmissions_by_node[src] += 1
                            if self.tracer is not None:
                                request = getattr(message, "request", None)
                                self.tracer.on_retransmit(
                                    now, src, dst,
                                    None if request is None else request.rid,
                                )
                            self.sim.schedule_callback(
                                retry,
                                lambda: self._dispatch(src, dst, message, size_bytes),
                            )
                        return
                for fault in faults:
                    if fault.duplicates():
                        self._forward(src, dst, message, size_bytes)
        self._forward(src, dst, message, size_bytes)

    def _forward(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Fault-cleared send path: batching detour or immediate send."""
        batcher = self.batcher
        if batcher is not None and src != dst and is_batchable(message):
            # Partition blocks and link filters are a per-*message* contract,
            # so they run here — on the payload, before it can hide inside a
            # coalesced frame.
            if self._partition_group and self._blocked_by_partition(src, dst):
                self.stats.record_drop(DROP_PARTITION)
                if self.tracer is not None:
                    self._trace_drop(DROP_PARTITION, src, dst, message)
                return
            if self._link_filters and not self._passes_filters(src, dst, message):
                self.stats.record_drop(DROP_LINK_FILTER)
                if self.tracer is not None:
                    self._trace_drop(DROP_LINK_FILTER, src, dst, message)
                return
            batcher.enqueue(src, dst, message)
            return
        self._send_now(src, dst, message, size_bytes)

    def _send_now(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Immediate (unbatched) send path; also the batcher's flush target."""
        size = size_bytes if size_bytes is not None else wire_size(message)
        if message.__class__ is MessageBatchMsg:
            self.stats.batches_sent += 1
            self.stats.payloads_batched += len(message.payloads)
        stats = self.stats
        stats.record_send(src, size)

        # Fault checks, each reduced to one truthiness test when inactive.
        if self._crashed and (src in self._crashed or dst in self._crashed):
            stats.record_drop(DROP_CRASH)
            if self.tracer is not None:
                self._trace_drop(DROP_CRASH, src, dst, message)
            return
        # Frames re-check the partition at flush time: payloads enqueued
        # before the split are still in the sender's buffer, and the wire
        # transmission itself is what the partition blocks.
        if self._partition_group and self._blocked_by_partition(src, dst):
            stats.record_drop(DROP_PARTITION)
            if self.tracer is not None:
                self._trace_drop(DROP_PARTITION, src, dst, message)
            return
        # Coalesced frames skip the filter loop: each payload already passed
        # it individually at enqueue time.
        if self._link_filters and message.__class__ is not MessageBatchMsg:
            if not self._passes_filters(src, dst, message):
                stats.record_drop(DROP_LINK_FILTER)
                if self.tracer is not None:
                    self._trace_drop(DROP_LINK_FILTER, src, dst, message)
                return
        config = self.config
        if config.drop_rate > 0 and self._rng.random() < config.drop_rate:
            stats.record_drop(DROP_RANDOM)
            if self.tracer is not None:
                self._trace_drop(DROP_RANDOM, src, dst, message)
            return

        # NIC serialisation at the sender: back-to-back messages queue up.
        now = self.sim.now
        transmission = (size * 8) / config.bandwidth_bps
        nic_free = self._nic_free_at.get(src, 0.0)
        if nic_free < now:
            nic_free = now
        departure = nic_free + transmission
        self._nic_free_at[src] = departure

        # Optional per-link queueing: after leaving the NIC, the wire
        # message serialises onto the (src, dst) link at link_bandwidth_bps;
        # back-to-back traffic on one link queues up behind it.  Off by
        # default (0), costing the hot path one float comparison.
        link_rate = config.link_bandwidth_bps
        if link_rate > 0.0 and src != dst:
            key = (src, dst)
            link_free = self._link_free_at.get(key, 0.0)
            if link_free < departure:
                link_free = departure
            departure = link_free + (size * 8) / link_rate
            self._link_free_at[key] = departure

        if src == dst:
            arrival = departure
        else:
            propagation = self.latency.sample_latency(src, dst, self._rng)
            arrival = departure + propagation + config.processing_delay
            if self._link_faults:
                # Degraded-link extra delay applies per wire message (frames
                # included): a slow link delays whole transmissions, which is
                # what reorders them against other traffic.
                faults = self._link_faults.get((src, dst))
                if faults:
                    for fault in faults:
                        arrival += fault.extra_delay()

        # Allocation-free delivery scheduling (no Timer handle needed).
        # Sharded engines take the shard-routed path so the delivery event
        # queues with the destination; ordering semantics are identical.
        delay = arrival - now
        if delay < 0.0:
            delay = 0.0
        schedule_for = self._schedule_delivery
        if schedule_for is None:
            self.sim.schedule_callback(
                delay, lambda: self._deliver(src, dst, message)
            )
        else:
            schedule_for(dst, delay, lambda: self._deliver(src, dst, message))

    def multicast(self, src: NodeId, dsts: Iterable[NodeId], message: object) -> None:
        """Send the same message to every destination (each pays NIC time)."""
        size = wire_size(message)
        for dst in dsts:
            self.send(src, dst, message, size_bytes=size)

    def _deliver(self, src: NodeId, dst: NodeId, message: object) -> None:
        if self._crashed and (dst in self._crashed or src in self._crashed):
            self.stats.record_drop(DROP_CRASH)
            if self.tracer is not None:
                self._trace_drop(DROP_CRASH, src, dst, message)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.record_drop(DROP_NO_HANDLER)
            if self.tracer is not None:
                self._trace_drop(DROP_NO_HANDLER, src, dst, message)
            return
        if message.__class__ is MessageBatchMsg:
            # Unpack the wire frame: every coalesced payload reaches the
            # handler individually and in send order, so receivers never see
            # the batching layer.
            for payload in message.payloads:
                self.stats.messages_delivered += 1
                handler(src, payload)
            return
        self.stats.messages_delivered += 1
        handler(src, message)

    # ------------------------------------------------------------- utilities
    def _trace_drop(self, cause: str, src: NodeId, dst: NodeId, message: object) -> None:
        """Rare-path tracer notification for a dropped message.

        Attributes the drop to the carried request when the message is a
        client request; callers guard on ``self.tracer is not None`` so the
        drop-free hot path never reaches this method.
        """
        request = getattr(message, "request", None)
        self.tracer.on_drop(
            self.sim.now, src, dst, cause, None if request is None else request.rid
        )

    def nic_backlog(self, node: NodeId) -> float:
        """Seconds of queued transmission time remaining on a node's NIC."""
        return max(0.0, self._nic_free_at.get(node, 0.0) - self.sim.now)
