"""Malicious SMR clients — the end-user half of the adversary suite.

The paper's Section 3.7 defences (client watermark windows, request
signatures, payload-excluded bucket hashing) exist to contain *abusive
clients*, not faulty replicas — yet the replica-side adversary suite never
attacks them.  This module supplies the attacker: an
:class:`AbusiveClient` subclass of :class:`~repro.core.client.Client`
driven by a :class:`~repro.sim.faults.MaliciousClientSpec`, mirroring how
:mod:`repro.sim.adversary` supplies the replica-side behaviours for
:class:`~repro.sim.faults.ByzantineSpec`.

Four behaviours, one per defence:

* **watermark abuse** — timestamps far beyond the window (every node must
  reject them) alternated with deliberately skipped timestamps, so the
  contiguous-prefix low watermark never advances; the window turns the
  attack on the attacker, which wedges itself after at most ``window``
  in-flight requests while correct clients are untouched.
* **duplicate flooding** — every request sent ``flood_factor`` times to
  every node, plus re-submissions of already-delivered requests; bucket
  queue idempotence and the delivered filter absorb the flood without a
  single double delivery.
* **bucket bias** — request ids crafted (by skipping timestamps) to all
  map to one target bucket.  Because the bucket hash covers only
  ``c || t`` (payload excluded) the *only* lever is the timestamp, and
  skipping timestamps leaves watermark gaps — so the bias is bounded by
  the window and then self-wedges, which is exactly the defence the
  scenarios measure.
* **forged signatures** — requests claiming another client's identity,
  signed with the abuser's own key; every node's signature check must
  reject them (attributed to the claimed identity, the only one a node
  can observe).

Design constraints, mirrored from the replica-side adversaries:

* **No real forgery.**  The simulated PKI is sound — only the key store
  can sign for an identity, and the abusive client only holds its own key,
  so its "stolen" signatures are exactly as unverifiable as a real
  attacker's would be.
* **Deterministic.**  All behaviours are pure functions of the submission
  counter, so seeded runs replay bit-identically (the client-abuse smoke
  gate pins a golden trace on this).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.client import Client
from ..core.messages import ClientRequestMsg
from ..core.types import Request, RequestId
from ..core.validation import request_signing_payload, sign_request
from .faults import (
    CLIENT_BUCKET_BIAS,
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    MaliciousClientSpec,
)

#: Delivered requests the duplicate flooder remembers for re-submission.
REDELIVER_HISTORY = 64


def bias_capacity(
    client: int, target_bucket: int, window: int, num_buckets: int
) -> int:
    """Most requests a bucket-bias abuser can ever get accepted.

    The abuser skips every timestamp not mapping to the target bucket, so
    its contiguous prefix — and with it the low watermark — can advance at
    most to the first skipped timestamp; every accepted id therefore lies
    in ``[0, first_gap + window)``, and only the timestamps in that range
    that actually map to the target count.  Scenario and test assertions
    use this exact figure (≈ ``window / num_buckets``) rather than the
    floor approximation, which undercounts for unlucky hash residues.
    """
    target = target_bucket % num_buckets
    first_gap = 0
    while RequestId(client, first_gap)._mix % num_buckets == target:
        first_gap += 1
    return sum(
        1
        for timestamp in range(first_gap + window)
        if RequestId(client, timestamp)._mix % num_buckets == target
    )


class AbusiveClient(Client):
    """A client process that attacks the Section 3.7 defences.

    Until :meth:`activate_abuse` fires (the spec's ``start_time``, armed by
    :meth:`~repro.sim.faults.FaultInjector.register_abusive_client`) the
    client behaves exactly like its honest base class; afterwards every
    :meth:`submit` call mounts the spec'd attack instead.  The workload
    generator keeps pacing submissions through the normal open-loop arrival
    process — only *what* is submitted changes.
    """

    def __init__(self, spec: MaliciousClientSpec, **kwargs):
        super().__init__(**kwargs)
        if spec.client != self.client_id:
            raise ValueError(
                f"spec targets client {spec.client}, built for {self.client_id}"
            )
        self.spec = spec
        self._abuse_active = False
        #: Monotone attack-step counter (sole source of variation, so seeded
        #: runs replay identically).
        self._abuse_step = 0
        #: Descending forged-timestamp cursor (see :meth:`_submit_forged`).
        self._forged_step = 0
        #: Recently completed requests, re-submitted by the duplicate flooder.
        self._delivered_history: List[Request] = []
        # --- attack counters (surfaced via :meth:`abuse_stats`) -------------
        #: Submissions with timestamps no node may accept.
        self.out_of_window_sent = 0
        #: Timestamps deliberately skipped (permanent watermark gaps).
        self.gaps_left = 0
        #: Extra request transmissions beyond the protocol's single send
        #: fan-out (flood copies and delivered re-submissions, per node).
        self.duplicates_sent = 0
        #: Requests submitted under a stolen identity.
        self.forged_sent = 0
        #: Requests with ids crafted to hit the target bucket.
        self.biased_sent = 0

    # ------------------------------------------------------------ activation
    def activate_abuse(self) -> None:
        """Switch from honest to abusive behaviour (idempotent)."""
        self._abuse_active = True

    @property
    def abuse_active(self) -> bool:
        return self._abuse_active

    # ------------------------------------------------------------ submission
    def outstanding_within_watermarks(self) -> bool:
        """An abusive client ignores the client-side watermark gate — that
        gate is a *courtesy* of correct clients, and disrespecting it is the
        attack.  The node-side window is the defence under test."""
        if not self._abuse_active:
            return super().outstanding_within_watermarks()
        return True

    def submit(self, payload: bytes) -> Request:
        """Mount one attack step (honest submission before activation)."""
        if not self._abuse_active:
            return super().submit(payload)
        behaviour = self.spec.behaviour
        self._abuse_step += 1
        if behaviour == CLIENT_WATERMARK_ABUSE:
            return self._submit_watermark_abuse(payload)
        if behaviour == CLIENT_DUPLICATE_FLOOD:
            return self._submit_duplicate_flood(payload)
        if behaviour == CLIENT_BUCKET_BIAS:
            return self._submit_bucket_bias(payload)
        return self._submit_forged(payload)

    # ------------------------------------------------------------ behaviours
    def _submit_watermark_abuse(self, payload: bytes) -> Request:
        """Alternate far-beyond-window timestamps with gap-leaving ones."""
        if self._abuse_step % 2:
            # Far beyond any reachable window: low + window <= ts always.
            timestamp = (
                self._lowest_uncompleted
                + self.config.client_watermark_window
                + self.spec.jump
                + self._abuse_step
            )
            self.out_of_window_sent += 1
            return self._send_crafted(timestamp, payload)
        # Skip one timestamp forever: the contiguous delivered prefix — and
        # with it the low watermark — can never advance past the gap.
        self._next_timestamp += 1
        self.gaps_left += 1
        timestamp = self._next_timestamp
        self._next_timestamp += 1
        return self._send_crafted(timestamp, payload)

    def _submit_duplicate_flood(self, payload: bytes) -> Request:
        """Submit validly, but ``flood_factor`` times to every node — and
        re-submit an already-delivered request on top."""
        timestamp = self._next_timestamp
        self._next_timestamp += 1
        request = self._send_crafted(timestamp, payload, fan_out=self.spec.flood_factor)
        self.duplicates_sent += (self.spec.flood_factor - 1) * self.config.num_nodes
        if self._delivered_history:
            delivered = self._delivered_history[
                self._abuse_step % len(self._delivered_history)
            ]
            self._broadcast_request(delivered, copies=1)
            self.duplicates_sent += self.config.num_nodes
        return request

    def _submit_bucket_bias(self, payload: bytes) -> Request:
        """Craft the next id mapping to the target bucket (skipping others).

        The bucket hash covers only ``c || t``, so the crafted *payload*
        below is pure theatre — the only real lever is skipping timestamps,
        and every skip is a watermark gap that brings the abuser closer to
        wedging itself out of the window.
        """
        target = self.spec.target_bucket % self.config.num_buckets
        num_buckets = self.config.num_buckets
        timestamp = self._next_timestamp
        while RequestId(self.client_id, timestamp)._mix % num_buckets != target:
            timestamp += 1
        self.gaps_left += timestamp - self._next_timestamp
        self._next_timestamp = timestamp + 1
        self.biased_sent += 1
        crafted = bytes((target & 0xFF,)) * len(payload)
        return self._send_crafted(timestamp, crafted)

    def _submit_forged(self, payload: bytes) -> Request:
        """Claim the victim's identity, signing with the abuser's own key.

        Timestamps descend from the top of the victim's initial window so
        they stay *inside* the window (the rejection under test must be the
        signature check, not the watermark) without colliding with the
        victim's own low, ascending timestamps.
        """
        window = self.config.client_watermark_window
        timestamp = window - 1 - (self._forged_step % window)
        self._forged_step += 1
        rid = RequestId(client=self.spec.victim, timestamp=timestamp)
        request = Request(rid=rid, payload=payload)
        if self.sign_requests:
            signature = self.key_store.sign(
                self.client_id, request_signing_payload(request)
            )
            request = Request(rid=rid, payload=payload, signature=signature)
        self._track_pending(request)
        self._broadcast_request(request, copies=1)
        self.forged_sent += 1
        return request

    # -------------------------------------------------------------- plumbing
    def _send_crafted(
        self, timestamp: int, payload: bytes, fan_out: int = 1
    ) -> Request:
        """Build, sign, track and broadcast a request with a crafted
        timestamp; ``fan_out`` > 1 floods extra copies to every node."""
        rid = RequestId(client=self.client_id, timestamp=timestamp)
        request = Request(rid=rid, payload=payload)
        if self.sign_requests:
            request = sign_request(self.key_store, request)
        self._track_pending(request)
        self._broadcast_request(request, copies=fan_out)
        return request

    def _broadcast_request(self, request: Request, copies: int) -> None:
        """Send ``copies`` of ``request`` to every node — abusive clients do
        not honour leader targeting either."""
        message = ClientRequestMsg(request=request)
        for _ in range(copies):
            for node in range(self.config.num_nodes):
                self.network.send(self.endpoint, node, message)

    def _on_request_completed(self, request: Request) -> None:
        """Remember delivered requests so the flooder can re-submit them."""
        if self.spec.behaviour != CLIENT_DUPLICATE_FLOOD:
            return
        self._delivered_history.append(request)
        if len(self._delivered_history) > REDELIVER_HISTORY:
            del self._delivered_history[0]

    # ------------------------------------------------------------- reporting
    def abuse_stats(self) -> Dict[str, object]:
        """Attack counters for ``RunReport.client_abuse`` (one entry per
        abusive client)."""
        return {
            "behaviour": self.spec.behaviour,
            "activated": self._abuse_active,
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "out_of_window_sent": self.out_of_window_sent,
            "gaps_left": self.gaps_left,
            "duplicates_sent": self.duplicates_sent,
            "forged_sent": self.forged_sent,
            "biased_sent": self.biased_sent,
        }
