"""Sharded discrete-event engine for large (32–128 node) sweeps.

:class:`ShardedSimulator` is a drop-in replacement for
:class:`repro.sim.simulator.Simulator` (same scheduling API, same
``(time, seq)`` ordering semantics) that partitions pending events into
per-shard queues and advances them under a conservative synchronization
horizon.  It exists purely for performance: Figure-5 style scalability
sweeps at 32–128 nodes execute millions of events, and the single
engine's one-big-heap structure pays ``O(log N)`` comparisons on a heap
bloated with far-future timers for every one of them.

Determinism argument (why the delivered trace is bit-identical)
---------------------------------------------------------------

The sharded engine executes *exactly* the same events in *exactly* the
same global ``(time, seq)`` order as the single-queue engine:

* both engines draw sequence numbers from one shared counter in
  scheduling-call order, so identical callback execution order implies
  identical ``seq`` assignment;
* the horizon only decides which *container* a pending event sits in
  (the active heap for events inside the horizon, a per-shard far queue
  beyond it), never when it executes — every pop takes the global
  ``(time, seq)`` minimum, because active entries are strictly below
  the horizon and far entries at or above it;
* shard assignment routes an event to a far queue and nothing else, so
  a "wrong" shard costs performance, not correctness.

Identical execution order means identical virtual timestamps, identical
RNG consumption (the network's jitter/drop draws happen inside
callbacks, in execution order), hence identical schedules, delivered
traces, and event/message counts — the property
``tests/test_sharded_equivalence.py`` pins per protocol and fault mix.

Where the speed comes from (lookahead / horizon)
------------------------------------------------

The horizon is a ladder: events are held in cheap per-shard
append-mostly lists until virtual time approaches them, and only the
slice within ``window`` seconds of the earliest pending event is
heapified into the active heap::

    virtual time ────────────────────────────────────────────▶
        now       horizon = t_min + window
         │           │
    ┌────┴───────────┤ active heap: O(log n_active) pops/pushes
    │  executing ... │
    └────────────────┼──────────────────────────────────────────
                     │ shard 0 far queue: sorted appends ──┐ prefix
                     │ shard 1 far queue: sorted appends ──┤ bisected +
                     │ shard k far queue: sorted appends ──┘ heapified
                     ▼                                       per advance
              (next horizon advance)

``window`` derives from the minimum inter-shard link latency (the
classic conservative-lookahead bound): a message sent by one shard to
another arrives at least that far in the future, so cross-shard sends
scheduled during the current horizon land in the destination shard's
far queue as horizon-stamped handoffs — a tail append in the common
case, a C-level binary insertion otherwise, never a heap sift.
Long-lived protocol timers (view-change, retry, pacing) also live in
far queues, where cancellation is a flag write and the entry is dropped
wholesale during the next migration, never paying heap maintenance.
The active heap stays small (only events within one lookahead window),
so the per-event ``O(log n)`` cost shrinks with it.
"""

from __future__ import annotations

import heapq
import itertools
import random
from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional

from .simulator import SimulationError, Timer, _Event, _COMPACT_MIN_SIZE

#: Default conservative lookahead (seconds) when the caller derives none:
#: half the scaled WAN's intra-datacenter round trip would be uselessly
#: small, so this sits near typical cross-datacenter one-way latency.
DEFAULT_LOOKAHEAD = 0.02

#: Floor on the horizon window (seconds).  A pathologically small
#: lookahead (e.g. two shards inside one datacenter) would advance the
#: horizon every few events and drown the run in migration overhead;
#: the floor trades a slightly larger active heap for amortisation.
MIN_WINDOW = 0.005


class ShardedSimulator:
    """Simulator-shaped sharded event engine (see the module docstring).

    Drop-in for :class:`repro.sim.simulator.Simulator`: same constructor
    seed semantics, same ``schedule``/``schedule_callback``/``run`` API,
    same ``(time, seq)`` ordering guarantees.  Extra API:

    * :meth:`assign_endpoint` maps an endpoint (node or client id) to a
      shard; the network routes deliveries with
      :meth:`schedule_callback_for` so each delivery event queues in its
      destination's shard;
    * events scheduled *by* a callback inherit the shard of the event
      being executed (protocol timers stay with their node's shard).

    Typical usage::

        sim = ShardedSimulator(seed=1, num_shards=4, lookahead=0.03)
        sim.assign_endpoint(node_id, shard_index)
        sim.schedule(0.5, callback)
        sim.run(until=10.0)
    """

    def __init__(
        self,
        seed: int = 0,
        num_shards: int = 1,
        lookahead: float = DEFAULT_LOOKAHEAD,
        min_window: float = MIN_WINDOW,
    ):
        if num_shards < 1:
            raise SimulationError("num_shards must be >= 1")
        if lookahead < 0 or min_window < 0:
            raise SimulationError("lookahead and min_window must be >= 0")
        #: Number of per-shard far queues (fixed at construction).
        self.num_shards = num_shards
        #: Conservative lookahead the horizon window was derived from.
        self.lookahead = lookahead
        #: Horizon window width: lookahead clamped from below (see MIN_WINDOW).
        self.window = max(lookahead, min_window)
        #: Heap of ``(time, seq, item, shard)`` entries with time < horizon.
        self._active: List[tuple] = []
        #: Per-shard far queues: entries with time >= horizon, kept sorted
        #: at all times (tail appends in the common case, C-level binary
        #: insertion otherwise) so horizon advances never sort.
        self._shards: List[List[tuple]] = [[] for _ in range(num_shards)]
        #: Absolute synchronization horizon; advances when the active heap
        #: drains.  Starts at 0 so pre-run scheduling fills the far queues.
        self._horizon = 0.0
        #: Endpoint (node / client id) → shard index, set by the harness.
        self._endpoint_shard: Dict[int, int] = {}
        #: Shard of the event currently executing (routing context for
        #: schedule calls made inside callbacks).
        self._current_shard = 0
        self._counter = itertools.count()
        #: Current virtual time (seconds).  A plain attribute, not a
        #: property: callbacks read it once per event, where the
        #: descriptor-call overhead is measurable.
        self.now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        #: Number of events executed so far (same meaning as the single
        #: engine's counter; equal to it on equal runs).
        self.events_executed = 0
        #: Live (scheduled, not cancelled, not executed) events.
        self._live = 0
        #: Cancelled events still queued awaiting lazy removal.
        self._stale = 0
        #: Horizon advances performed (profiling aid for benchmarks).
        self.horizon_advances = 0

    # ------------------------------------------------------------- sharding
    def assign_endpoint(self, endpoint: int, shard: int) -> None:
        """Pin an endpoint's delivery events to ``shard``.

        Unassigned endpoints route to the scheduling context's shard —
        correctness never depends on the mapping (see module docstring).
        """
        if not 0 <= shard < self.num_shards:
            raise SimulationError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        self._endpoint_shard[endpoint] = shard

    def shard_of(self, endpoint: int) -> int:
        """The shard an endpoint's deliveries queue in (0 if unassigned)."""
        return self._endpoint_shard.get(endpoint, 0)

    # -------------------------------------------------------------- schedule
    def _insert(self, time: float, seq: int, item, shard: int) -> None:
        """Queue one entry: active heap inside the horizon, far queue beyond.

        The callback fast paths (:meth:`schedule_callback`,
        :meth:`schedule_callback_for`) inline this logic — they run once
        per simulated message, where a Python call frame is measurable.
        """
        entry = (time, seq, item, shard)
        if time < self._horizon:
            heapq.heappush(self._active, entry)
        else:
            queue = self._shards[shard]
            if queue and time < queue[-1][0]:
                insort(queue, entry)
            else:
                queue.append(entry)
        self._live += 1

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = _Event(self.now + delay, next(self._counter), callback)
        self._insert(event.time, event.seq, event, self._current_shard)
        return Timer(self, event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def call_soon(self, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.schedule(0.0, callback)

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Allocation-free fast path: one-shot, non-cancellable callback."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        time = self.now + delay
        shard = self._current_shard
        if time < self._horizon:
            heapq.heappush(
                self._active, (time, next(self._counter), callback, shard)
            )
        else:
            queue = self._shards[shard]
            if queue and time < queue[-1][0]:
                insort(queue, (time, next(self._counter), callback, shard))
            else:
                queue.append((time, next(self._counter), callback, shard))
        self._live += 1

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_callback`."""
        self.schedule_callback(max(0.0, time - self.now), callback)

    def schedule_callback_for(
        self, endpoint: int, delay: float, callback: Callable[[], None]
    ) -> None:
        """Fast-path callback routed to ``endpoint``'s shard.

        The network's delivery scheduling hook: a cross-shard send becomes
        a horizon-stamped handoff into the destination shard's far queue
        (an O(1) append whenever the link latency exceeds the remaining
        horizon).  Ordering semantics are identical to
        :meth:`schedule_callback` — only the queue placement differs.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        time = self.now + delay
        shard = self._endpoint_shard.get(endpoint, self._current_shard)
        if time < self._horizon:
            heapq.heappush(
                self._active, (time, next(self._counter), callback, shard)
            )
        else:
            queue = self._shards[shard]
            if queue and time < queue[-1][0]:
                insort(queue, (time, next(self._counter), callback, shard))
            else:
                queue.append((time, next(self._counter), callback, shard))
        self._live += 1

    # ---------------------------------------------------------- cancellation
    def _cancel_event(self, event: _Event) -> None:
        """Mark a timer event cancelled; its queue entry is removed lazily."""
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._live -= 1
        self._stale += 1
        # Trigger on actual container sizes (the run loop defers its live
        # count write-back, so ``_live`` overstates mid-run): stale entries
        # left to rot inflate insertion and GC costs on every queue.
        total = len(self._active)
        for queue in self._shards:
            total += len(queue)
        if self._stale * 2 > total and total >= _COMPACT_MIN_SIZE:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every queue (order-preserving).

        Mutates every container in place so the run loop's local binding
        of the active heap stays valid across a mid-callback compaction.
        """
        is_stale = self._is_stale
        self._active[:] = [e for e in self._active if not is_stale(e)]
        heapq.heapify(self._active)
        for queue in self._shards:
            queue[:] = [e for e in queue if not is_stale(e)]
        self._stale = 0

    @staticmethod
    def _is_stale(entry: tuple) -> bool:
        """True when the entry's item is a cancelled timer event."""
        item = entry[2]
        return item.__class__ is _Event and item.cancelled

    # ----------------------------------------------------- horizon advancing
    def _advance_horizon(self) -> bool:
        """Advance the horizon past the earliest far event and migrate.

        Far queues stay sorted at all times, so this only bisects each
        queue at the new horizon, moves the prefix into the active heap in
        one C-speed heapify, and drops cancelled entries for free on the
        way.  Returns False when no events remain anywhere.
        """
        shards = self._shards
        best = None
        for queue in shards:
            if not queue:
                continue
            head = queue[0][0]
            if best is None or head < best:
                best = head
        if best is None:
            return False
        horizon = best + self.window
        active = self._active
        for queue in shards:
            if not queue:
                continue
            split = bisect_left(queue, (horizon,))
            if not split:
                continue
            # Cancelled entries migrate too; the run loop discards them on
            # pop (same lazy discipline as the single engine), keeping this
            # whole migration in C-speed list/heap primitives.
            if split == len(queue):
                active.extend(queue)
                queue.clear()
            else:
                active.extend(queue[:split])
                del queue[:split]
        heapq.heapify(active)
        self._horizon = horizon
        self.horizon_advances += 1
        return True

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queues drain, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final virtual time.

        Execution order is the global ``(time, seq)`` minimum at every
        step — identical to :meth:`repro.sim.simulator.Simulator.run`.
        """
        self._running = True
        executed = 0
        popped = 0
        pop = heapq.heappop
        event_cls = _Event
        shard = self._current_shard
        # Safe to bind once: _advance_horizon and _compact both mutate the
        # active heap in place, never rebind it.
        active = self._active
        try:
            while True:
                if not active:
                    if not self._advance_horizon():
                        break
                    continue
                head = active[0]
                item = head[2]
                if item.__class__ is event_cls:
                    if item.cancelled:
                        pop(active)
                        self._stale -= 1
                        continue
                    callback = item.callback
                else:
                    callback = item
                time = head[0]
                if until is not None and time > until:
                    break
                pop(active)
                popped += 1
                if time > self.now:
                    self.now = time
                if head[3] != shard:
                    self._current_shard = shard = head[3]
                if callback is not item:
                    item.fired = True
                callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._peek_time() > until:
                self.now = max(self.now, until)
        finally:
            self._running = False
            # Counter write-back is deferred out of the hot loop; executed
            # events were never re-queued, so the pending count drops by
            # exactly the number of pops (cancel bookkeeping is separate).
            self.events_executed += executed
            self._live -= popped
        return self.now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def _peek_time(self) -> float:
        """Earliest pending event time across all queues (inf when empty)."""
        active = self._active
        while active:
            item = active[0][2]
            if item.__class__ is _Event and item.cancelled:
                heapq.heappop(active)
                self._stale -= 1
                continue
            return active[0][0]
        best = float("inf")
        for queue in self._shards:
            for entry in queue:
                item = entry[2]
                if item.__class__ is _Event and item.cancelled:
                    continue
                if entry[0] < best:
                    best = entry[0]
                break
        return best

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live
