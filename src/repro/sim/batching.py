"""Cross-protocol small-message batching (vote aggregation on the wire).

At scale, the dominant simulator cost is no longer *what* the protocols
compute but *how many* wire messages they exchange: every protocol vote
(PBFT PREPARE/COMMIT, HotStuff votes, Raft append-entries replies, BRB
echoes), every client request and every aggregated client acknowledgement
pays one NIC-serialisation, one latency sample and one delivery event.  Real
deployments do not send these tiny messages individually either — transports
coalesce them (Nagle-style) into larger frames.

This module provides that layer for the whole simulation, mirroring the
pattern PR 1 introduced for client responses (``ClientResponseBatchMsg``),
but generically, underneath *all* protocols:

* message types opt in through :func:`register_batchable` (votes and other
  small, latency-tolerant messages; proposals and payload-carrying messages
  stay unbatched);
* :class:`MessageBatcher` coalesces opted-in messages per ``(sender,
  receiver, flush tick)`` into a single :class:`MessageBatchMsg` on the wire,
  where flush ticks are virtual-time windows of ``flush_interval`` seconds;
* the receiving :class:`~repro.sim.network.Network` endpoint unpacks the
  batch and hands every payload to the registered handler individually and
  in send order, so per-vote delivery semantics are unchanged — only the
  arrival *times* quantise to tick boundaries.

Batching is off by default (``NetworkConfig.batch_flush_interval = 0``); the
perf-smoke batched scenario and the figure benchmarks enable it.  Everything
here is deterministic: buffers flush at fixed tick boundaries through the
simulator's ordered callback path, so same-seed runs produce identical
schedules (pinned by the batched golden trace in ``tests/test_batching.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .simulator import Simulator

#: Fixed framing overhead charged per wire batch (length prefix + counts).
BATCH_HEADER_BYTES = 16

#: Registered batchable types: ``True`` (always batchable) or a predicate
#: ``fn(message) -> bool`` for envelope types whose batchability depends on
#: the wrapped payload (e.g. ``InstanceMessage``).
_REGISTRY: Dict[type, object] = {}


def register_batchable(
    cls: type, predicate: Optional[Callable[[object], bool]] = None
) -> type:
    """Mark a message type as safe to coalesce into wire batches.

    Only small, latency-tolerant messages should opt in: votes,
    acknowledgements, requests.  Proposals and other payload-carrying
    messages should stay unbatched so their latency is unaffected.
    ``predicate`` lets envelope types defer the decision to their payload.
    Returns ``cls`` so the call can be used as a class decorator.
    """
    _REGISTRY[cls] = predicate if predicate is not None else True
    return cls


def is_batchable(message: object) -> bool:
    """True when ``message`` may be coalesced into a wire batch."""
    entry = _REGISTRY.get(message.__class__)
    if entry is None:
        return False
    if entry is True:
        return True
    return bool(entry(message))


@dataclass(frozen=True)
class MessageBatchMsg:
    """One wire frame carrying several coalesced protocol messages.

    The payload tuple preserves send order; the receiving network endpoint
    delivers every payload to the destination's handler individually, exactly
    as if each had arrived in its own message at the same instant.  ``size``
    is precomputed by the batcher (header plus the sum of the payloads' wire
    sizes) so the network's cached wire-size accessor stays O(1).
    """

    payloads: Tuple[object, ...]
    size: int

    def wire_size(self) -> int:
        return self.size


class BatcherStats:
    """Counters describing what the batcher did (for tests and reports)."""

    __slots__ = ("payloads_enqueued", "batches_flushed", "singletons_flushed")

    def __init__(self) -> None:
        self.payloads_enqueued = 0
        #: Flushes that produced a multi-payload :class:`MessageBatchMsg`.
        self.batches_flushed = 0
        #: Flushes whose buffer held one message (sent unwrapped).
        self.singletons_flushed = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "payloads_enqueued": self.payloads_enqueued,
            "batches_flushed": self.batches_flushed,
            "singletons_flushed": self.singletons_flushed,
        }


class MessageBatcher:
    """Per-network aggregator coalescing messages per (src, dst, flush tick).

    The batcher never talks to the network directly: the host hands it a
    ``send_fn(src, dst, message, size_bytes)`` (the network's immediate send
    path) and a ``size_fn(message)`` (the wire-size estimator).  Buffered
    messages for one link flush together at the next tick boundary — virtual
    times that are integer multiples of ``flush_interval`` — through the
    simulator's deterministic callback path.
    """

    def __init__(
        self,
        sim: Simulator,
        flush_interval: float,
        send_fn: Callable[[int, int, object, Optional[int]], None],
        size_fn: Callable[[object], int],
    ):
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.sim = sim
        self.flush_interval = flush_interval
        self._send = send_fn
        self._size = size_fn
        #: Pending payloads per directed link, in first-send order.
        self._buffers: Dict[Tuple[int, int], List[object]] = {}
        #: Running wire-size sum per link, maintained at enqueue time so the
        #: flush loop never re-walks a buffer to size its frame (and lone
        #: messages reuse the size instead of paying ``wire_size`` twice).
        self._buffer_sizes: Dict[Tuple[int, int], int] = {}
        #: Whether the single per-tick flush callback is already scheduled.
        #: One event flushes *all* links at the tick boundary, so the batching
        #: layer adds at most one simulator event per flush interval.
        self._flush_scheduled = False
        self.stats = BatcherStats()

    # -------------------------------------------------------------- enqueue
    def enqueue(self, src: int, dst: int, message: object) -> None:
        """Buffer ``message`` for the (src, dst) link's next flush tick.

        The payload's wire size is computed here, once, and folded into the
        link's running sum — the flush tick then only reads precomputed
        totals (see ``_buffer_sizes``).
        """
        self.stats.payloads_enqueued += 1
        key = (src, dst)
        buffers = self._buffers
        size = self._size(message)
        buffer = buffers.get(key)
        if buffer is not None:
            buffer.append(message)
            self._buffer_sizes[key] += size
            return
        buffers[key] = [message]
        self._buffer_sizes[key] = size
        if not self._flush_scheduled:
            self._flush_scheduled = True
            interval = self.flush_interval
            # Next tick boundary strictly after `now`: messages enqueued at
            # the boundary itself wait one full interval, everything else
            # less (Δ/2 on average).  Float floor-division can land exactly
            # on `now` (e.g. 0.06 // 0.02 == 2.0), so bump once if it does.
            now = self.sim.now
            tick = (now // interval + 1.0) * interval
            if tick <= now:
                tick += interval
            self.sim.schedule_callback_at(tick, self._flush_tick)

    # ---------------------------------------------------------------- flush
    def _flush_tick(self) -> None:
        """Flush every buffered link (the per-tick simulator event).

        Links flush in first-send order, which is deterministic; each link's
        payloads keep their send order inside the wire frame.
        """
        self._flush_scheduled = False
        buffers = self._buffers
        if not buffers:
            return
        sizes = self._buffer_sizes
        self._buffers = {}
        self._buffer_sizes = {}
        stats = self.stats
        send = self._send
        for key, buffer in buffers.items():
            src, dst = key
            if len(buffer) == 1:
                # A lone message needs no envelope; it goes out as itself,
                # with the wire size already computed at enqueue time.
                stats.singletons_flushed += 1
                send(src, dst, buffer[0], sizes[key])
                continue
            stats.batches_flushed += 1
            size = BATCH_HEADER_BYTES + sizes[key]
            send(src, dst, MessageBatchMsg(payloads=tuple(buffer), size=size), size)

    def flush_all(self) -> None:
        """Force-flush every pending buffer immediately (drain helper)."""
        self._flush_tick()

    def pending_payloads(self) -> int:
        """Messages currently buffered and awaiting their flush tick."""
        return sum(len(buffer) for buffer in self._buffers.values())
