"""Compatibility shim: wire batching moved to :mod:`repro.runtime.wire`.

The batching layer is transport-independent (it only needs a
:class:`~repro.runtime.api.Scheduler`), so the node/transport boundary
refactor moved it out of the simulator package.  This module re-exports the
same objects so existing imports — and the class identities the golden
traces and ``isinstance`` checks rely on — keep working unchanged.
"""

from __future__ import annotations

from ..runtime.wire import (  # noqa: F401
    _REGISTRY,
    BATCH_HEADER_BYTES,
    BatcherStats,
    MessageBatcher,
    MessageBatchMsg,
    is_batchable,
    register_batchable,
)

__all__ = [
    "BATCH_HEADER_BYTES",
    "BatcherStats",
    "MessageBatcher",
    "MessageBatchMsg",
    "is_batchable",
    "register_batchable",
]
