"""Discrete-event simulation substrate: event loop, WAN model, fault injection."""

from .simulator import Simulator, Timer, SimulationError
from .latency import LatencyModel, DATACENTER_NAMES
from .network import Network, NetworkStats, wire_size
from .faults import (
    CrashSpec,
    StragglerSpec,
    ByzantineSpec,
    FaultInjector,
    CRASH_AT_TIME,
    CRASH_EPOCH_START,
    CRASH_EPOCH_END,
    BYZ_EQUIVOCATE,
    BYZ_CENSOR,
    BYZ_INVALID_VOTES,
    BYZ_REPLAY,
)

__all__ = [
    "Simulator",
    "Timer",
    "SimulationError",
    "LatencyModel",
    "DATACENTER_NAMES",
    "Network",
    "NetworkStats",
    "wire_size",
    "CrashSpec",
    "StragglerSpec",
    "ByzantineSpec",
    "FaultInjector",
    "CRASH_AT_TIME",
    "CRASH_EPOCH_START",
    "CRASH_EPOCH_END",
    "BYZ_EQUIVOCATE",
    "BYZ_CENSOR",
    "BYZ_INVALID_VOTES",
    "BYZ_REPLAY",
]
