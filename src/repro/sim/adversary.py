"""Active Byzantine adversaries as per-node network send hooks.

The paper's robustness claims — bucket rotation defeats request censorship
(Section 3.2), the follower acceptance rules plus leader-selection policies
contain misbehaving leaders (Sections 4.2 and 3.4) — are only worth
reproducing if something actually attacks the system.  This module builds
the *send-manipulating* half of :class:`~repro.sim.faults.ByzantineSpec`:
callable adversaries installed on the :class:`~repro.sim.network.Network`
via :meth:`~repro.sim.network.Network.set_adversary` that rewrite, forge or
duplicate every message the Byzantine node puts on the wire.

Design constraints the implementations respect:

* **No forged client signatures.**  The simulated PKI is sound inside the
  process (only the key store can sign), so adversaries equivocate by
  sending *differently composed but individually valid* batches — exactly
  what a real Byzantine leader, who also cannot forge client signatures,
  would do.
* **The node's local state stays honest.**  Hooks only intercept remote
  sends; the adversary's own in-process shortcut (``SBContext.send`` to
  itself) delivers the untampered original, mirroring a malicious replica
  that obviously knows what it really proposed.
* **Deterministic.**  Variant assignment is a pure function of the
  destination id, so seeded runs replay bit-identically (the Byzantine
  smoke gate pins a golden trace on this).

Censorship is not a send manipulation — the leader simply never proposes
the targeted requests — so it is implemented inside
:class:`~repro.core.iss.ISSNode` (see ``ISSNode._cut_batch``), like the
straggler behaviour.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Tuple

from ..core.messages import InstanceMessage
from ..core.types import Batch, NodeId
from ..crypto.signatures import SIGNATURE_SIZE
from ..crypto.threshold import PartialSignature
from ..hotstuff.messages import Block, Proposal, Vote
from ..pbft.messages import Commit, PrePrepare, Prepare
from .faults import (
    BYZ_CENSOR,
    BYZ_EQUIVOCATE,
    BYZ_INVALID_VOTES,
    BYZ_REPLAY,
    ByzantineSpec,
)

#: Digest equivocating/forging adversaries substitute into votes: a valid
#: 32-byte value that matches no real batch.
FORGED_DIGEST = b"\xbe" * 32

#: Signature bytes that can never verify (the key store's HMACs are
#: indistinguishable from random, so a constant is as good as any forgery).
FORGED_SIGNATURE = b"\x00" * SIGNATURE_SIZE


class EquivocationAdversary:
    """Send conflicting, individually valid proposals to different peers.

    For every remote proposal carrying a real batch (PBFT view-0
    ``PrePrepare``, HotStuff ``Proposal``), destinations with an even node
    id receive a *variant* batch — the original minus its first request —
    while odd destinations (and the adversary itself) see the original.
    Splitting the cluster roughly in half guarantees neither variant can
    gather a strong quorum on the adversary's votes alone, so correct
    nodes either stall the slot into ``⊥`` (view/round change) or commit
    exactly one variant; SB Agreement must hold either way.

    Empty batches cannot be equivocated on without forging client
    signatures, which the adversary (like a real one) cannot do — they
    pass through unmodified.
    """

    def __init__(self, node: NodeId):
        self.node = node
        #: Conflicting proposal variants actually put on the wire.
        self.equivocations_sent = 0

    def __call__(self, dst: NodeId, message: object) -> Iterable[object]:
        """Network hook: messages to put on the wire towards ``dst``."""
        if message.__class__ is InstanceMessage and dst % 2 == 0:
            variant = self._variant_payload(message.payload)
            if variant is not None:
                self.equivocations_sent += 1
                return (InstanceMessage(instance_id=message.instance_id, payload=variant),)
        return (message,)

    def _variant_payload(self, payload: object) -> Optional[object]:
        """A conflicting-but-valid twin of a proposal payload, or None."""
        if isinstance(payload, PrePrepare):
            if payload.view != 0 or not isinstance(payload.value, Batch):
                return None
            variant = self._variant_batch(payload.value)
            if variant is None:
                return None
            return PrePrepare(
                view=payload.view, sn=payload.sn, value=variant, digest=variant.digest()
            )
        if isinstance(payload, Proposal):
            block = payload.block
            if not isinstance(block.value, Batch):
                return None
            variant = self._variant_batch(block.value)
            if variant is None:
                return None
            return Proposal(
                block=Block(
                    view=block.view,
                    round=block.round,
                    sn=block.sn,
                    value=variant,
                    parent_digest=block.parent_digest,
                    justify=block.justify,
                )
            )
        return None

    @staticmethod
    def _variant_batch(batch: Batch) -> Optional[Batch]:
        """Drop the first request: a different digest, every rule still met."""
        if len(batch.requests) < 1:
            return None
        return Batch.of(batch.requests[1:])


class InvalidVoteAdversary:
    """Forge every outgoing vote so correct receivers must reject it.

    Checkpoint signatures are zeroed (the receiver's
    :meth:`~repro.crypto.signatures.KeyStore.verify` fails), HotStuff
    partial signatures are zeroed (``verify_share`` fails) and PBFT
    prepare/commit digests are pointed at a value that exists nowhere.
    The adversary contributes nothing to any quorum — the attack degrades
    it to a crash-equivalent voter while flooding peers with garbage that
    their verification paths must absorb and count.
    """

    def __init__(self, node: NodeId):
        self.node = node
        self.votes_forged = 0

    def __call__(self, dst: NodeId, message: object) -> Iterable[object]:
        """Network hook: messages to put on the wire towards ``dst``."""
        forged = self._forge(message)
        if forged is not None:
            self.votes_forged += 1
            return (forged,)
        return (message,)

    def _forge(self, message: object) -> Optional[object]:
        if message.__class__ is InstanceMessage:
            payload = self._forge_payload(message.payload)
            if payload is None:
                return None
            return InstanceMessage(instance_id=message.instance_id, payload=payload)
        # Checkpoint votes travel unwrapped; duck-type on the signed fields
        # to avoid importing the checkpoint module here (layering).
        if hasattr(message, "signature") and hasattr(message, "log_root"):
            return replace(message, signature=FORGED_SIGNATURE)
        return None

    def _forge_payload(self, payload: object) -> Optional[object]:
        if isinstance(payload, (Prepare, Commit)):
            return replace(payload, digest=FORGED_DIGEST)
        if isinstance(payload, Vote):
            partial = payload.partial
            return replace(
                payload,
                partial=PartialSignature(
                    signer=partial.signer,
                    message_digest=partial.message_digest,
                    share=b"\x00" * len(partial.share),
                ),
            )
        return None


class ReplayAdversary:
    """Duplicate every outgoing message ``factor`` times (replay flooding).

    Receivers must be idempotent — vote sets keyed by sender, delivered
    filters, watermark windows — so the flood costs bandwidth and
    processing without changing what anyone delivers.
    """

    def __init__(self, node: NodeId, factor: int):
        self.node = node
        self.factor = factor
        #: Extra copies injected beyond the original sends.
        self.duplicates_sent = 0

    def __call__(self, dst: NodeId, message: object) -> Iterable[object]:
        """Network hook: messages to put on the wire towards ``dst``."""
        self.duplicates_sent += self.factor - 1
        return (message,) * self.factor


def make_adversary(spec: ByzantineSpec):
    """Build the network send hook for ``spec`` (None for node-level
    behaviours such as censorship, which need no hook)."""
    if spec.behaviour == BYZ_EQUIVOCATE:
        return EquivocationAdversary(spec.node)
    if spec.behaviour == BYZ_INVALID_VOTES:
        return InvalidVoteAdversary(spec.node)
    if spec.behaviour == BYZ_REPLAY:
        return ReplayAdversary(spec.node, spec.replay_factor)
    if spec.behaviour == BYZ_CENSOR:
        return None
    raise ValueError(f"unknown Byzantine behaviour {spec.behaviour!r}")
