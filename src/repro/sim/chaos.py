"""Network chaos: scheduled partitions and degraded links.

The fault specs in :mod:`repro.sim.faults` make *nodes* and *clients*
misbehave; this module makes the **network itself** the adversary, which is
the failure mode the paper's epoch/checkpoint structure is supposed to ride
out (liveness across asynchrony, Section 2.1's partially synchronous model):

* :class:`PartitionSpec` — a scheduled split of the endpoint set into
  isolated groups at ``start_time``, healed at ``heal_time``.  Supports
  symmetric splits, minority isolation and *bridge* nodes (endpoints that
  keep reaching every group, modelling a router that still sees both sides).
* :class:`LinkFaultSpec` — a per-link, *directional* degradation: one-way
  blocks (asymmetric connectivity), probabilistic loss, duplication,
  reorder-inducing extra delay, and up/down flapping on a deterministic
  schedule.

Both are installed through the :class:`~repro.sim.faults.FaultInjector`
(scheduled in virtual time like every other fault) and applied by the
:class:`~repro.sim.network.Network` *before* wire batching, so drops and
duplications act on individual payloads and can never hide inside a
coalesced :class:`~repro.sim.batching.MessageBatchMsg` frame.

Determinism: every probabilistic effect (loss, duplication, delay jitter)
draws from a per-installed-fault ``random.Random`` seeded from the spec and
the link, and flapping is a pure function of virtual time — same seeds,
same schedule, same run.  With no chaos spec installed the network's send
path is unchanged (one truthiness test), so all existing golden traces
replay bit-identically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..core.types import NodeId

#: Drop causes recorded by :class:`~repro.sim.network.NetworkStats`.
DROP_CRASH = "crash"
DROP_PARTITION = "partition"
DROP_LINK_FILTER = "link-filter"
DROP_RANDOM = "random"
DROP_LINK_FAULT = "link-fault"
DROP_NO_HANDLER = "no-handler"

DROP_CAUSES = (
    DROP_CRASH,
    DROP_PARTITION,
    DROP_LINK_FILTER,
    DROP_RANDOM,
    DROP_LINK_FAULT,
    DROP_NO_HANDLER,
)


@dataclass(frozen=True)
class PartitionSpec:
    """One scheduled network partition: split at ``start_time``, heal at
    ``heal_time``.

    ``groups`` lists the isolated endpoint groups; traffic crosses group
    boundaries only through ``bridges`` — endpoints that stay connected to
    *every* group (and to each other).  Endpoints mentioned nowhere default
    to group 0, so clients keep reaching the first ("majority") group; list
    a client endpoint explicitly to cut it off too.

    The network supports one partition at a time: overlapping specs are
    rejected by the injector, since a second split silently replacing the
    first is never what a scenario means.
    """

    groups: Tuple[Tuple[NodeId, ...], ...]
    start_time: float
    heal_time: float
    bridges: Tuple[NodeId, ...] = ()

    def __post_init__(self) -> None:
        # Normalise nested iterables into tuples so specs stay hashable.
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in self.groups)
        )
        object.__setattr__(self, "bridges", tuple(self.bridges))
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ValueError("partition groups must be non-empty")
            for node in group:
                if node in seen:
                    raise ValueError(f"endpoint {node} appears in two groups")
                seen.add(node)
        for bridge in self.bridges:
            if bridge in seen:
                raise ValueError(f"bridge {bridge} cannot also be in a group")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.heal_time <= self.start_time:
            raise ValueError("heal_time must be after start_time")


@dataclass(frozen=True)
class LinkFaultSpec:
    """One directional link degradation, active on [start_time, end_time).

    Effects compose on the ``src → dst`` direction only (model the reverse
    direction with a second spec):

    * ``block`` — drop everything while active (one-way block; the building
      block of asymmetric connectivity).
    * ``loss_rate`` — drop each payload independently with this probability.
    * ``duplicate_rate`` — send an extra copy of each payload with this
      probability (receivers' idempotence must absorb it).
    * ``extra_delay`` — add up to this many seconds of uniform extra delay
      per wire message, reordering it against other traffic on the link.
    * ``flap_period`` / ``flap_up`` — the link cycles deterministically:
      up for ``flap_up * flap_period`` seconds, then down (drops) for the
      rest of each period, phase-anchored at ``start_time``.
    * ``retransmit`` — model a *reliable transport* (TCP) under the loss:
      a payload dropped by ``loss_rate`` or a flap-down window is re-offered
      to the link after this many seconds (re-subjected to the link's chaos,
      so repeated loss backs the payload up geometrically).  Loss then
      degrades latency instead of silently eating protocol messages — which
      is what BFT protocols assume of channels between correct nodes.  ``0``
      (the default) makes drops permanent (a UDP-like link).  Incompatible
      with ``block``: one-way blocks model routing-level unreachability,
      which no amount of retransmission crosses.

    ``seed`` feeds the per-fault RNG (mixed with the link endpoints), so two
    faults with different seeds degrade differently but reproducibly.
    """

    src: NodeId
    dst: NodeId
    start_time: float = 0.0
    end_time: float = math.inf
    block: bool = False
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    extra_delay: float = 0.0
    flap_period: float = 0.0
    flap_up: float = 0.5
    retransmit: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("a link fault needs two distinct endpoints")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.end_time <= self.start_time:
            raise ValueError("end_time must be after start_time")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if self.extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")
        if self.flap_period < 0:
            raise ValueError("flap_period must be non-negative")
        if self.flap_period > 0 and not 0.0 < self.flap_up < 1.0:
            raise ValueError("flap_up must be in (0, 1) when flapping")
        if self.retransmit < 0:
            raise ValueError("retransmit must be non-negative")
        if self.retransmit > 0 and self.block:
            raise ValueError(
                "retransmit cannot cross a one-way block (routing-level "
                "unreachability is not packet loss)"
            )
        if not (
            self.block
            or self.loss_rate > 0
            or self.duplicate_rate > 0
            or self.extra_delay > 0
            or self.flap_period > 0
        ):
            raise ValueError("link fault configures no effect")


class ActiveLinkFault:
    """Runtime state of one installed :class:`LinkFaultSpec`.

    Owns the per-fault RNG (seeded from spec seed and link endpoints, so
    installation order cannot perturb other randomness) and the drop/copy
    counters the harness surfaces in ``RunReport.partitions``.
    """

    __slots__ = (
        "spec",
        "_rng",
        "payloads_dropped",
        "payloads_duplicated",
        "payloads_retransmitted",
    )

    def __init__(self, spec: LinkFaultSpec):
        self.spec = spec
        # Deterministic seed mix without hash() (str hashing is salted).
        mixed = (
            (spec.seed * 2654435761)
            ^ (int(spec.src) * 1_000_003)
            ^ (int(spec.dst) * 7919)
        ) & 0xFFFFFFFF
        self._rng = random.Random(mixed ^ 0xC4A05)
        self.payloads_dropped = 0
        self.payloads_duplicated = 0
        self.payloads_retransmitted = 0

    def link_down(self, now: float) -> bool:
        """Whether the link is currently blocked (one-way block or the down
        phase of the flap cycle)."""
        spec = self.spec
        if spec.block:
            return True
        if spec.flap_period > 0:
            phase = ((now - spec.start_time) % spec.flap_period) / spec.flap_period
            return phase >= spec.flap_up
        return False

    def drops(self, now: float) -> bool:
        """Per-payload drop decision (block, flap-down, or random loss)."""
        if self.link_down(now):
            self.payloads_dropped += 1
            return True
        spec = self.spec
        if spec.loss_rate > 0 and self._rng.random() < spec.loss_rate:
            self.payloads_dropped += 1
            return True
        return False

    def duplicates(self) -> bool:
        """Per-payload duplication decision (one extra copy)."""
        spec = self.spec
        if spec.duplicate_rate > 0 and self._rng.random() < spec.duplicate_rate:
            self.payloads_duplicated += 1
            return True
        return False

    def extra_delay(self) -> float:
        """Per-wire-message extra delay sample (0 when not configured)."""
        spec = self.spec
        if spec.extra_delay > 0:
            return spec.extra_delay * self._rng.random()
        return 0.0

    def stats(self) -> Dict[str, object]:
        spec = self.spec
        return {
            "src": spec.src,
            "dst": spec.dst,
            "payloads_dropped": self.payloads_dropped,
            "payloads_duplicated": self.payloads_duplicated,
            "payloads_retransmitted": self.payloads_retransmitted,
        }


def symmetric_split(
    left: Iterable[NodeId],
    right: Iterable[NodeId],
    start_time: float,
    heal_time: float,
    bridges: Iterable[NodeId] = (),
) -> PartitionSpec:
    """Convenience builder for the common two-group split."""
    return PartitionSpec(
        groups=(tuple(left), tuple(right)),
        start_time=start_time,
        heal_time=heal_time,
        bridges=tuple(bridges),
    )
