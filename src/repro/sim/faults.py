"""Fault-injection primitives for the simulated network.

Two kinds of faults matter for the paper's evaluation (Section 6.4):

* **Crash faults** — a node stops participating entirely.  The evaluation
  distinguishes *epoch-start* crashes (the leader dies right when an epoch
  begins, a worst case for the number of proposed sequence numbers) and
  *epoch-end* crashes (the leader dies just before proposing its last
  sequence number, a worst case for epoch duration).
* **Byzantine stragglers** — a leader delays its proposals as much as
  possible without getting suspected and proposes empty batches, harming
  latency and throughput without triggering the failure detector.

A crash is no longer necessarily forever: :class:`RestartSpec` brings a
crashed node back at a later virtual time.  The injector tears the old
incarnation down (its timers and links died with the crash), reconnects
the endpoint at the network layer, and delegates the actual rebuild to
the harness through :attr:`FaultInjector.on_restart` — the deployment
re-instantiates the node from its
:class:`~repro.storage.node_storage.NodeStorage` via the recovery manager
(see :mod:`repro.storage.recovery`).

Beyond crashes and stragglers, :class:`ByzantineSpec` describes an
*actively malicious* node.  Behaviours that manipulate what leaves the
node (equivocation, forged votes, replay flooding) are installed as a
per-node adversarial send hook on the :class:`Network` (built by
:mod:`repro.sim.adversary`); behaviours that manipulate what the node
*does* (bucket censorship) are honoured by the ISS node itself, exactly
like :class:`StragglerSpec`.

Faults are not restricted to replicas: :class:`MaliciousClientSpec`
describes a misbehaving *end user* (Section 3.7's threat model — watermark
abuse, duplicate flooding, bucket bias, forged signatures).  The harness
builds an :class:`~repro.sim.client_adversary.AbusiveClient` for every
spec'd client id and registers it here so ``start_time`` activation runs
through the same scheduling path as the replica-side adversaries.

The fifth member of the fault-spec family makes the *network itself* the
adversary: :class:`~repro.sim.chaos.PartitionSpec` (scheduled split →
heal) and :class:`~repro.sim.chaos.LinkFaultSpec` (per-link directional
degradation) are defined in :mod:`repro.sim.chaos` and scheduled here,
through the same injector, so partitions and degraded links compose with
every node- and client-level fault.  When a partition heals the injector
fires :attr:`FaultInjector.on_partition_heal` — the harness hooks the
state-transfer catch-up there so nodes that fell behind while cut off
reconverge immediately instead of waiting out an epoch timer.

Crash/restart/adversary scheduling lives here (it is purely a
network/timing concern); straggler and censorship behaviour is
implemented inside the ISS node (:class:`repro.core.iss.ISSNode` honours
:class:`StragglerSpec` and :class:`ByzantineSpec`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.types import ClientId, EpochNr, NodeId
from .chaos import ActiveLinkFault, LinkFaultSpec, PartitionSpec
from .network import Network
from .simulator import Simulator

# The pure-data fault specifications moved to :mod:`repro.runtime.faults`
# with the node/transport boundary refactor (protocol code honours them on
# any backend); re-exported here so existing imports keep working.
from ..runtime.faults import (  # noqa: F401
    BYZ_CENSOR,
    BYZ_EQUIVOCATE,
    BYZ_INVALID_VOTES,
    BYZ_REPLAY,
    BYZANTINE_BEHAVIOURS,
    CLIENT_BUCKET_BIAS,
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    CRASH_AT_TIME,
    CRASH_EPOCH_END,
    CRASH_EPOCH_START,
    MALICIOUS_CLIENT_BEHAVIOURS,
    MEMBER_ADD,
    MEMBER_EVICT_DETECTED,
    MEMBER_REMOVE,
    MEMBERSHIP_ACTIONS,
    ByzantineSpec,
    CrashSpec,
    MaliciousClientSpec,
    MembershipSpec,
    RestartSpec,
    StragglerSpec,
)


class FaultInjector:
    """Applies :class:`CrashSpec` schedules to a running deployment.

    Epoch-anchored crashes need a hook into the victim's ISS node to learn
    when the epoch starts / when its last proposal is about to go out; the
    harness wires those callbacks via :meth:`attach_epoch_hooks`.
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._crash_specs: List[CrashSpec] = []
        self._crashed: List[NodeId] = []
        self._restart_specs: List[RestartSpec] = []
        #: ``(node, virtual time)`` of every restart performed so far.
        self._restarted: List[tuple] = []
        self._byzantine_specs: List[ByzantineSpec] = []
        #: Installed adversarial senders by node (see :mod:`.adversary`).
        self._adversaries: Dict[NodeId, object] = {}
        self._malicious_client_specs: List[MaliciousClientSpec] = []
        #: Registered abusive clients by client id (see :mod:`.client_adversary`).
        self._abusive_clients: Dict[ClientId, object] = {}
        self._epoch_start_watch: Dict[NodeId, List[CrashSpec]] = {}
        self._epoch_end_watch: Dict[NodeId, List[CrashSpec]] = {}
        self._partition_specs: List[PartitionSpec] = []
        #: One record per scheduled partition (started_at/healed_at filled in
        #: as the schedule executes; the harness appends reconvergence data).
        self._partition_records: List[Dict[str, object]] = []
        self._link_fault_specs: List[LinkFaultSpec] = []
        #: Runtime handles of installed link faults, kept after removal so
        #: their drop/duplicate counters survive into the report.
        self._link_fault_runtimes: List[ActiveLinkFault] = []
        #: Called right after a node is crashed (e.g. to stop its timers).
        self.on_crash: Optional[Callable[[NodeId], None]] = None
        #: Called right after a node's endpoint is reconnected; the harness
        #: rebuilds the node from storage here (recovery manager + restart).
        self.on_restart: Optional[Callable[[NodeId], None]] = None
        #: Called right after a partition is applied: ``fn(spec, record)``.
        self.on_partition_start: Optional[
            Callable[[PartitionSpec, Dict[str, object]], None]
        ] = None
        #: Called right after a partition heals: ``fn(spec, record)``.  The
        #: harness triggers the lagging nodes' state-transfer catch-up here.
        self.on_partition_heal: Optional[
            Callable[[PartitionSpec, Dict[str, object]], None]
        ] = None
        self._membership_specs: List[MembershipSpec] = []
        #: Called when a scheduled add/remove falls due: ``fn(spec)``.  The
        #: harness submits the ConfigTx through its admin client here (the
        #: injector owns timing, the harness owns client construction —
        #: the same split as for abusive clients).
        self.on_membership_change: Optional[Callable[[MembershipSpec], None]] = None

    # ------------------------------------------------------------- schedule
    def schedule(self, spec: CrashSpec) -> None:
        self._crash_specs.append(spec)
        if spec.trigger == CRASH_AT_TIME:
            self.sim.schedule_at(spec.time, lambda: self.crash_now(spec.node))
        elif spec.trigger == CRASH_EPOCH_START:
            self._epoch_start_watch.setdefault(spec.node, []).append(spec)
        else:
            self._epoch_end_watch.setdefault(spec.node, []).append(spec)

    def schedule_all(self, specs: Sequence[CrashSpec]) -> None:
        for spec in specs:
            self.schedule(spec)

    def schedule_restart(self, spec: RestartSpec) -> None:
        """Schedule a :class:`RestartSpec` (absolute virtual time)."""
        self._restart_specs.append(spec)
        self.sim.schedule_at(spec.time, lambda: self.restart_now(spec.node))

    def schedule_restarts(self, specs: Sequence[RestartSpec]) -> None:
        for spec in specs:
            self.schedule_restart(spec)

    def schedule_byzantine(self, spec: ByzantineSpec) -> None:
        """Arm one :class:`ByzantineSpec`.

        Send-manipulating behaviours install an adversarial hook on the
        network at ``spec.start_time``; node-level behaviours (censorship)
        are honoured by the node itself and need no network hook.  The hook
        survives crash/restart of the node — a restarted Byzantine node
        stays Byzantine.
        """
        self._byzantine_specs.append(spec)
        from .adversary import make_adversary  # deferred: adversary imports protocol types

        adversary = make_adversary(spec)
        if adversary is None:
            return
        if spec.start_time <= self.sim.now:
            self._install_adversary(spec.node, adversary)
        else:
            self.sim.schedule_at(
                spec.start_time, lambda: self._install_adversary(spec.node, adversary)
            )

    def schedule_byzantines(self, specs: Sequence[ByzantineSpec]) -> None:
        for spec in specs:
            self.schedule_byzantine(spec)

    def _install_adversary(self, node: NodeId, adversary) -> None:
        self._adversaries[node] = adversary
        self.network.set_adversary(node, adversary)

    def schedule_malicious_client(self, spec: MaliciousClientSpec) -> None:
        """Record one :class:`MaliciousClientSpec`.

        The abusive client *process* is built by the harness (it owns
        client construction); :meth:`register_abusive_client` then arms the
        ``start_time`` activation here, mirroring how replica-side
        adversaries are installed.
        """
        self._malicious_client_specs.append(spec)

    def schedule_malicious_clients(self, specs: Sequence[MaliciousClientSpec]) -> None:
        for spec in specs:
            self.schedule_malicious_client(spec)

    def register_abusive_client(self, client) -> None:
        """Attach a built :class:`~repro.sim.client_adversary.AbusiveClient`
        and arm its activation at the spec's ``start_time`` (immediately when
        that time already passed)."""
        self._abusive_clients[client.client_id] = client
        start = client.spec.start_time
        if start <= self.sim.now:
            client.activate_abuse()
        else:
            self.sim.schedule_at(start, client.activate_abuse)

    # ----------------------------------------------------------- membership
    def schedule_membership(self, spec: MembershipSpec) -> None:
        """Arm one :class:`MembershipSpec`.

        ``add``/``remove`` fire :attr:`on_membership_change` at the spec's
        time (immediately when that time already passed); the harness then
        submits the ConfigTx through its admin client.  ``evict-detected``
        specs are recorded only — the harness drives the detection watch
        through its epoch hooks.
        """
        self._membership_specs.append(spec)
        if spec.action == MEMBER_EVICT_DETECTED:
            return

        def fire() -> None:
            if self.on_membership_change is not None:
                self.on_membership_change(spec)

        if spec.time <= self.sim.now:
            fire()
        else:
            self.sim.schedule_at(spec.time, fire)

    def schedule_memberships(self, specs: Sequence["MembershipSpec"]) -> None:
        for spec in specs:
            self.schedule_membership(spec)

    def membership_specs(self) -> Sequence["MembershipSpec"]:
        return tuple(self._membership_specs)

    # ------------------------------------------------------- network chaos
    def schedule_partition(self, spec: PartitionSpec) -> None:
        """Arm one :class:`~repro.sim.chaos.PartitionSpec`: split at
        ``start_time``, heal at ``heal_time``.

        The network supports one partition at a time, so overlapping specs
        are rejected here rather than silently replacing each other.
        """
        for other in self._partition_specs:
            if spec.start_time < other.heal_time and other.start_time < spec.heal_time:
                raise ValueError(
                    f"partition [{spec.start_time}, {spec.heal_time}) overlaps "
                    f"scheduled partition [{other.start_time}, {other.heal_time})"
                )
        self._partition_specs.append(spec)
        record: Dict[str, object] = {
            "groups": [list(group) for group in spec.groups],
            "bridges": list(spec.bridges),
            "scheduled_start": spec.start_time,
            "scheduled_heal": spec.heal_time,
            "started_at": -1.0,
            "healed_at": -1.0,
        }
        self._partition_records.append(record)
        self.sim.schedule_at(
            spec.start_time, lambda: self.partition_now(spec, record)
        )
        self.sim.schedule_at(
            spec.heal_time, lambda: self.heal_partition_now(spec, record)
        )

    def schedule_partitions(self, specs: Sequence[PartitionSpec]) -> None:
        for spec in specs:
            self.schedule_partition(spec)

    def partition_now(self, spec: PartitionSpec, record: Dict[str, object]) -> None:
        """Apply a scheduled partition (the split side of the schedule)."""
        self.network.partition(spec.groups, bridges=spec.bridges)
        record["started_at"] = self.sim.now
        if self.on_partition_start is not None:
            self.on_partition_start(spec, record)

    def heal_partition_now(self, spec: PartitionSpec, record: Dict[str, object]) -> None:
        """Heal a scheduled partition and notify the harness.

        The notification is what makes healing more than a connectivity
        change: the harness's hook sends the ``LATEST_STABLE`` state-transfer
        probes for every node that fell behind, so reconvergence starts
        immediately instead of waiting for the next checkpoint broadcast or
        epoch timer.
        """
        self.network.heal_partition()
        record["healed_at"] = self.sim.now
        if self.on_partition_heal is not None:
            self.on_partition_heal(spec, record)

    def schedule_link_fault(self, spec: LinkFaultSpec) -> None:
        """Arm one :class:`~repro.sim.chaos.LinkFaultSpec`: install at
        ``start_time``, remove at ``end_time`` (if finite)."""
        self._link_fault_specs.append(spec)

        def install() -> None:
            fault = self.network.install_link_fault(spec)
            self._link_fault_runtimes.append(fault)
            if spec.end_time != float("inf"):
                self.sim.schedule_at(
                    spec.end_time, lambda: self.network.remove_link_fault(fault)
                )

        if spec.start_time <= self.sim.now:
            install()
        else:
            self.sim.schedule_at(spec.start_time, install)

    def schedule_link_faults(self, specs: Sequence[LinkFaultSpec]) -> None:
        for spec in specs:
            self.schedule_link_fault(spec)

    # ---------------------------------------------------------------- hooks
    def notify_epoch_start(self, node: NodeId, epoch: EpochNr) -> None:
        """Called by the ISS node when ``epoch`` starts locally."""
        for spec in self._epoch_start_watch.get(node, []):
            if spec.epoch == epoch and node not in self._crashed:
                self.crash_now(node)

    def notify_last_proposal(self, node: NodeId, epoch: EpochNr) -> bool:
        """Called by the ISS node right before sending its last proposal of
        ``epoch``.  Returns True when the node was crashed (the proposal
        must then be suppressed)."""
        for spec in self._epoch_end_watch.get(node, []):
            if spec.epoch == epoch and node not in self._crashed:
                self.crash_now(node)
                return True
        return False

    # ---------------------------------------------------------------- crash
    def crash_now(self, node: NodeId) -> None:
        if node in self._crashed:
            return
        self._crashed.append(node)
        self.network.crash(node)
        if self.on_crash is not None:
            self.on_crash(node)

    # -------------------------------------------------------------- restart
    def restart_now(self, node: NodeId) -> None:
        """Bring a crashed node back immediately.

        Reconnects the network endpoint (the crashed incarnation's timers
        were already cancelled by :meth:`crash_now` /
        ``ISSNode.crash``) and hands control to :attr:`on_restart`, which
        rebuilds the node from its durable storage.  Restarting a node
        that is not crashed is a no-op.
        """
        if node not in self._crashed:
            return
        self._crashed.remove(node)
        self.network.recover(node)
        self._restarted.append((node, self.sim.now))
        if self.on_restart is not None:
            self.on_restart(node)

    def crashed_nodes(self) -> Sequence[NodeId]:
        return tuple(self._crashed)

    def restarted_nodes(self) -> Sequence[tuple]:
        """``(node, time)`` pairs of every restart performed so far."""
        return tuple(self._restarted)

    def byzantine_nodes(self) -> Sequence[NodeId]:
        """Nodes covered by a scheduled :class:`ByzantineSpec`."""
        return tuple(spec.node for spec in self._byzantine_specs)

    def adversary_for(self, node: NodeId):
        """The installed adversarial sender of ``node`` (None before
        ``start_time`` and for node-level behaviours such as censorship)."""
        return self._adversaries.get(node)

    def malicious_clients(self) -> Sequence[ClientId]:
        """Client ids covered by a scheduled :class:`MaliciousClientSpec`."""
        return tuple(spec.client for spec in self._malicious_client_specs)

    def abusive_client_for(self, client_id: ClientId):
        """The registered abusive client process for ``client_id`` (None for
        clients without a malicious spec)."""
        return self._abusive_clients.get(client_id)

    def partition_records(self) -> List[Dict[str, object]]:
        """One record per scheduled partition (shared dicts: the harness
        appends reconvergence figures to them as they become known)."""
        return self._partition_records

    def link_fault_stats(self) -> List[Dict[str, object]]:
        """Per-installed-link-fault drop/duplicate counters (stable order:
        installation order)."""
        return [fault.stats() for fault in self._link_fault_runtimes]
