"""Fault-injection primitives for the simulated network.

Two kinds of faults matter for the paper's evaluation (Section 6.4):

* **Crash faults** — a node stops participating entirely.  The evaluation
  distinguishes *epoch-start* crashes (the leader dies right when an epoch
  begins, a worst case for the number of proposed sequence numbers) and
  *epoch-end* crashes (the leader dies just before proposing its last
  sequence number, a worst case for epoch duration).
* **Byzantine stragglers** — a leader delays its proposals as much as
  possible without getting suspected and proposes empty batches, harming
  latency and throughput without triggering the failure detector.

A crash is no longer necessarily forever: :class:`RestartSpec` brings a
crashed node back at a later virtual time.  The injector tears the old
incarnation down (its timers and links died with the crash), reconnects
the endpoint at the network layer, and delegates the actual rebuild to
the harness through :attr:`FaultInjector.on_restart` — the deployment
re-instantiates the node from its
:class:`~repro.storage.node_storage.NodeStorage` via the recovery manager
(see :mod:`repro.storage.recovery`).

Crash/restart scheduling lives here (it is purely a network/timing
concern); straggler behaviour is implemented inside the ISS node
(:class:`repro.core.iss.ISSNode` honours a :class:`StragglerSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.types import EpochNr, NodeId
from .network import Network
from .simulator import Simulator

#: Crash trigger positions used by the evaluation.
CRASH_AT_TIME = "at-time"
CRASH_EPOCH_START = "epoch-start"
CRASH_EPOCH_END = "epoch-end"


@dataclass(frozen=True)
class CrashSpec:
    """Description of a single crash fault.

    ``trigger`` selects how the crash is anchored:

    * ``"at-time"`` — crash at absolute virtual time ``time``.
    * ``"epoch-start"`` — crash as soon as ``epoch`` starts at the victim.
    * ``"epoch-end"`` — crash right before the victim proposes the last
      sequence number of its segment in ``epoch``.
    """

    node: NodeId
    trigger: str = CRASH_AT_TIME
    time: float = 0.0
    epoch: EpochNr = 0

    def __post_init__(self) -> None:
        if self.trigger not in (CRASH_AT_TIME, CRASH_EPOCH_START, CRASH_EPOCH_END):
            raise ValueError(f"unknown crash trigger {self.trigger!r}")


@dataclass(frozen=True)
class RestartSpec:
    """Bring a crashed node back at absolute virtual time ``time``.

    The victim must have crashed (via a :class:`CrashSpec`) before
    ``time``; restarting a node that never crashed is a no-op.  Recovery
    itself — WAL replay, snapshot load, state transfer — is performed by
    the harness through :attr:`FaultInjector.on_restart`.
    """

    node: NodeId
    time: float


@dataclass(frozen=True)
class StragglerSpec:
    """Description of a Byzantine straggler.

    The straggler delays every proposal by ``delay`` seconds (the paper uses
    0.5x the epoch-change timeout, i.e. 5 s) and proposes empty batches.
    """

    node: NodeId
    #: Delay before each proposal; the paper's straggler sends an empty
    #: proposal every 0.5 * epoch_change_timeout.
    delay: float = 5.0
    #: Whether the straggler strips all requests from its proposals.
    propose_empty: bool = True


class FaultInjector:
    """Applies :class:`CrashSpec` schedules to a running deployment.

    Epoch-anchored crashes need a hook into the victim's ISS node to learn
    when the epoch starts / when its last proposal is about to go out; the
    harness wires those callbacks via :meth:`attach_epoch_hooks`.
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._crash_specs: List[CrashSpec] = []
        self._crashed: List[NodeId] = []
        self._restart_specs: List[RestartSpec] = []
        #: ``(node, virtual time)`` of every restart performed so far.
        self._restarted: List[tuple] = []
        self._epoch_start_watch: Dict[NodeId, List[CrashSpec]] = {}
        self._epoch_end_watch: Dict[NodeId, List[CrashSpec]] = {}
        #: Called right after a node is crashed (e.g. to stop its timers).
        self.on_crash: Optional[Callable[[NodeId], None]] = None
        #: Called right after a node's endpoint is reconnected; the harness
        #: rebuilds the node from storage here (recovery manager + restart).
        self.on_restart: Optional[Callable[[NodeId], None]] = None

    # ------------------------------------------------------------- schedule
    def schedule(self, spec: CrashSpec) -> None:
        self._crash_specs.append(spec)
        if spec.trigger == CRASH_AT_TIME:
            self.sim.schedule_at(spec.time, lambda: self.crash_now(spec.node))
        elif spec.trigger == CRASH_EPOCH_START:
            self._epoch_start_watch.setdefault(spec.node, []).append(spec)
        else:
            self._epoch_end_watch.setdefault(spec.node, []).append(spec)

    def schedule_all(self, specs: Sequence[CrashSpec]) -> None:
        for spec in specs:
            self.schedule(spec)

    def schedule_restart(self, spec: RestartSpec) -> None:
        """Schedule a :class:`RestartSpec` (absolute virtual time)."""
        self._restart_specs.append(spec)
        self.sim.schedule_at(spec.time, lambda: self.restart_now(spec.node))

    def schedule_restarts(self, specs: Sequence[RestartSpec]) -> None:
        for spec in specs:
            self.schedule_restart(spec)

    # ---------------------------------------------------------------- hooks
    def notify_epoch_start(self, node: NodeId, epoch: EpochNr) -> None:
        """Called by the ISS node when ``epoch`` starts locally."""
        for spec in self._epoch_start_watch.get(node, []):
            if spec.epoch == epoch and node not in self._crashed:
                self.crash_now(node)

    def notify_last_proposal(self, node: NodeId, epoch: EpochNr) -> bool:
        """Called by the ISS node right before sending its last proposal of
        ``epoch``.  Returns True when the node was crashed (the proposal
        must then be suppressed)."""
        for spec in self._epoch_end_watch.get(node, []):
            if spec.epoch == epoch and node not in self._crashed:
                self.crash_now(node)
                return True
        return False

    # ---------------------------------------------------------------- crash
    def crash_now(self, node: NodeId) -> None:
        if node in self._crashed:
            return
        self._crashed.append(node)
        self.network.crash(node)
        if self.on_crash is not None:
            self.on_crash(node)

    # -------------------------------------------------------------- restart
    def restart_now(self, node: NodeId) -> None:
        """Bring a crashed node back immediately.

        Reconnects the network endpoint (the crashed incarnation's timers
        were already cancelled by :meth:`crash_now` /
        ``ISSNode.crash``) and hands control to :attr:`on_restart`, which
        rebuilds the node from its durable storage.  Restarting a node
        that is not crashed is a no-op.
        """
        if node not in self._crashed:
            return
        self._crashed.remove(node)
        self.network.recover(node)
        self._restarted.append((node, self.sim.now))
        if self.on_restart is not None:
            self.on_restart(node)

    def crashed_nodes(self) -> Sequence[NodeId]:
        return tuple(self._crashed)

    def restarted_nodes(self) -> Sequence[tuple]:
        """``(node, time)`` pairs of every restart performed so far."""
        return tuple(self._restarted)
