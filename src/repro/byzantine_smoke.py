"""Byzantine-adversary smoke test (``python -m repro.byzantine_smoke``).

Runs the pinned adversarial scenario — 4 PBFT nodes over the scaled WAN
with wire batching on, node 3 equivocating (conflicting SB proposals to
different peers) from the start — and checks the attack invariants end to
end:

* **safety**: all correct nodes deliver identical request sequences over
  every shared position (delivered-prefix equivalence),
* **containment**: the equivocated slots stall into ``⊥`` and the default
  Blacklist policy evicts the adversary from the final leaderset,
* **detection**: correct nodes prove the equivocation from ``f+1``
  conflicting prepare votes (positive detection counters),
* **determinism**: the correct nodes' delivered-sequence digest, the
  detection counters and the simulator/network totals must match the
  golden trace in ``tests/data/golden_trace_byzantine.json`` bit for bit —
  an adversarial schedule is still a seeded schedule.

Exit code 1 on any violation; wired into ``make byzantine-smoke`` and the
CI driver (``benchmarks/run_perf_smoke.py``).  Pass ``--update-golden``
after an intentional schedule-affecting change.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Dict, Optional

from . import golden, smokelib
from .core.config import NetworkConfig, WorkloadConfig, PROTOCOL_PBFT
from .core.state_transfer import DEFAULT_PROBE_STAGGER
from .harness.runner import Deployment
from .harness.scenarios import (
    DEFAULT_FLUSH_INTERVAL,
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    correct_nodes,
    iss_config,
    prefixes_identical,
)
from .obs import ObsConfig
from .sim.faults import BYZ_EQUIVOCATE, ByzantineSpec

#: The pinned adversarial scenario (keep in sync with the golden trace).
SCENARIO = dict(
    protocol=PROTOCOL_PBFT,
    num_nodes=4,
    random_seed=13,
    num_clients=8,
    total_rate=600.0,
    duration=20.0,
    adversary=3,
    behaviour=BYZ_EQUIVOCATE,
)


def golden_path() -> Path:
    """Location of the Byzantine-determinism golden trace."""
    return smokelib.golden_data_path("golden_trace_byzantine.json")


def build_deployment() -> Deployment:
    """Build the pinned scenario (all env-movable knobs set explicitly)."""
    config = iss_config(
        SCENARIO["protocol"], SCENARIO["num_nodes"], random_seed=SCENARIO["random_seed"]
    )
    network_config = NetworkConfig(
        bandwidth_bps=SCALED_BANDWIDTH_BPS,
        batch_flush_interval=DEFAULT_FLUSH_INTERVAL,
    )
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
        payload_size=PAYLOAD_BYTES,
    )
    return Deployment(
        config,
        network_config=network_config,
        workload=workload,
        byzantine_specs=[
            ByzantineSpec(node=SCENARIO["adversary"], behaviour=SCENARIO["behaviour"])
        ],
        probe_stagger=DEFAULT_PROBE_STAGGER,
        obs=ObsConfig.disabled(),
    )


def run_smoke() -> Dict[str, object]:
    """Run the scenario once and return the figures the golden trace pins."""
    deployment = build_deployment()
    result = deployment.run()
    report = result.report
    specs = deployment.byzantine_specs
    correct = correct_nodes(result, specs)
    sample = correct[0]
    trace = golden.delivered_trace(sample)
    final_leaders = sample.manager.leaders_for(sample.current_epoch)
    adversary = deployment.injector.adversary_for(SCENARIO["adversary"])
    return {
        "scenario": dict(SCENARIO),
        "engine": report.engine,
        "completed": report.completed,
        "prefixes_identical": prefixes_identical(correct),
        "adversary_evicted": SCENARIO["adversary"] not in final_leaders,
        "equivocations_sent": adversary.equivocations_sent,
        "equivocations_detected_total": int(
            report.extra.get("equivocations_detected_total", 0.0)
        ),
        "nil_committed": sample.nil_committed,
        "trace_len": len(trace),
        "trace_sha256": hashlib.sha256(repr(trace).encode()).hexdigest(),
        "events_executed": deployment.sim.events_executed,
        "messages_sent": deployment.network.stats.messages_sent,
    }


#: Figure keys that must match the golden trace exactly.
PINNED_KEYS = (
    "completed",
    "equivocations_sent",
    "equivocations_detected_total",
    "nil_committed",
    "trace_len",
    "trace_sha256",
    "events_executed",
    "messages_sent",
)


def check_against_golden(figures: Dict[str, object], path: Path) -> Optional[str]:
    """Return an error string when the run diverges from the golden trace."""
    return golden.check_against_golden(
        figures, path, PINNED_KEYS, "BYZANTINE DETERMINISM REGRESSION"
    )


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The attack claims that must hold regardless of the golden trace."""
    if not figures["prefixes_identical"]:
        return (
            "BYZANTINE SAFETY VIOLATION: correct nodes' delivered sequences "
            "diverged under equivocation"
        )
    if figures["completed"] <= 0:
        return "BYZANTINE LIVENESS VIOLATION: nothing was delivered"
    if not figures["adversary_evicted"]:
        return (
            "BYZANTINE CONTAINMENT REGRESSION: the Blacklist policy failed "
            "to evict the equivocating leader"
        )
    if figures["equivocations_detected_total"] <= 0:
        return (
            "BYZANTINE DETECTION REGRESSION: no correct node detected the "
            "equivocation"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the smoke scenario and apply the checks."""
    scenario = SCENARIO
    return smokelib.run_gate(
        argv,
        name="byzantine",
        description=__doc__.splitlines()[0],
        banner=(
            f"byzantine smoke: {scenario['num_nodes']} {scenario['protocol']} nodes, "
            f"node {scenario['adversary']} {scenario['behaviour']}, "
            f"{scenario['duration']:.0f}s virtual ..."
        ),
        run_smoke=run_smoke,
        golden_path=golden_path(),
        pinned_keys=PINNED_KEYS,
        regression_label="BYZANTINE DETERMINISM REGRESSION",
        semantic_violations=semantic_violations,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
