"""Replicated-KV command-line client (``python -m repro.kv_client``).

Speaks to a live cluster started by ``python -m repro.kv_server`` (or the
installed ``repro-kv-server`` script).  One invocation performs one
operation::

    repro-kv-client put <key> <value>     # write
    repro-kv-client get <key>             # linearizable read
    repro-kv-client cas <key> <expect> <value>   # compare-and-swap

``--nodes``, ``--protocol`` and ``--seed`` must match the server
launcher's: the client derives the request-signing keys from the
deployment seed and the result quorum (f+1 matching replies) from the
node count.  ``--client-id`` must be below the launcher's
``--max-clients`` or the replicas will reject the requests as unsigned.

Across invocations the client persists its next request timestamp under
``--state-dir`` (default ``~/.repro-kv-client``): replicas track
per-client watermarks over *contiguous* timestamps, so a re-launched
client must resume where it left off rather than restart at zero.

Exit status: 0 when the operation succeeded (for ``get``, when the key
exists; for ``cas``, when the swap applied), 1 otherwise, 2 on timeout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional

from .app.kv import KVClient, KVOutcome
from .core.config import ISSConfig, SUPPORTED_PROTOCOLS, PROTOCOL_PBFT
from .crypto.signatures import KeyStore
from .net.clock import WallClock
from .net.deploy import LiveClusterSpec, live_base_port, live_host
from .net.transport import TcpTransport


def _state_path(args: argparse.Namespace) -> str:
    """Per-(cluster, client) session-state file holding the next timestamp."""
    name = f"client{args.client_id}-{args.host}-{args.base_port}.json"
    return os.path.join(args.state_dir, name)


def load_next_timestamp(args: argparse.Namespace) -> int:
    """Read the next request timestamp this client may use (0 on first run)."""
    try:
        with open(_state_path(args)) as handle:
            return int(json.load(handle)["next_timestamp"])
    except (OSError, ValueError, KeyError):
        return 0


def save_next_timestamp(args: argparse.Namespace, next_timestamp: int) -> None:
    """Persist the next timestamp before submitting, so it is never reused.

    Node-side watermarks advance past every delivered timestamp; a future
    invocation reusing one would be silently rejected.  Losing this file
    strands the client id (start a fresh ``--client-id`` in that case).
    """
    os.makedirs(args.state_dir, exist_ok=True)
    with open(_state_path(args), "w") as handle:
        json.dump({"next_timestamp": next_timestamp}, handle)


async def run_op(args: argparse.Namespace) -> KVOutcome:
    """Connect, perform the one requested operation, disconnect."""
    config = ISSConfig(
        num_nodes=args.nodes,
        protocol=args.protocol,
        random_seed=args.seed,
        client_retry_timeout=0.5,
        client_retry_max_timeout=4.0,
    )
    spec = LiveClusterSpec(
        config=config,
        data_dir="",
        base_port=args.base_port,
        host=args.host,
        client_ids=(args.client_id,),
    )
    first_timestamp = load_next_timestamp(args)
    save_next_timestamp(args, first_timestamp + 1)
    clock = WallClock(seed=args.seed)
    transport = TcpTransport(clock, peers=spec.peer_map())
    await transport.start()
    try:
        key_store = KeyStore(deployment_seed=args.seed)
        client = KVClient(
            args.client_id,
            config,
            clock,
            transport,
            key_store,
            first_timestamp=first_timestamp,
        )
        if args.op == "put":
            return await client.put(args.key, args.value, timeout=args.timeout)
        if args.op == "get":
            return await client.get(args.key, timeout=args.timeout)
        return await client.cas(
            args.key, args.expect, args.value, timeout=args.timeout
        )
    finally:
        await transport.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: parse the operation, run it, print the outcome."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--client-id", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=4, help="replica count")
    parser.add_argument(
        "--protocol", choices=sorted(SUPPORTED_PROTOCOLS), default=PROTOCOL_PBFT
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="deployment seed (must match server)"
    )
    parser.add_argument("--host", default=live_host())
    parser.add_argument("--base-port", type=int, default=live_base_port())
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--state-dir",
        default=os.path.expanduser("~/.repro-kv-client"),
        help="where per-client session state (next timestamp) lives",
    )
    sub = parser.add_subparsers(dest="op", required=True)
    put = sub.add_parser("put", help="write key=value")
    put.add_argument("key")
    put.add_argument("value")
    get = sub.add_parser("get", help="linearizable read")
    get.add_argument("key")
    cas = sub.add_parser("cas", help="write value only if key currently holds expect")
    cas.add_argument("key")
    cas.add_argument("expect")
    cas.add_argument("value")
    args = parser.parse_args(argv)

    try:
        outcome = asyncio.run(run_op(args))
    except asyncio.TimeoutError:
        print("timeout", file=sys.stderr)
        return 2
    if args.op == "get":
        if outcome.ok:
            print(outcome.value)
        else:
            print("(not found)", file=sys.stderr)
        return 0 if outcome.ok else 1
    if args.op == "put":
        # A returned put has reached the f+1 acknowledgement quorum.
        print("ok", file=sys.stderr)
        return 0
    print("ok" if outcome.ok else "failed", file=sys.stderr)
    return 0 if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
