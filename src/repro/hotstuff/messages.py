"""Chained-HotStuff protocol messages and block structure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.types import LogEntry, NIL, SeqNr, ViewNr, is_nil
from ..crypto.hashing import hash_int, sha256
from ..crypto.threshold import PartialSignature, ThresholdSignature
from ..runtime.wire import register_batchable


@dataclass(frozen=True)
class QuorumCertificate:
    """Certificate that 2f+1 nodes voted for the block of ``view``.

    ``signature`` is the combined threshold signature over the block digest;
    the genesis certificate carries ``None``.
    """

    view: ViewNr
    block_digest: bytes
    signature: Optional[ThresholdSignature]

    def wire_size(self) -> int:
        return 48 + (self.signature.wire_size() if self.signature else 0)


@dataclass(frozen=True)
class Block:
    """One node in the HotStuff chain.

    ``sn`` is the ISS sequence number the block's value is destined for, or
    ``None`` for the dummy blocks appended to flush the pipeline (Section
    4.2.2 / Figure 4).  ``justify`` certifies the parent block.
    """

    view: ViewNr
    round: int
    sn: Optional[SeqNr]
    value: LogEntry
    parent_digest: bytes
    justify: QuorumCertificate

    def digest(self) -> bytes:
        value_digest = self.value.digest() if self.value is not None else b""
        return sha256(
            b"hotstuff-block",
            hash_int(self.view),
            hash_int(self.round),
            hash_int(self.sn if self.sn is not None else 0xFFFFFFFF),
            value_digest,
            self.parent_digest,
            self.justify.block_digest,
        )

    def payload_size(self) -> int:
        if self.value is None or is_nil(self.value):
            return 1
        return self.value.size_bytes()


#: Digest of the implicit genesis block every chain starts from.
GENESIS_DIGEST = sha256(b"hotstuff-genesis")

#: Genesis certificate (QC₀ in Figure 4).
GENESIS_QC = QuorumCertificate(view=-1, block_digest=GENESIS_DIGEST, signature=None)


@dataclass(frozen=True)
class Proposal:
    """Leader's proposal of a new block."""

    block: Block

    def wire_size(self) -> int:
        return 96 + self.block.payload_size() + self.block.justify.wire_size()


@register_batchable
@dataclass(frozen=True)
class Vote:
    """A replica's (partial-threshold-signed) vote for a block.  Batchable:
    votes riding the same link within one flush tick share a wire frame."""

    view: ViewNr
    block_digest: bytes
    partial: PartialSignature

    def wire_size(self) -> int:
        return 48 + self.partial.wire_size()


@register_batchable
@dataclass(frozen=True)
class NewRound:
    """Pacemaker message: a replica's request to advance to ``round``.

    Carries the replica's highest known QC so the next leader can safely
    extend the chain.  Batchable like any other vote-sized message.
    """

    round: int
    high_qc: QuorumCertificate

    def wire_size(self) -> int:
        return 32 + self.high_qc.wire_size()
