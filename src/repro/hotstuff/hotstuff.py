"""Chained HotStuff as a Sequenced Broadcast implementation (Section 4.2.2).

Each ISS segment runs its own HotStuff instance rooted at a fresh genesis
certificate.  Every segment sequence number corresponds to one block in the
chain; three *dummy* blocks are appended after the last real one so the
three-chain commit rule can "flush the pipeline" and every real block gets
decided (Figure 4).  Quorum certificates aggregate 2f+1 votes with the
simulated threshold-signature scheme.

The segment leader leads every round; only when the pacemaker times out does
leadership rotate, and — per the SB design rules of Section 4.2 — any
non-initial leader proposes only ``⊥`` values (plus dummies), so the
instance delivers a batch or ``⊥`` for every sequence number.

HotStuff is latency-bound: a new block can only be proposed once the
previous block's certificate has been assembled, which is exactly the
behaviour the paper's evaluation discusses (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.sb import SBContext, SBInstance
from ..core.types import Batch, LogEntry, NIL, NodeId, SeqNr, ViewNr, is_nil
from ..crypto.threshold import PartialSignature, ThresholdScheme
from ..runtime.api import Timer
from .messages import (
    Block,
    GENESIS_DIGEST,
    GENESIS_QC,
    NewRound,
    Proposal,
    QuorumCertificate,
    Vote,
)

#: Number of dummy blocks appended after the last real block (Figure 4).
PIPELINE_FLUSH_BLOCKS = 3


class HotStuffSB(SBInstance):
    """Chained-HotStuff engine scoped to a single segment."""

    def __init__(self, context: SBContext):
        super().__init__(context)
        if context.key_store is None:
            raise ValueError("HotStuffSB requires a key store for threshold signatures")
        self._threshold = ThresholdScheme(
            context.key_store, context.all_nodes, context.strong_quorum
        )
        #: All blocks seen, by digest (the genesis block is implicit).
        self._blocks: Dict[bytes, Block] = {}
        self._high_qc: QuorumCertificate = GENESIS_QC
        self._locked_qc: QuorumCertificate = GENESIS_QC
        self._committed: Set[bytes] = set()
        self._delivered_sns: Set[SeqNr] = set()
        self._last_voted_view: ViewNr = -1
        #: Highest view of any block received (≥ every peer's voted view in
        #: benign runs, since nodes only vote on blocks they received).  A
        #: round-change leader must propose *above* this: proposing at
        #: ``high_qc.view + 1`` alone can collide with the crashed leader's
        #: last (uncertified) block, which every node already voted for —
        #: those proposals die on the ``last_voted_view`` check and the view
        #: can never advance, wedging the segment.
        self._highest_seen_view: ViewNr = -1
        #: Vote shares collected by the (current) leader, per block digest.
        self._vote_shares: Dict[bytes, Dict[NodeId, PartialSignature]] = {}
        self._qc_formed: Set[bytes] = set()
        #: Pacemaker state.
        self._round = 0
        self._base_round_timeout = context.config.view_change_timeout
        self._round_timeout = context.config.view_change_timeout
        self._round_timer: Optional[Timer] = None
        self._new_round_msgs: Dict[int, Dict[NodeId, NewRound]] = {}
        self._proposing_active = context.is_leader
        self._awaiting_qc_digest: Optional[bytes] = None
        self._proposal_timer: Optional[Timer] = None
        #: Whether the one-shot final-QC publication already went out.
        self._final_qc_published = False
        self._stopped = False
        #: Statistics.
        self.rounds_changed = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self._arm_round_timer()
        if self.context.is_leader:
            self._schedule_proposal()

    def stop(self) -> None:
        self._stopped = True
        for timer in (self._round_timer, self._proposal_timer):
            if timer is not None:
                timer.cancel()

    # ------------------------------------------------------------ utilities
    def round_leader(self, round_nr: int) -> NodeId:
        nodes = self.context.all_nodes
        base = nodes.index(self.context.segment.leader)
        return nodes[(base + round_nr) % len(nodes)]

    def _block(self, digest: bytes) -> Optional[Block]:
        return self._blocks.get(digest)

    def _chain_from(self, digest: bytes) -> List[Block]:
        """Blocks from ``digest`` down to genesis (newest first)."""
        chain: List[Block] = []
        current = digest
        while current != GENESIS_DIGEST:
            block = self._blocks.get(current)
            if block is None:
                break
            chain.append(block)
            current = block.parent_digest
        return chain

    def _all_delivered(self) -> bool:
        return len(self._delivered_sns) == len(self.segment.seq_nrs)

    # -------------------------------------------------------- leader: propose
    def _schedule_proposal(self, delay: float = 0.0) -> None:
        if self._stopped or not self._proposing_active:
            return
        total_delay = delay + self.context.proposal_delay
        self._proposal_timer = self.context.schedule(total_delay, self._propose_next)

    def _propose_next(self) -> None:
        if self._stopped or not self._proposing_active:
            return
        if self._awaiting_qc_digest is not None:
            return  # the previous proposal has not been certified yet
        content = self._next_proposal_content()
        if content is None:
            return  # chain fully extended (real blocks + pipeline flush)
        sn, value = content
        if sn is not None and not self.context.may_propose(sn):
            self._proposing_active = False
            return
        parent_digest = self._high_qc.block_digest
        view = max(self._high_qc.view, self._highest_seen_view) + 1
        block = Block(
            view=view,
            round=self._round,
            sn=sn,
            value=value,
            parent_digest=parent_digest,
            justify=self._high_qc,
        )
        self._awaiting_qc_digest = block.digest()
        self.context.broadcast(Proposal(block=block))

    def _next_proposal_content(self) -> Optional[Tuple[Optional[SeqNr], LogEntry]]:
        """Pick the next block's (sequence number, value), or None when done.

        Real sequence numbers come first (those not committed and not already
        assigned in the chain ending at the high QC); afterwards dummy blocks
        are appended until the chain head is followed by three of them.
        """
        chain = self._chain_from(self._high_qc.block_digest)
        assigned = {block.sn for block in chain if block.sn is not None}
        assigned |= self._delivered_sns
        remaining = [sn for sn in self.segment.seq_nrs if sn not in assigned]
        if remaining:
            sn = remaining[0]
            if self.context.node_id == self.context.segment.leader and self._round == 0:
                batch = self.context.cut_batch(sn)
                return sn, batch
            # After any leader change, even the segment leader proposes only ⊥
            # (SB design rule 2 in Section 4.2).
            return sn, NIL
        trailing_dummies = 0
        for block in chain:  # newest first
            if block.sn is None:
                trailing_dummies += 1
            else:
                break
        if trailing_dummies < PIPELINE_FLUSH_BLOCKS or not self._all_delivered():
            # Keep extending with dummies until the flush completes AND every
            # sequence number has actually delivered.  A round-change leader
            # can inherit a chain that already ends in three dummies from the
            # crashed leader's flush whose final QCs never formed; without
            # the delivery check it would declare the chain fully extended
            # and the segment would wedge one QC short of committing.
            return None, NIL
        return None

    # ----------------------------------------------------------- proposals
    def handle_message(self, src: NodeId, message: object) -> None:
        if self._stopped:
            return
        if isinstance(message, Proposal):
            self._on_proposal(src, message.block)
        elif isinstance(message, Vote):
            self._on_vote(src, message)
        elif isinstance(message, NewRound):
            self._on_new_round(src, message)

    def _on_proposal(self, src: NodeId, block: Block) -> None:
        if block.round < self._round:
            return
        if src != self.round_leader(block.round):
            return
        if block.round > self._round:
            # The pacemaker advanced without us noticing every NewRound; adopt.
            self._round = block.round
        digest = block.digest()
        self._blocks[digest] = block
        if block.view > self._highest_seen_view:
            self._highest_seen_view = block.view
        self._process_qc(block.justify)
        if not self._validate_block(src, block):
            return
        if block.view <= self._last_voted_view:
            return
        if not self._safe_to_vote(block):
            return
        self._last_voted_view = block.view
        tracer = self.context.tracer
        if tracer is not None and block.sn is not None:
            tracer.on_sb(
                self.context.now(), self.context.node_id,
                self.context.segment.instance_id, block.sn, "vote",
            )
        partial = self._threshold.sign_share(self.context.node_id, digest)
        vote = Vote(view=block.view, block_digest=digest, partial=partial)
        # Votes go to the leader of the block's round (stable leader while the
        # pacemaker is quiet), who aggregates them into the next QC.
        self.context.send(self.round_leader(block.round), vote)
        self._arm_round_timer()

    def _validate_block(self, src: NodeId, block: Block) -> bool:
        if block.parent_digest != block.justify.block_digest:
            return False
        if block.sn is not None:
            if block.sn not in self.segment.seq_nrs:
                return False
            if block.sn in self._delivered_sns:
                return False
            # The same sequence number must not already occur in the ancestors.
            for ancestor in self._chain_from(block.parent_digest):
                if ancestor.sn == block.sn:
                    return False
        if not is_nil(block.value) and block.value is not None:
            if block.sn is None:
                return False
            if src != self.context.segment.leader:
                return False  # only the segment leader proposes real batches
            if not isinstance(block.value, Batch):
                return False
            if not self.context.validate_batch(block.value):
                return False
        return True

    def _safe_to_vote(self, block: Block) -> bool:
        """HotStuff safety rule: extend the locked block or see a newer QC."""
        if block.justify.view > self._locked_qc.view:
            return True
        locked_digest = self._locked_qc.block_digest
        for ancestor in self._chain_from(block.parent_digest):
            if ancestor.digest() == locked_digest:
                return True
        return locked_digest == GENESIS_DIGEST or block.parent_digest == locked_digest

    # ----------------------------------------------------------------- votes
    def _on_vote(self, src: NodeId, vote: Vote) -> None:
        if vote.block_digest in self._qc_formed:
            return
        if not self._threshold.verify_share(vote.partial):
            # Forged partial signature: reject and let the host count it.
            self.context.report_misbehaviour("invalid-signature", src)
            return
        shares = self._vote_shares.setdefault(vote.block_digest, {})
        shares[src] = vote.partial
        if len(shares) < self.context.strong_quorum:
            return
        block = self._blocks.get(vote.block_digest)
        if block is None:
            return
        combined = self._threshold.combine(shares.values())
        qc = QuorumCertificate(view=block.view, block_digest=vote.block_digest, signature=combined)
        self._qc_formed.add(vote.block_digest)
        if self._awaiting_qc_digest == vote.block_digest:
            self._awaiting_qc_digest = None
        self._process_qc(qc)
        # Latency-bound pipeline: the next proposal follows the fresh QC.  If
        # there is nothing to batch yet, wait min_batch_timeout before
        # proposing (an empty or dummy block) to avoid spinning at line rate.
        delay = 0.0
        if (
            self.context.pending_requests() == 0
            and self.context.config.min_batch_timeout > 0
            and not self._all_delivered()
        ):
            delay = self.context.config.min_batch_timeout
        self._schedule_proposal(delay)

    # ------------------------------------------------------------------ QCs
    def _process_qc(self, qc: QuorumCertificate) -> None:
        """The chained-HotStuff ``update`` procedure (pre-commit/commit/decide)."""
        if qc.block_digest == GENESIS_DIGEST:
            return
        if qc.signature is not None and not self._threshold.verify(qc.signature, qc.block_digest):
            return
        if qc.view > self._high_qc.view:
            self._high_qc = qc
        b2 = self._blocks.get(qc.block_digest)
        if b2 is None:
            return
        if b2.justify.view > self._locked_qc.view:
            self._locked_qc = b2.justify
        b1 = self._blocks.get(b2.parent_digest)
        if b1 is None:
            return
        b0 = self._blocks.get(b1.parent_digest)
        if b0 is None:
            return
        if b2.view == b1.view + 1 and b1.view == b0.view + 1:
            self._commit(b0)

    def _commit(self, block: Block) -> None:
        """Commit ``block`` and all its uncommitted ancestors, oldest first."""
        chain = self._chain_from(block.digest())
        for ancestor in reversed(chain):
            digest = ancestor.digest()
            if digest in self._committed:
                continue
            self._committed.add(digest)
            if ancestor.sn is not None and ancestor.sn not in self._delivered_sns:
                self._delivered_sns.add(ancestor.sn)
                value = ancestor.value if ancestor.value is not None else NIL
                tracer = self.context.tracer
                if tracer is not None:
                    tracer.on_sb(
                        self.context.now(), self.context.node_id,
                        self.context.segment.instance_id, ancestor.sn, "decided",
                    )
                self.context.deliver(ancestor.sn, value)
        # Progress resets the pacemaker backoff: later stalls start from the
        # base timeout instead of one inflated during a past outage.
        if self.context.config.vc_recovery:
            self._round_timeout = self._base_round_timeout
        if self._all_delivered():
            if self._round_timer is not None:
                self._round_timer.cancel()
            if self._round > 0 and not self._final_qc_published:
                self._final_qc_published = True
                # Round changes happened, so the QC pipeline was disrupted:
                # followers of the silent pre-change leader can be one QC
                # short of committing the tail, and we leave the pacemaker
                # now (no more proposals will carry our QCs).  Publish the
                # final high QC once so everyone can close the three-chain.
                self.context.broadcast(
                    NewRound(round=self._round, high_qc=self._high_qc)
                )

    # ------------------------------------------------------------- pacemaker
    def _arm_round_timer(self) -> None:
        if self._stopped or self._all_delivered():
            return
        if self._round_timer is not None:
            self._round_timer.cancel()
        # timeout_jitter() is 1.0 unless ISSConfig.view_change_jitter is set;
        # with it, simultaneous stalls across nodes time out desynchronised.
        self._round_timer = self.context.schedule(
            self._round_timeout * self.context.timeout_jitter(), self._on_round_timeout
        )

    def _on_round_timeout(self) -> None:
        if self._stopped or self._all_delivered():
            return
        self._round += 1
        self.rounds_changed += 1
        self.context.note_view_change()
        self._round_timeout *= 2
        self._proposing_active = False
        self._awaiting_qc_digest = None
        message = NewRound(round=self._round, high_qc=self._high_qc)
        self.context.send(self.round_leader(self._round), message)
        self._arm_round_timer()

    def nudge(self) -> None:
        """Partition healed: advance the pacemaker now at base backoff.

        The resulting NewRound hands our high QC to the next leader, and a
        peer that already finished the segment answers with *its* high QC
        (see :meth:`_on_new_round`), closing the three-chain for a node
        that was cut off — no backed-off timer wait.
        """
        if self._stopped or self._all_delivered():
            return
        self._round_timeout = self._base_round_timeout
        self._on_round_timeout()

    def _on_new_round(self, src: NodeId, message: NewRound) -> None:
        # Learn the carried QC first, independent of round bookkeeping: a
        # NewRound may be the only vehicle that brings a lagging node the
        # final QC of a chain whose leader has gone silent.
        self._process_qc(message.high_qc)
        if self._all_delivered():
            # We finished this segment and left the pacemaker (our round
            # timer is cancelled, so we will never contribute to the
            # sender's NewRound quorum).  The sender is lagging — typically
            # one QC behind a leader that went silent after its own delivery
            # completed.  Hand it our high QC: processing it lets the sender
            # commit the tail through the three-chain rule and stop asking.
            # Only reply when the sender is actually behind — two finished
            # nodes must not echo at each other forever.
            if src != self.context.node_id and message.high_qc.view < self._high_qc.view:
                self.context.send(src, NewRound(round=message.round, high_qc=self._high_qc))
            return
        if message.round < self._round:
            return
        votes = self._new_round_msgs.setdefault(message.round, {})
        votes[src] = message
        if self.round_leader(message.round) != self.context.node_id:
            return
        if len(votes) >= self.context.strong_quorum and not self._proposing_active:
            self._round = max(self._round, message.round)
            self._proposing_active = True
            self._awaiting_qc_digest = None
            self._schedule_proposal()

    # -------------------------------------------------------------- queries
    def committed_count(self) -> int:
        return len(self._delivered_sns)
