"""Chained-HotStuff Sequenced-Broadcast implementation."""

from .messages import Block, Proposal, Vote, NewRound, QuorumCertificate, GENESIS_QC, GENESIS_DIGEST
from .hotstuff import HotStuffSB, PIPELINE_FLUSH_BLOCKS

__all__ = [
    "HotStuffSB",
    "Block",
    "Proposal",
    "Vote",
    "NewRound",
    "QuorumCertificate",
    "GENESIS_QC",
    "GENESIS_DIGEST",
    "PIPELINE_FLUSH_BLOCKS",
]
