"""PBFT Sequenced-Broadcast implementation."""

from .messages import PrePrepare, Prepare, Commit, ViewChange, NewView, PreparedProof
from .pbft import PbftSB

__all__ = [
    "PbftSB",
    "PrePrepare",
    "Prepare",
    "Commit",
    "ViewChange",
    "NewView",
    "PreparedProof",
]
