"""PBFT as a Sequenced Broadcast implementation (Section 4.2.1).

One :class:`PbftSB` instance orders exactly the sequence numbers of one ISS
segment.  View 0's primary is the segment leader (the SB designated sender);
any later view's primary — chosen round-robin — may only re-propose values
that were prepared under the segment leader or propose ``⊥``, which together
with the follower acceptance rules makes the instance satisfy SB1–SB4.

Adaptations from the textbook protocol, following the paper:

* no per-request timers: a single timer per instance is reset whenever *any*
  sequence number commits (bucket rotation already prevents censoring);
* the leader's proposal rate is capped by the shared
  :class:`~repro.core.pacing.ProposalPacer` (fixed batch rate, Section 4.4.1);
* view changes use signed messages in the style of Castro-Liskov'01.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.pacing import ProposalPacer
from ..core.sb import SBContext, SBInstance
from ..core.types import Batch, LogEntry, NIL, NodeId, SeqNr, ViewNr, is_nil
from ..runtime.api import Timer
from .messages import Commit, NewView, Prepare, PreparedProof, PrePrepare, ViewChange


@dataclass
class _Slot:
    """Per-sequence-number agreement state."""

    sn: SeqNr
    preprepare: Optional[PrePrepare] = None
    #: Value carried by the accepted pre-prepare (batch or ⊥).
    value: Optional[LogEntry] = None
    prepares: Dict[Tuple[ViewNr, bytes], Set[NodeId]] = field(default_factory=dict)
    commits: Dict[Tuple[ViewNr, bytes], Set[NodeId]] = field(default_factory=dict)
    prepare_sent: Set[ViewNr] = field(default_factory=set)
    commit_sent: Set[ViewNr] = field(default_factory=set)
    #: Highest view in which a value was prepared, with its proof.
    prepared_proof: Optional[PreparedProof] = None
    committed: bool = False
    #: Views for which primary equivocation was already reported (once each).
    equivocation_reported: Set[ViewNr] = field(default_factory=set)


class PbftSB(SBInstance):
    """PBFT engine scoped to a single segment."""

    def __init__(self, context: SBContext):
        super().__init__(context)
        self.view: ViewNr = 0
        self._slots: Dict[SeqNr, _Slot] = {
            sn: _Slot(sn=sn) for sn in context.segment.seq_nrs
        }
        self._pacer = ProposalPacer(context, self._leader_propose)
        self._view_timer: Optional[Timer] = None
        self._base_view_timeout = context.config.view_change_timeout
        self._view_timeout = context.config.view_change_timeout
        self._view_changes: Dict[ViewNr, Dict[NodeId, ViewChange]] = {}
        self._new_view_installed: Set[ViewNr] = set()
        #: Highest view we have demanded via a VIEW-CHANGE message.
        self._highest_vc_sent: ViewNr = 0
        self._stopped = False
        #: Statistics for tests / metrics.
        self.view_changes_completed = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """SB-INIT: leaders start proposing; everyone arms the view timer."""
        self._arm_view_timer()
        self._pacer.start()

    def stop(self) -> None:
        self._stopped = True
        self._pacer.stop()
        if self._view_timer is not None:
            self._view_timer.cancel()

    # ------------------------------------------------------------ utilities
    def primary_of(self, view: ViewNr) -> NodeId:
        """Primary of ``view``: the segment leader in view 0, then round-robin."""
        nodes = self.context.all_nodes
        leader_index = nodes.index(self.context.segment.leader)
        return nodes[(leader_index + view) % len(nodes)]

    @property
    def _quorum(self) -> int:
        return self.context.strong_quorum

    def _all_committed(self) -> bool:
        return all(slot.committed for slot in self._slots.values())

    # ---------------------------------------------------------- leader path
    def _leader_propose(self, sn: SeqNr, batch: Batch) -> None:
        """Pacer callback at the segment leader (view 0 primary)."""
        if self._stopped or self.view != 0:
            return
        slot = self._slots[sn]
        if slot.preprepare is not None or slot.committed:
            return
        message = PrePrepare(view=0, sn=sn, value=batch, digest=batch.digest())
        self.context.broadcast(message)

    # ------------------------------------------------------------- messages
    def handle_message(self, src: NodeId, message: object) -> None:
        if self._stopped:
            return
        if isinstance(message, PrePrepare):
            self._on_preprepare(src, message)
        elif isinstance(message, Prepare):
            self._on_prepare(src, message)
        elif isinstance(message, Commit):
            self._on_commit(src, message)
        elif isinstance(message, ViewChange):
            self._on_view_change(src, message)
        elif isinstance(message, NewView):
            self._on_new_view(src, message)

    # ------------------------------------------------------------ agreement
    def _accept_preprepare(self, src: NodeId, message: PrePrepare) -> bool:
        """Follower acceptance rules (Section 4.2, rules (a)–(d))."""
        if message.sn not in self._slots:
            return False
        if message.view != self.view:
            return False
        if src != self.primary_of(message.view):
            return False
        slot = self._slots[message.sn]
        if slot.committed:
            return False
        if slot.preprepare is not None and slot.preprepare.view >= message.view:
            return False
        if is_nil(message.value):
            # ⊥ may only be proposed by a non-initial view's primary.
            return message.view > 0
        if not isinstance(message.value, Batch):
            return False
        if message.value.digest() != message.digest:
            return False
        if message.view == 0:
            # Only the segment leader (view-0 primary) proposes real batches.
            return self.context.validate_batch(message.value)
        # A later view may carry a real batch only when re-proposing a value
        # prepared under the segment leader (checked via the new-view path,
        # which installs such pre-prepares directly).
        slot_proof = slot.prepared_proof
        return slot_proof is not None and slot_proof.digest == message.digest

    def _on_preprepare(self, src: NodeId, message: PrePrepare) -> None:
        if not self._accept_preprepare(src, message):
            return
        slot = self._slots[message.sn]
        slot.preprepare = message
        slot.value = message.value
        self._send_prepare(slot, message.view, message.digest)
        # Prepare votes conflicting with this proposal may already be here.
        self._maybe_detect_equivocation(slot)

    def _send_prepare(self, slot: _Slot, view: ViewNr, digest: bytes) -> None:
        if view in slot.prepare_sent:
            return
        slot.prepare_sent.add(view)
        tracer = self.context.tracer
        if tracer is not None:
            tracer.on_sb(
                self.context.now(), self.context.node_id,
                self.context.segment.instance_id, slot.sn, "prepare-vote",
            )
        self.context.broadcast(Prepare(view=view, sn=slot.sn, digest=digest))

    def _on_prepare(self, src: NodeId, message: Prepare) -> None:
        slot = self._slots.get(message.sn)
        if slot is None or slot.committed:
            return
        voters = slot.prepares.setdefault((message.view, message.digest), set())
        voters.add(src)
        self._maybe_detect_equivocation(slot)
        self._check_prepared(slot, message.view, message.digest)

    def _maybe_detect_equivocation(self, slot: _Slot) -> None:
        """Detect primary equivocation from conflicting prepare votes.

        ``f+1`` prepare votes for a digest *different* from the pre-prepare
        this node accepted in the same view prove at least one *correct*
        node accepted a conflicting pre-prepare — over authenticated
        channels, only an equivocating primary can produce that state.
        Reported once per (slot, view) via the context (diagnostics only;
        eviction stays log-driven, see ``SBContext.report_misbehaviour``).
        """
        accepted = slot.preprepare
        if accepted is None:
            return
        view = accepted.view
        if view in slot.equivocation_reported:
            return
        if self.primary_of(view) == self.context.node_id:
            return  # our own proposal cannot prove someone else equivocated
        weak = self.context.weak_quorum
        for (vote_view, digest), voters in slot.prepares.items():
            if vote_view == view and digest != accepted.digest and len(voters) >= weak:
                slot.equivocation_reported.add(view)
                self.context.report_misbehaviour("equivocation", self.primary_of(view))
                return

    def _check_prepared(self, slot: _Slot, view: ViewNr, digest: bytes) -> None:
        voters = slot.prepares.get((view, digest), set())
        if len(voters) < self._quorum:
            return
        if slot.preprepare is None or slot.preprepare.digest != digest:
            return
        if view in slot.commit_sent:
            return
        slot.commit_sent.add(view)
        slot.prepared_proof = PreparedProof(
            view=view, sn=slot.sn, digest=digest, value=slot.value
        )
        tracer = self.context.tracer
        if tracer is not None:
            tracer.on_sb(
                self.context.now(), self.context.node_id,
                self.context.segment.instance_id, slot.sn, "commit-vote",
            )
        self.context.broadcast(Commit(view=view, sn=slot.sn, digest=digest))

    def _on_commit(self, src: NodeId, message: Commit) -> None:
        slot = self._slots.get(message.sn)
        if slot is None or slot.committed:
            return
        voters = slot.commits.setdefault((message.view, message.digest), set())
        voters.add(src)
        if len(voters) < self._quorum:
            return
        if slot.preprepare is None or slot.preprepare.digest != message.digest:
            return
        self._commit_slot(slot)

    def _commit_slot(self, slot: _Slot) -> None:
        slot.committed = True
        value = slot.value if slot.value is not None else NIL
        tracer = self.context.tracer
        if tracer is not None:
            tracer.on_sb(
                self.context.now(), self.context.node_id,
                self.context.segment.instance_id, slot.sn, "decided",
            )
        self.context.deliver(slot.sn, value)
        # Progress resets the view-change backoff (standard PBFT rule): a
        # commit proves the current configuration is live, so later stalls
        # start from the base timeout instead of one inflated by view
        # changes during a past outage.
        if self.context.config.vc_recovery:
            self._view_timeout = self._base_view_timeout
        if self._all_committed():
            if self._view_timer is not None:
                self._view_timer.cancel()
        else:
            # Progress was made: reset the single per-instance timer.
            self._arm_view_timer()

    # ---------------------------------------------------------- view change
    def _arm_view_timer(self) -> None:
        if self._stopped or self._all_committed():
            return
        if self._view_timer is not None:
            self._view_timer.cancel()
        # timeout_jitter() is 1.0 unless ISSConfig.view_change_jitter is set;
        # with it, simultaneous stalls across nodes time out desynchronised.
        self._view_timer = self.context.schedule(
            self._view_timeout * self.context.timeout_jitter(), self._on_view_timeout
        )

    def _on_view_timeout(self) -> None:
        if self._stopped or self._all_committed():
            return
        # While a view change is already in progress, each further timeout
        # targets the next view (standard PBFT liveness rule).
        self._start_view_change(max(self.view, self._highest_vc_sent) + 1)

    def nudge(self) -> None:
        """Partition healed: demand a view change immediately at base backoff.

        The new view's NEW-VIEW message re-announces decided values and
        committed peers re-affirm them (see :meth:`_on_new_view`), which is
        what lets a node that missed whole agreement rounds while cut off
        complete its log without waiting for a stable checkpoint.
        """
        if self._stopped or self._all_committed():
            return
        self._view_timeout = self._base_view_timeout
        self._start_view_change(max(self.view, self._highest_vc_sent) + 1)

    def _start_view_change(self, new_view: ViewNr) -> None:
        if new_view <= self._highest_vc_sent:
            return
        self._highest_vc_sent = new_view
        # With vc_recovery, committed slots stay in the proof set (committed
        # implies prepared, textbook PBFT): a new primary that missed a
        # commit round must still learn the decided value from the
        # view-change quorum, or it would re-propose ⊥ against a value the
        # rest already delivered.
        include_committed = self.context.config.vc_recovery
        prepared = tuple(
            slot.prepared_proof
            for slot in self._slots.values()
            if slot.prepared_proof is not None
            and (include_committed or not slot.committed)
        )
        message = ViewChange(new_view=new_view, prepared=prepared)
        self.context.broadcast(message)
        # Exponential backoff on the timeout so view changes stop after GST.
        self._view_timeout *= 2
        self._arm_view_timer()

    def _on_view_change(self, src: NodeId, message: ViewChange) -> None:
        if message.new_view <= self.view:
            return
        votes = self._view_changes.setdefault(message.new_view, {})
        votes[src] = message
        # Join a view change once f+1 nodes demand it (standard liveness rule).
        if len(votes) >= self.context.weak_quorum and self.context.node_id not in votes:
            self._start_view_change(message.new_view)
        if (
            len(votes) >= self._quorum
            and self.primary_of(message.new_view) == self.context.node_id
            and message.new_view not in self._new_view_installed
        ):
            self._send_new_view(message.new_view, votes)

    def _send_new_view(self, new_view: ViewNr, votes: Dict[NodeId, ViewChange]) -> None:
        self._new_view_installed.add(new_view)
        preprepares: List[PrePrepare] = []
        for sn, slot in self._slots.items():
            if slot.committed:
                # With vc_recovery, re-announce the decided value: a
                # follower that missed the commit round (lossy link,
                # partition) has no other way to learn it before a stable
                # checkpoint exists — and the checkpoint needs a quorum of
                # *complete* logs first.
                if self.context.config.vc_recovery:
                    value = slot.value if slot.value is not None else NIL
                    preprepares.append(
                        PrePrepare(
                            view=new_view, sn=sn, value=value, digest=value.digest()
                        )
                    )
                continue
            best: Optional[PreparedProof] = None
            for vote in votes.values():
                for proof in vote.prepared:
                    if proof.sn != sn:
                        continue
                    if best is None or proof.view > best.view:
                        best = proof
            local = slot.prepared_proof
            if local is not None and (best is None or local.view > best.view):
                best = local
            if best is not None:
                preprepares.append(
                    PrePrepare(view=new_view, sn=sn, value=best.value, digest=best.digest)
                )
            else:
                preprepares.append(
                    PrePrepare(view=new_view, sn=sn, value=NIL, digest=NIL.digest())
                )
        self.context.broadcast(NewView(new_view=new_view, preprepares=tuple(preprepares)))

    def _on_new_view(self, src: NodeId, message: NewView) -> None:
        if message.new_view < self.view:
            return
        if src != self.primary_of(message.new_view):
            return
        self.view = message.new_view
        self.view_changes_completed += 1
        self.context.note_view_change()
        self._arm_view_timer()
        for preprepare in message.preprepares:
            slot = self._slots.get(preprepare.sn)
            if slot is None:
                continue
            if slot.committed:
                # With vc_recovery, re-affirm the decided digest in the new
                # view so followers that missed the original commit round
                # can assemble a commit quorum (the primary's re-announced
                # pre-prepare gives them the value; these votes give them
                # the proof).
                if not self.context.config.vc_recovery:
                    continue
                digest = (slot.value if slot.value is not None else NIL).digest()
                if digest == preprepare.digest and message.new_view not in slot.commit_sent:
                    slot.commit_sent.add(message.new_view)
                    self.context.broadcast(
                        Commit(view=message.new_view, sn=slot.sn, digest=digest)
                    )
                continue
            # Install the new-view pre-prepare: ⊥ always allowed; a real
            # batch only if it matches a known prepared proof or passes
            # validation (it originated from the segment leader).
            if not is_nil(preprepare.value):
                known = slot.prepared_proof is not None and slot.prepared_proof.digest == preprepare.digest
                if not known and not self.context.validate_batch(preprepare.value):
                    continue
            slot.preprepare = preprepare
            slot.value = preprepare.value
            self._send_prepare(slot, message.new_view, preprepare.digest)

    # -------------------------------------------------------------- queries
    def committed_count(self) -> int:
        return sum(1 for slot in self._slots.values() if slot.committed)
