"""PBFT protocol messages (per Sequenced-Broadcast instance).

Message identities (sender) come from the authenticated point-to-point
channel of the simulated network, matching the paper's PBFT implementation
which avoids signatures on common-case protocol messages; view-change
messages are treated as signed (Castro-Liskov'01 style, Section 4.2.1) which
in the simulation simply means their content is trusted to be attributable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.types import LogEntry, NIL, SeqNr, ViewNr, is_nil
from ..runtime.wire import register_batchable


def entry_wire_size(entry: LogEntry) -> int:
    """Wire size of a batch or ⊥ payload."""
    if entry is None:
        return 0
    if is_nil(entry):
        return 1
    return entry.size_bytes()


@dataclass(frozen=True)
class PrePrepare:
    """Leader's proposal assigning ``value`` to ``sn`` in ``view``."""

    view: ViewNr
    sn: SeqNr
    value: LogEntry
    digest: bytes

    def wire_size(self) -> int:
        return 64 + entry_wire_size(self.value)


@register_batchable
@dataclass(frozen=True)
class Prepare:
    """Follower vote echoing the proposal digest.

    Batchable: votes for different slots/instances travelling the same link
    within one flush tick share a wire frame (see :mod:`repro.sim.batching`).
    """

    view: ViewNr
    sn: SeqNr
    digest: bytes

    def wire_size(self) -> int:
        return 80


@register_batchable
@dataclass(frozen=True)
class Commit:
    """Second-phase vote; 2f+1 of these commit the value.  Batchable."""

    view: ViewNr
    sn: SeqNr
    digest: bytes

    def wire_size(self) -> int:
        return 80


@dataclass(frozen=True)
class PreparedProof:
    """Evidence that a value was prepared for ``sn`` in ``view``.

    Carried inside view-change messages so the new leader can re-propose the
    value (only values initially proposed by the segment leader can ever be
    prepared, preserving the SB design rules of Section 4.2).
    """

    view: ViewNr
    sn: SeqNr
    digest: bytes
    value: LogEntry

    def wire_size(self) -> int:
        return 96 + entry_wire_size(self.value)


@dataclass(frozen=True)
class ViewChange:
    """Signed view-change message carrying all locally prepared proofs."""

    new_view: ViewNr
    prepared: Tuple[PreparedProof, ...]

    def wire_size(self) -> int:
        return 96 + sum(p.wire_size() for p in self.prepared)


@dataclass(frozen=True)
class NewView:
    """New leader's message installing ``new_view``.

    ``preprepares`` contains one PrePrepare per not-yet-committed sequence
    number: prepared values are carried over, everything else becomes ⊥.
    """

    new_view: ViewNr
    preprepares: Tuple[PrePrepare, ...]

    def wire_size(self) -> int:
        return 96 + sum(p.wire_size() for p in self.preprepares)
