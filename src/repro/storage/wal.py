"""The write-ahead log of one ISS node.

The WAL is the append-only record of everything a node must not lose in a
crash: committed log entries (which double as per-segment Sequenced
Broadcast progress — one record per SB-DELIVER), stable checkpoint
certificates, and epoch starts.  It is deliberately *narrow*: protocol
volatile state (PBFT prepares, Raft terms, view numbers) is **not**
persisted, matching real SMR deployments where an uncommitted slot is
simply re-learned from the peers after a restart.

Compaction follows Section 3.4: once a checkpoint is stable, everything at
or below its last sequence number moves into a snapshot
(:mod:`repro.storage.snapshot`) and :meth:`WriteAheadLog.truncate_below`
drops the covered records, so the WAL only ever holds the tail above the
latest stable checkpoint.

The log is backed by a plain in-memory list (the simulator has no disks)
and is strictly deterministic: appends happen in commit order, replay
iterates in append order, and nothing here touches the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.types import CheckpointCertificate, EpochNr, LogEntry, SeqNr

#: Record kinds stored in the WAL.
RECORD_COMMIT = "commit"
RECORD_CHECKPOINT = "checkpoint"
RECORD_EPOCH_START = "epoch-start"
RECORD_MEMBERSHIP = "membership"


@dataclass(frozen=True)
class WalRecord:
    """One append-only WAL record.

    ``kind`` selects which fields are meaningful: a ``commit`` carries
    ``(sn, entry, epoch)``, a ``checkpoint`` carries ``certificate``, an
    ``epoch-start`` carries only ``epoch``, and a ``membership`` carries
    the activated replica set in ``members`` (effective from ``epoch``).
    """

    kind: str
    epoch: EpochNr
    sn: SeqNr = -1
    entry: LogEntry = None
    certificate: Optional[CheckpointCertificate] = None
    members: Optional[Tuple[int, ...]] = None


class WriteAheadLog:
    """Append-only, truncatable record log (in-memory backed)."""

    def __init__(self) -> None:
        self._records: List[WalRecord] = []
        #: Total records ever appended (survives truncation; for metrics).
        self.appended_total = 0
        #: Records dropped by compaction so far.
        self.truncated_total = 0

    def __len__(self) -> int:
        return len(self._records)

    # -------------------------------------------------------------- appends
    def append_commit(self, sn: SeqNr, entry: LogEntry, epoch: EpochNr) -> None:
        """Persist one committed log entry (called on every SB-DELIVER)."""
        self._append(WalRecord(kind=RECORD_COMMIT, epoch=epoch, sn=sn, entry=entry))

    def append_checkpoint(self, certificate: CheckpointCertificate) -> None:
        """Persist a stable checkpoint certificate."""
        self._append(
            WalRecord(
                kind=RECORD_CHECKPOINT,
                epoch=certificate.epoch,
                sn=certificate.last_sn,
                certificate=certificate,
            )
        )

    def append_epoch_start(self, epoch: EpochNr) -> None:
        """Persist the fact that the node entered ``epoch``."""
        self._append(WalRecord(kind=RECORD_EPOCH_START, epoch=epoch))

    def append_membership(self, epoch: EpochNr, members: Tuple[int, ...]) -> None:
        """Persist an activated membership view (effective from ``epoch``).

        Strictly an audit record: membership is always *derived* from the
        committed ConfigTxs in the replayed log, so recovery never needs to
        read these back — but an operator inspecting a WAL (or a future
        binary-codec export) sees every reconfiguration inline with the
        commits that caused it.
        """
        self._append(
            WalRecord(kind=RECORD_MEMBERSHIP, epoch=epoch, members=tuple(members))
        )

    def _append(self, record: WalRecord) -> None:
        self._records.append(record)
        self.appended_total += 1

    # ------------------------------------------------------------ compaction
    def truncate_below(self, sn_bound: SeqNr, epoch_bound: EpochNr) -> int:
        """Drop records covered by a stable checkpoint; return how many.

        Commits with ``sn < sn_bound`` are now part of the snapshot;
        checkpoint and epoch-start records for epochs ``< epoch_bound``
        are anchored by the (newer) snapshot certificate and equally
        redundant.  Records above the bounds survive — including commits
        that ran ahead of the checkpoint.
        """
        kept: List[WalRecord] = []
        for record in self._records:
            if record.kind == RECORD_COMMIT:
                redundant = record.sn < sn_bound
            else:
                redundant = record.epoch < epoch_bound
            if not redundant:
                kept.append(record)
        dropped = len(self._records) - len(kept)
        self._records = kept
        self.truncated_total += dropped
        return dropped

    # -------------------------------------------------------------- queries
    def records(self) -> Iterator[WalRecord]:
        """All live records in append order (the replay order)."""
        return iter(self._records)

    def commits(self) -> List[Tuple[SeqNr, LogEntry, EpochNr]]:
        """The live commit records as ``(sn, entry, epoch)`` tuples."""
        return [
            (r.sn, r.entry, r.epoch)
            for r in self._records
            if r.kind == RECORD_COMMIT
        ]

    def checkpoints(self) -> List[CheckpointCertificate]:
        """The live stable checkpoint certificates, in append order."""
        return [
            r.certificate for r in self._records if r.kind == RECORD_CHECKPOINT
        ]

    def latest_epoch_started(self) -> Optional[EpochNr]:
        """The most recently recorded epoch start, if any survives."""
        for record in reversed(self._records):
            if record.kind == RECORD_EPOCH_START:
                return record.epoch
        return None

    def membership_records(self) -> List[Tuple[EpochNr, Tuple[int, ...]]]:
        """The live membership activations as ``(epoch, members)`` tuples."""
        return [
            (r.epoch, r.members)
            for r in self._records
            if r.kind == RECORD_MEMBERSHIP
        ]
