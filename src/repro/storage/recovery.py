"""Rebuilding an ISS node from its durable storage after a crash.

Recovery has three phases, mirroring production SMR restart procedures:

1. **Snapshot apply** — the latest checkpoint-anchored snapshot is replayed
   into the fresh node's log, delivered sets and client watermarks.
2. **WAL replay** — commit records above the snapshot are re-applied and
   stable checkpoint certificates are restored into the node's checkpoint
   protocol (so completed epochs are not re-announced and their SB
   instances are never re-opened).
3. **Fast-forward** — epoch bookkeeping (leader-policy failure history,
   watermark windows, counters) is advanced through every epoch the
   restored log completes, contiguous delivery replays the restored prefix
   to the application, and the epoch to resume at (the first incomplete
   one) is computed.

What storage cannot provide — entries ordered while the node was down —
is fetched afterwards through the existing state-transfer protocol: the
harness starts the node at the resume epoch and calls
``begin_recovery_catchup()``, which probes peers for everything they can
prove stable (see :mod:`repro.core.state_transfer`).

Determinism: recovery is a pure function of the storage contents and the
node's configuration.  Same seed ⇒ same crash ⇒ same WAL ⇒ same recovery,
which the restart golden trace pins (``tests/data/golden_trace_recovery.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .node_storage import NodeStorage
from .wal import RECORD_CHECKPOINT, RECORD_COMMIT


@dataclass
class RecoveryInfo:
    """What recovery did, for metrics and the restart report."""

    node_id: int
    #: First epoch the restored log does *not* complete — where to resume.
    resume_epoch: int
    #: Entries replayed from the snapshot / from the WAL tail.
    snapshot_entries: int = 0
    wal_entries_replayed: int = 0
    #: Stable checkpoint certificates restored from storage.
    certificates_restored: int = 0
    #: Requests re-delivered to the application during replay.
    requests_redelivered: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat, JSON-friendly view (used by reports and golden traces)."""
        return {
            "node": float(self.node_id),
            "resume_epoch": float(self.resume_epoch),
            "snapshot_entries": float(self.snapshot_entries),
            "wal_entries_replayed": float(self.wal_entries_replayed),
            "certificates_restored": float(self.certificates_restored),
            "requests_redelivered": float(self.requests_redelivered),
        }


class RecoveryManager:
    """Reconstructs a freshly built node from one :class:`NodeStorage`."""

    def __init__(self, storage: NodeStorage, tracer=None):
        self.storage = storage
        #: Observability hook (``repro.obs.RequestTracer``); when set, each
        #: recovery phase emits one event so post-restart gaps in a request's
        #: span are attributable to the replay that bridged them.
        self.tracer = tracer

    def recover(self, node, now: float) -> RecoveryInfo:
        """Restore ``node`` (a fresh, not-yet-started ISS node) from storage.

        Returns the :class:`RecoveryInfo`; the caller is expected to then
        ``node.start_at(info.resume_epoch)`` and
        ``node.begin_recovery_catchup()``.
        """
        info = RecoveryInfo(node_id=node.node_id, resume_epoch=0)

        # Phase 1: snapshot apply.
        snapshot = self.storage.latest_snapshot()
        if snapshot is not None:
            for sn, entry, epoch in snapshot.entries:
                node.restore_entry(sn, entry, epoch)
            info.snapshot_entries = len(snapshot.entries)
            if node.checkpoints.restore_stable(snapshot.certificate):
                info.certificates_restored += 1

        # Phase 2: WAL replay (commits and certificates, in append order).
        for record in self.storage.wal.records():
            if record.kind == RECORD_COMMIT:
                node.restore_entry(record.sn, record.entry, record.epoch)
                info.wal_entries_replayed += 1
            elif record.kind == RECORD_CHECKPOINT:
                if node.checkpoints.restore_stable(record.certificate):
                    info.certificates_restored += 1

        # Phase 3: fast-forward epoch bookkeeping over the restored prefix.
        resume = 0
        while node.manager.epoch_complete(resume, node.log):
            node.manager.finish_epoch(resume, node.log)
            # The pre-crash incarnation already broadcast its CHECKPOINT for
            # this epoch; announcing again would only add stale wire noise.
            node.checkpoints.mark_announced(resume)
            # Same contract as a live epoch transition: advance the client
            # watermarks AND collect the per-client state the advance makes
            # unreachable, so the restarted incarnation does not re-retain
            # the whole pre-crash delivered history.
            node.advance_client_watermarks()
            node.epochs_completed += 1
            resume += 1
        info.resume_epoch = resume
        tracer = self.tracer
        if tracer is not None:
            tracer.on_recovery(now, node.node_id, "snapshot", info.snapshot_entries)
            tracer.on_recovery(now, node.node_id, "wal-replay", info.wal_entries_replayed)
            tracer.on_recovery(now, node.node_id, "fast-forward", info.resume_epoch)

        # Replay contiguous delivery so the application (and the metrics
        # listeners) observe the restored prefix in the original order.
        # Client responses are *not* re-sent: they went out before the
        # crash, and clients treat replayed re-acknowledgements as
        # duplicates anyway.
        delivered = node.log.advance_delivery(now)
        info.requests_redelivered = len(delivered)
        if tracer is not None:
            tracer.on_recovery(now, node.node_id, "redeliver", info.requests_redelivered)
            if delivered:
                tracer.on_deliver_batch(now, node.node_id, delivered)
        on_deliver = node.on_deliver
        if on_deliver is not None:
            for item in delivered:
                on_deliver(node.node_id, item)
        return info
