"""Checkpoint-anchored snapshots of the replicated log.

A :class:`Snapshot` is the durable image of one node's log prefix at a
stable checkpoint: every entry up to the checkpoint's last sequence number,
plus the ``2f+1``-signed :class:`~repro.core.types.CheckpointCertificate`
that proves the prefix is the agreed one.  Because ISS's application state
*is* the delivered log, replaying the snapshot entries in order
reconstructs the full node state (delivered requests, watermarks,
per-request sequence numbers) bit for bit.

The :class:`SnapshotStore` keeps only the latest snapshot — an older one
is a strict prefix of a newer one, so holding both would duplicate state
without adding recoverability (the same argument that lets Section 3.4
garbage-collect everything below a stable checkpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.types import CheckpointCertificate, EpochNr, LogEntry, SeqNr


@dataclass(frozen=True)
class Snapshot:
    """The log prefix ``[0, last_sn]`` anchored by a stable checkpoint.

    ``entries`` holds one ``(sn, entry, epoch)`` triple per position, in
    sequence-number order and with no gaps — the store refuses to install
    anything else, so a loaded snapshot can always be replayed blindly.
    """

    epoch: EpochNr
    last_sn: SeqNr
    certificate: CheckpointCertificate
    entries: Tuple[Tuple[SeqNr, LogEntry, EpochNr], ...]

    def __len__(self) -> int:
        return len(self.entries)


class SnapshotStore:
    """Holds the latest snapshot of one node (older ones are subsumed)."""

    def __init__(self) -> None:
        self._latest: Optional[Snapshot] = None
        #: Snapshots installed over the store's lifetime (for metrics).
        self.installed_total = 0

    def install(self, snapshot: Snapshot) -> bool:
        """Install ``snapshot`` unless it is older than the current one.

        Returns True when the snapshot was accepted.  The entry list must
        cover ``[0, last_sn]`` contiguously; installing a snapshot with
        gaps would make recovery silently lossy, so it raises instead.
        """
        if len(snapshot.entries) != snapshot.last_sn + 1 or any(
            sn != position
            for position, (sn, _entry, _epoch) in enumerate(snapshot.entries)
        ):
            raise ValueError(
                f"snapshot entries must cover [0, {snapshot.last_sn}] contiguously"
            )
        if self._latest is not None and snapshot.last_sn <= self._latest.last_sn:
            return False
        self._latest = snapshot
        self.installed_total += 1
        return True

    def latest(self) -> Optional[Snapshot]:
        """The most recent snapshot, or ``None`` before the first one."""
        return self._latest

    def entry_count(self) -> int:
        """Number of log entries held by the latest snapshot."""
        return len(self._latest.entries) if self._latest is not None else 0
