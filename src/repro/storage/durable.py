"""File-backed durable storage: the live deployment's WAL and snapshots.

The in-memory :class:`~repro.storage.wal.WriteAheadLog` and
:class:`~repro.storage.snapshot.SnapshotStore` give the *simulator* a
persistence discipline without disks.  This module gives the live TCP
backend (:mod:`repro.net`) the real thing: the same record types, the same
compaction contract, but written to genuine fsync'd files so a ``kill -9``
followed by a restart recovers through
:class:`~repro.storage.recovery.RecoveryManager` from bytes that actually
survived the process.

On-disk format, chosen for torn-tail robustness rather than speed:

* ``wal.log`` — a sequence of frames, each ``>II`` (payload length,
  CRC-32 of the payload) followed by the pickled
  :class:`~repro.storage.wal.WalRecord`.  Appends flush and (by default)
  ``fsync`` before returning, so a commit acknowledged to the protocol is
  on disk.  A crash mid-append leaves a *torn tail* — a short or
  CRC-mismatching last frame — which reopen detects, drops, and truncates
  away; everything before it is intact by construction.
* ``snapshot.bin`` — one pickled :class:`~repro.storage.snapshot.Snapshot`,
  replaced atomically (write temp, fsync, ``os.replace``) at each
  compaction so a crash during snapshotting never corrupts the previous
  snapshot.

The fsync policy is configurable (``REPRO_FSYNC``): ``"always"`` syncs on
every append (the durability the recovery proof needs), ``"never"`` leaves
flushing to the OS page cache (benchmarking the protocol without paying
the disk; a power loss may then lose acknowledged commits).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import List, Optional, Tuple

from .node_storage import NodeStorage
from .snapshot import Snapshot, SnapshotStore
from .wal import WalRecord, WriteAheadLog

#: Frame header of one WAL record: payload length, CRC-32 of the payload.
_FRAME_HEADER = struct.Struct(">II")

#: Recognised fsync policies (see :func:`fsync_policy`).
FSYNC_ALWAYS = "always"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_NEVER)

#: File names inside one node's data directory.
WAL_FILENAME = "wal.log"
SNAPSHOT_FILENAME = "snapshot.bin"


def fsync_policy(default: str = FSYNC_ALWAYS) -> str:
    """The fsync policy from the ``REPRO_FSYNC`` env var.

    Unrecognised values fall back to ``default`` — misconfiguration must
    degrade to the *safer* behaviour, never silently disable durability.
    """
    raw = os.environ.get("REPRO_FSYNC", default).strip().lower()
    return raw if raw in FSYNC_POLICIES else default


def _frame(record: WalRecord) -> bytes:
    """Serialise one WAL record into its on-disk frame."""
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_wal_frames(path: Path) -> Tuple[List[WalRecord], int, bool]:
    """Read every intact WAL record from ``path``.

    Returns ``(records, good_offset, torn)`` where ``good_offset`` is the
    file offset right after the last intact frame and ``torn`` is True when
    trailing bytes had to be ignored (short frame, CRC mismatch, or an
    unpicklable payload — all the shapes a crash mid-append can leave).
    Purely a reader: the file is not modified, so it is safe to call on a
    WAL another process is still appending to.
    """
    records: List[WalRecord] = []
    offset = 0
    torn = False
    if not path.exists():
        return records, offset, torn
    data = path.read_bytes()
    total = len(data)
    while offset < total:
        if offset + _FRAME_HEADER.size > total:
            torn = True
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > total:
            torn = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            torn = True
            break
        records.append(record)
        offset = end
    return records, offset, torn


def read_snapshot_file(path: Path) -> Optional[Snapshot]:
    """Load the snapshot at ``path``, or None when absent/unreadable.

    An unreadable snapshot (crash during the very first install, before
    atomic replacement existed to protect it) degrades to "no snapshot":
    recovery then replays the WAL alone, which is always a correct prefix.
    """
    if not path.exists():
        return None
    try:
        snapshot = pickle.loads(path.read_bytes())
    except Exception:
        return None
    return snapshot if isinstance(snapshot, Snapshot) else None


class FileWriteAheadLog(WriteAheadLog):
    """A :class:`WriteAheadLog` persisted to an append-only fsync'd file.

    Reopening a path replays every intact record into memory (so the
    in-memory API is unchanged) and truncates a torn tail left by a crash
    mid-append.  Compaction (:meth:`truncate_below`) rewrites the file
    atomically via a temp file.
    """

    def __init__(self, path: Path, fsync: str = FSYNC_ALWAYS):
        super().__init__()
        self.path = Path(path)
        self._fsync = fsync == FSYNC_ALWAYS
        #: fsync() calls issued (tests pin fsync-on-commit through this).
        self.fsyncs = 0
        #: Whether reopen found (and truncated) a torn tail.
        self.torn_tail_detected = False
        records, good_offset, torn = read_wal_frames(self.path)
        if torn:
            self.torn_tail_detected = True
            with open(self.path, "r+b") as fh:
                fh.truncate(good_offset)
                fh.flush()
                os.fsync(fh.fileno())
        self._records.extend(records)
        self.appended_total = len(records)
        self._fh = open(self.path, "ab")

    def _append(self, record: WalRecord) -> None:
        super()._append(record)
        self._fh.write(_frame(record))
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1

    def truncate_below(self, sn_bound: int, epoch_bound: int) -> int:
        dropped = super().truncate_below(sn_bound, epoch_bound)
        if dropped:
            self._rewrite()
        return dropped

    def _rewrite(self) -> None:
        """Atomically rewrite the file with the surviving records."""
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            for record in self._records:
                fh.write(_frame(record))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        _fsync_dir(self.path.parent)

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()


class FileSnapshotStore(SnapshotStore):
    """A :class:`SnapshotStore` whose latest snapshot lives in one file.

    Installs replace the file atomically (temp + fsync + ``os.replace``),
    so the store never holds a half-written snapshot; reopening a path
    loads whatever snapshot the previous process made durable.
    """

    def __init__(self, path: Path):
        super().__init__()
        self.path = Path(path)
        existing = read_snapshot_file(self.path)
        if existing is not None:
            self._latest = existing

    def install(self, snapshot: Snapshot) -> bool:
        accepted = super().install(snapshot)
        if accepted:
            tmp = self.path.with_suffix(".tmp")
            with open(tmp, "wb") as fh:
                fh.write(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)
        return accepted


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a rename within it is durable (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class DurableNodeStorage(NodeStorage):
    """A :class:`NodeStorage` whose WAL and snapshots live on disk.

    One directory per node (``data_dir/node<N>`` by convention, chosen by
    the caller); constructing it on a directory with prior state reloads
    that state, which is exactly what a restarted
    :mod:`repro.net.host` process does before running recovery.
    """

    def __init__(self, node_id: int, directory: Path, fsync: str = FSYNC_ALWAYS):
        super().__init__(node_id)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal = FileWriteAheadLog(self.directory / WAL_FILENAME, fsync=fsync)
        self.snapshots = FileSnapshotStore(self.directory / SNAPSHOT_FILENAME)

    def has_state(self) -> bool:
        """True when the directory holds anything to recover from."""
        return self.snapshots.latest() is not None or len(self.wal) > 0

    def close(self) -> None:
        """Close the WAL's backing file (snapshots hold no open handle)."""
        self.wal.close()
