"""Per-node durable storage facade: WAL plus snapshot store.

:class:`NodeStorage` is the single object an ISS node (and the recovery
path) talks to.  The node calls the narrow ``record_*`` hooks from its
commit, epoch and checkpoint paths; the storage appends to the WAL and,
at every stable checkpoint, compacts: the covered prefix moves into a
:class:`~repro.storage.snapshot.Snapshot` and the WAL truncates below the
checkpoint (Section 3.4's garbage collection, made durable).

The object deliberately outlives the node: the harness keeps one
``NodeStorage`` per node id, hands it to every incarnation of that node,
and the :class:`~repro.storage.recovery.RecoveryManager` rebuilds a fresh
node from it after a crash.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.types import CheckpointCertificate, EpochNr, LogEntry, NodeId, SeqNr
from .snapshot import Snapshot, SnapshotStore
from .wal import WriteAheadLog


class NodeStorage:
    """Durable state of one node across crashes and restarts."""

    def __init__(self, node_id: NodeId):
        self.node_id = node_id
        self.wal = WriteAheadLog()
        self.snapshots = SnapshotStore()
        #: Successful compactions (snapshot installed + WAL truncated).
        self.compactions = 0
        #: Stable checkpoints whose prefix was locally incomplete (the node
        #: heard 2f+1 votes before holding every entry); compaction is
        #: deferred until a later checkpoint covers the gap.
        self.deferred_compactions = 0

    # ------------------------------------------------------------- recording
    def record_commit(self, sn: SeqNr, entry: LogEntry, epoch: EpochNr) -> None:
        """Persist one committed log entry."""
        self.wal.append_commit(sn, entry, epoch)

    def record_epoch_start(self, epoch: EpochNr) -> None:
        """Persist an epoch transition."""
        self.wal.append_epoch_start(epoch)

    def record_stable_checkpoint(self, certificate: CheckpointCertificate) -> None:
        """Persist a stable checkpoint and compact the WAL below it."""
        self.wal.append_checkpoint(certificate)
        self._compact(certificate)

    def record_membership(self, epoch: EpochNr, members: Tuple[NodeId, ...]) -> None:
        """Persist an activated membership view (audit trail; see
        :meth:`~repro.storage.wal.WriteAheadLog.append_membership`)."""
        self.wal.append_membership(epoch, members)

    # ------------------------------------------------------------ compaction
    def _compact(self, certificate: CheckpointCertificate) -> None:
        """Fold everything at or below ``certificate.last_sn`` into a snapshot.

        A stable checkpoint can outrun the local log (2f+1 *peers* may vote
        before this node holds every entry of the epoch); in that case the
        prefix has gaps and compaction is deferred — the WAL keeps its
        records and a later checkpoint retries once state transfer has
        filled the holes.
        """
        last_sn = certificate.last_sn
        previous = self.snapshots.latest()
        if previous is not None and previous.last_sn >= last_sn:
            return
        # Only the delta above the previous snapshot needs assembling: the
        # snapshot already covers [0, previous.last_sn] contiguously, and
        # everything below it was truncated out of the WAL at the previous
        # compaction.  Rebuilding the prefix from genesis here would make
        # each checkpoint O(total log) instead of O(epoch).
        base = previous.entries if previous is not None else ()
        start = len(base)  # == previous.last_sn + 1, by contiguity
        delta: Dict[SeqNr, Tuple[LogEntry, EpochNr]] = {}
        for sn, entry, epoch in self.wal.commits():
            if start <= sn <= last_sn:
                delta[sn] = (entry, epoch)
        if len(delta) != last_sn - start + 1:
            self.deferred_compactions += 1
            return
        entries = base + tuple(
            (sn, delta[sn][0], delta[sn][1]) for sn in range(start, last_sn + 1)
        )
        self.snapshots.install(
            Snapshot(
                epoch=certificate.epoch,
                last_sn=last_sn,
                certificate=certificate,
                entries=entries,
            )
        )
        self.wal.truncate_below(last_sn + 1, certificate.epoch)
        self.compactions += 1

    # --------------------------------------------------------------- queries
    def latest_snapshot(self) -> Optional[Snapshot]:
        """The latest snapshot, or ``None`` before the first compaction."""
        return self.snapshots.latest()

    def durable_entry_count(self) -> int:
        """Entries recoverable from storage (snapshot plus WAL tail)."""
        return self.snapshots.entry_count() + len(self.wal.commits())

    def stats(self) -> Dict[str, int]:
        """Counters for reports and tests."""
        return {
            "wal_records": len(self.wal),
            "wal_appended_total": self.wal.appended_total,
            "wal_truncated_total": self.wal.truncated_total,
            "snapshot_entries": self.snapshots.entry_count(),
            "compactions": self.compactions,
            "deferred_compactions": self.deferred_compactions,
        }
