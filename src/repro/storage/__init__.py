"""Durable storage and crash recovery for ISS nodes.

The paper's checkpointing (Section 3.4) and state transfer (Section 3.5)
let *lagging* nodes catch up; this package makes them load-bearing for
*crashed* nodes too.  Every node can own a :class:`NodeStorage` holding

* a :class:`WriteAheadLog` of protocol-critical durable state — committed
  log entries, stable checkpoint certificates and epoch starts — appended
  through narrow ``record_*`` hooks called from the ISS core, and
* a :class:`SnapshotStore` that compacts the WAL at every stable
  checkpoint: entries at or below the checkpoint move into a single
  :class:`Snapshot` anchored by the checkpoint certificate, exactly the
  truncate-below-checkpoint garbage collection Section 3.4 prescribes.

:class:`RecoveryManager` reconstructs a fresh node from that storage after
a crash: apply the snapshot, replay the WAL above it, fast-forward the
epoch bookkeeping, re-deliver the restored prefix to the application, and
hand the node back to the harness to fetch anything ordered while it was
down through the existing state-transfer protocol.

The simulator backs all of this with plain in-memory structures (it has
no disks), but the write/compact/replay discipline mirrors a real WAL +
snapshot store, so the recovery path exercises the same protocol logic a
production deployment would.  The live TCP backend uses the file-backed
subclasses in :mod:`repro.storage.durable` — same record types and
compaction contract, written to genuine fsync'd files with torn-tail
detection on reopen — so ``kill -9`` recovery runs over real durability.
"""

from .durable import (
    DurableNodeStorage,
    FileSnapshotStore,
    FileWriteAheadLog,
    fsync_policy,
)
from .node_storage import NodeStorage
from .recovery import RecoveryInfo, RecoveryManager
from .snapshot import Snapshot, SnapshotStore
from .wal import (
    RECORD_CHECKPOINT,
    RECORD_COMMIT,
    RECORD_EPOCH_START,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "DurableNodeStorage",
    "FileSnapshotStore",
    "FileWriteAheadLog",
    "fsync_policy",
    "NodeStorage",
    "RecoveryInfo",
    "RecoveryManager",
    "Snapshot",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "RECORD_CHECKPOINT",
    "RECORD_COMMIT",
    "RECORD_EPOCH_START",
]
