"""Dynamic-membership smoke test (``python -m repro.membership_smoke``).

Runs the pinned reconfiguration scenario — 4 PBFT nodes over the scaled
WAN with wire batching on, replica 4 *added* at t=3 s and replica 0
*removed* at t=10 s, both as ConfigTxs ordered in the log — and checks
the membership invariants end to end:

* both ConfigTxs **activate at epoch boundaries** (the add grows the view
  to 5, the removal shrinks it to ``[1, 2, 3, 4]``),
* the joiner **bootstraps** via state transfer and reaches the cluster
  frontier (``time_to_join`` ≥ 0), the removed replica retires exactly at
  its activation boundary,
* every client request **completes** (100 %, through the retry loop) and
  the standing + membership invariants hold
  (:func:`repro.harness.invariants.check_invariants`), and
* the whole run is **deterministic**: the delivered-sequence digest of a
  never-reconfigured replica, the activation schedule, and the
  simulator/network counters must match the golden trace recorded in
  ``tests/data/golden_trace_membership.json`` bit for bit.

Exit code 1 on any violation, which is how ``make membership-smoke`` and
the CI driver (``benchmarks/run_perf_smoke.py``) catch reconfiguration
regressions.  Pass ``--update-golden`` after an intentional
schedule-affecting change.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Optional

from . import golden, smokelib
from .core.config import NetworkConfig, WorkloadConfig, PROTOCOL_PBFT
from .core.state_transfer import DEFAULT_PROBE_STAGGER
from .harness.invariants import check_invariants
from .harness.runner import DEFAULT_RECOVERY_POLL_INTERVAL, Deployment
from .harness.scenarios import (
    DEFAULT_FLUSH_INTERVAL,
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    membership_config,
)
from .obs import ObsConfig
from .sim.faults import MEMBER_ADD, MEMBER_REMOVE, MembershipSpec

#: The pinned reconfiguration scenario (keep in sync with the golden trace).
SCENARIO = dict(
    protocol=PROTOCOL_PBFT,
    num_nodes=4,
    epoch_length=16,
    random_seed=11,
    num_clients=8,
    total_rate=600.0,
    duration=18.0,
    join_node=4,
    join_time=3.0,
    leave_node=0,
    leave_time=10.0,
    reference=1,
)


def golden_path() -> Path:
    """Location of the membership-determinism golden trace."""
    return smokelib.golden_data_path("golden_trace_membership.json")


def build_deployment() -> Deployment:
    """Build the pinned scenario.

    Every knob an env var could move (flush interval, membership epoch
    length, recovery poll tick, probe stagger) is set explicitly: the
    golden trace must be machine- and environment-stable.
    """
    config = membership_config(
        SCENARIO["protocol"],
        SCENARIO["num_nodes"],
        random_seed=SCENARIO["random_seed"],
        epoch_length=SCENARIO["epoch_length"],
    )
    network_config = NetworkConfig(
        bandwidth_bps=SCALED_BANDWIDTH_BPS,
        batch_flush_interval=DEFAULT_FLUSH_INTERVAL,
    )
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
        payload_size=PAYLOAD_BYTES,
    )
    return Deployment(
        config,
        network_config=network_config,
        workload=workload,
        membership_specs=[
            MembershipSpec(
                node=SCENARIO["join_node"], action=MEMBER_ADD,
                time=SCENARIO["join_time"],
            ),
            MembershipSpec(
                node=SCENARIO["leave_node"], action=MEMBER_REMOVE,
                time=SCENARIO["leave_time"],
            ),
        ],
        recovery_poll=DEFAULT_RECOVERY_POLL_INTERVAL,
        probe_stagger=DEFAULT_PROBE_STAGGER,
        obs=ObsConfig.disabled(),
        drain_time=8.0,
    )


#: Canonical delivered-sequence shape shared by every smoke gate.
delivered_trace = golden.delivered_trace


def run_smoke() -> Dict[str, object]:
    """Run the scenario once and return the figures the golden trace pins."""
    import hashlib

    deployment = build_deployment()
    result = deployment.run()
    report = result.report
    membership = report.membership
    reference = result.nodes[SCENARIO["reference"]]
    trace = delivered_trace(reference)
    joins = membership.get("joins", [])
    return {
        "scenario": dict(SCENARIO),
        "engine": report.engine,
        "activations": [
            [a["epoch"], list(a["added"]), list(a["removed"])]
            for a in membership.get("activations", [])
        ],
        "final_view": list(membership.get("final_view", [])),
        "joins": len(joins),
        "all_joined": all(j["time_to_join"] >= 0.0 for j in joins),
        "time_to_join": max((j["time_to_join"] for j in joins), default=-1.0),
        "config_txs_committed": len(membership.get("config_txs_committed", [])),
        "submitted": sum(c.requests_submitted for c in result.clients),
        "completed": sum(c.requests_completed for c in result.clients),
        "all_complete": all(
            c.requests_completed == c.requests_submitted for c in result.clients
        ),
        "violations": check_invariants(result),
        "trace_len": len(trace),
        "trace_sha256": hashlib.sha256(repr(trace).encode()).hexdigest(),
        "events_executed": deployment.sim.events_executed,
        "messages_sent": deployment.network.stats.messages_sent,
    }


#: Figure keys that must match the golden trace exactly.
PINNED_KEYS = (
    "activations",
    "final_view",
    "config_txs_committed",
    "time_to_join",
    "trace_len",
    "trace_sha256",
    "events_executed",
    "messages_sent",
)


def check_against_golden(
    figures: Dict[str, object], path: Path
) -> Optional[str]:
    """Return an error string when the run diverges from the golden trace."""
    return golden.check_against_golden(
        figures, path, PINNED_KEYS, "MEMBERSHIP DETERMINISM REGRESSION"
    )


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The membership claims that must hold regardless of the golden trace."""
    if not figures["all_joined"] or figures["joins"] < 1:
        return (
            "MEMBERSHIP REGRESSION: the added replica never reached the "
            "cluster frontier (time_to_join = -1)"
        )
    expected_view = [
        n
        for n in range(SCENARIO["num_nodes"] + 1)
        if n != SCENARIO["leave_node"]
    ]
    if figures["final_view"] != expected_view:
        return (
            f"MEMBERSHIP REGRESSION: final view {figures['final_view']} != "
            f"{expected_view} (add and removal must both activate)"
        )
    if not figures["all_complete"]:
        return (
            f"MEMBERSHIP REGRESSION: only {figures['completed']} of "
            f"{figures['submitted']} requests completed through the "
            f"reconfigurations"
        )
    if figures["violations"]:
        return "MEMBERSHIP SAFETY VIOLATION: " + "; ".join(figures["violations"])
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the smoke scenario and apply the checks."""
    scenario = SCENARIO
    return smokelib.run_gate(
        argv,
        name="membership",
        description=__doc__.splitlines()[0],
        banner=(
            f"membership smoke: {scenario['num_nodes']} {scenario['protocol']} "
            f"nodes, join t={scenario['join_time']:.0f}s, "
            f"leave t={scenario['leave_time']:.0f}s, "
            f"{scenario['duration']:.0f}s virtual ..."
        ),
        run_smoke=run_smoke,
        golden_path=golden_path(),
        pinned_keys=PINNED_KEYS,
        regression_label="MEMBERSHIP DETERMINISM REGRESSION",
        semantic_violations=semantic_violations,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
