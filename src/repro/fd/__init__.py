"""Eventually strong failure detector ◇S(bz)."""

from .detector import (
    FailureDetector,
    HeartbeatMsg,
    EVENT_SUSPECT,
    EVENT_RESTORE,
)

__all__ = ["FailureDetector", "HeartbeatMsg", "EVENT_SUSPECT", "EVENT_RESTORE"]
