"""Eventually strong failure detector ◇S(bz) (Sections 2.2 and 5.1.3).

Each node periodically broadcasts a heartbeat; a peer that stays silent past
an (adaptively doubling) timeout is *suspected*, and *restored* when a
heartbeat from it arrives again.  Under partial synchrony the timeout
eventually exceeds the network delay, giving the two ◇S(bz) properties:

* **Strong completeness** — a quiet node is eventually suspected forever by
  every correct node (it stops producing heartbeats, so its timer keeps
  firing).
* **Eventual weak accuracy** — after GST some correct node's heartbeats
  always arrive before the (by then long enough) timeout, so it is never
  suspected again.

The detector only reacts to the *absence* of messages, matching the paper's
notion of quiet nodes: Byzantine nodes that keep talking are not suspected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..core.types import NodeId
from ..runtime.api import Scheduler, Timer

#: Event kinds passed to subscribers.
EVENT_SUSPECT = "suspect"
EVENT_RESTORE = "restore"

#: Subscriber signature: ``fn(event, node)``.
FDSubscriber = Callable[[str, NodeId], None]


@dataclass(frozen=True)
class HeartbeatMsg:
    """Periodic liveness beacon; content-free beyond the sender identity."""

    sender: NodeId

    def wire_size(self) -> int:
        return 16


class FailureDetector:
    """Heartbeat/timeout implementation of the ◇S(bz) failure detector."""

    def __init__(
        self,
        node_id: NodeId,
        all_nodes: Iterable[NodeId],
        sim: Scheduler,
        broadcast_fn: Callable[[object], None],
        heartbeat_interval: float = 1.0,
        initial_timeout: float = 4.0,
        max_timeout: float = 120.0,
    ):
        self.node_id = node_id
        self.all_nodes: List[NodeId] = [n for n in all_nodes]
        self.sim = sim
        self._broadcast = broadcast_fn
        self.heartbeat_interval = heartbeat_interval
        self.initial_timeout = initial_timeout
        self.max_timeout = max_timeout

        #: ``D.suspected``: the current list of suspects.
        self.suspected: Set[NodeId] = set()
        self._timeout: Dict[NodeId, float] = {
            n: initial_timeout for n in self.all_nodes if n != node_id
        }
        self._timers: Dict[NodeId, Timer] = {}
        self._heartbeat_timer: Optional[Timer] = None
        self._subscribers: List[FDSubscriber] = []
        self._running = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin emitting heartbeats and watching peers."""
        if self._running:
            return
        self._running = True
        self._emit_heartbeat()
        for peer in self._timeout:
            self._arm_timer(peer)

    def stop(self) -> None:
        self._running = False
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def subscribe(self, callback: FDSubscriber) -> None:
        """Register for ⟨SUSPECT⟩ / ⟨RESTORE⟩ events."""
        self._subscribers.append(callback)

    # ----------------------------------------------------------- heartbeats
    def _emit_heartbeat(self) -> None:
        if not self._running:
            return
        self._broadcast(HeartbeatMsg(sender=self.node_id))
        self._heartbeat_timer = self.sim.schedule(self.heartbeat_interval, self._emit_heartbeat)

    def handle_message(self, src: NodeId, message: object) -> None:
        """Feed an incoming heartbeat into the detector."""
        if isinstance(message, HeartbeatMsg) and message.sender == src:
            self.note_alive(src)

    def note_alive(self, peer: NodeId) -> None:
        """Evidence that ``peer`` is alive (heartbeat or any protocol message)."""
        if peer == self.node_id or peer not in self._timeout:
            return
        if peer in self.suspected:
            self.suspected.discard(peer)
            self._notify(EVENT_RESTORE, peer)
        self._arm_timer(peer)

    # --------------------------------------------------------------- timers
    def _arm_timer(self, peer: NodeId) -> None:
        if not self._running:
            return
        existing = self._timers.get(peer)
        if existing is not None:
            existing.cancel()
        self._timers[peer] = self.sim.schedule(
            self._timeout[peer], lambda peer=peer: self._on_timeout(peer)
        )

    def _on_timeout(self, peer: NodeId) -> None:
        if not self._running:
            return
        if peer not in self.suspected:
            self.suspected.add(peer)
            self._notify(EVENT_SUSPECT, peer)
        # Double the timeout so that, after GST, correct peers stop being
        # suspected (eventual weak accuracy).
        self._timeout[peer] = min(self.max_timeout, self._timeout[peer] * 2)
        self._arm_timer(peer)

    def _notify(self, event: str, peer: NodeId) -> None:
        for callback in list(self._subscribers):
            callback(event, peer)

    # -------------------------------------------------------------- queries
    def is_suspected(self, peer: NodeId) -> bool:
        return peer in self.suspected

    def current_timeout(self, peer: NodeId) -> float:
        return self._timeout.get(peer, self.initial_timeout)
