"""Live-deployment smoke test (``python -m repro.live_smoke``).

Boots a **real** 4-node PBFT cluster on localhost — one OS process per
replica, TCP between them, fsync'd WAL/snapshot files under a temp
directory — drives replicated-KV traffic at it, then ``kill -9``'s one
replica mid-run and restarts it over its surviving files.  The gate
checks the deployment-backend claims end to end:

* every submitted KV operation **completes** (ack quorum, and a final
  linearizable read returns the last written value),
* the four durable logs, read straight off disk with no cooperation from
  the processes, are **identical** over every shared position, and
* the restarted victim **catches up**: its contiguous durable prefix
  reaches the surviving nodes' frontier, proving the snapshot-apply →
  WAL-replay → state-transfer pipeline works against real files after a
  real SIGKILL.

Wall-clock figures (elapsed seconds, latencies) are reported but **not**
pinned — a live run is scheduled by the OS, not the simulator.  Only the
run's deterministic shape (scenario, counts, booleans) must match the
golden trace in ``tests/data/golden_trace_live.json``.

Exit code 1 on any violation, which is how ``make live-smoke`` and the CI
driver (``benchmarks/run_perf_smoke.py``) catch live-backend regressions.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from . import smokelib
from .app.kv import KVClient
from .core.config import ISSConfig, PROTOCOL_PBFT
from .crypto.signatures import KeyStore
from .net.clock import WallClock
from .net.deploy import (
    LiveClusterSpec,
    LiveDeployment,
    durable_prefix,
    durable_prefix_len,
    live_base_port,
    live_host,
    prefixes_identical,
)
from .net.transport import TcpTransport

#: The pinned live scenario (keep in sync with the golden trace).
SCENARIO = dict(
    protocol=PROTOCOL_PBFT,
    num_nodes=4,
    random_seed=7,
    num_clients=3,
    phase1_ops=15,
    phase2_ops=10,
    phase3_ops=15,
    victim=2,
    epoch_length=16,
)

#: Give up on the whole run after this many wall seconds.
RUN_TIMEOUT = 180.0

#: Victim catch-up poll deadline after the final write phase (wall seconds).
CATCHUP_TIMEOUT = 60.0


def golden_path() -> Path:
    """Location of the live-backend golden trace."""
    return smokelib.golden_data_path("golden_trace_live.json")


def build_spec(data_dir: str) -> LiveClusterSpec:
    """The pinned cluster spec over a fresh ``data_dir``.

    Client retries are on (the live transport is genuinely lossy around a
    kill), and the port layout honours ``REPRO_LIVE_BASE_PORT`` /
    ``REPRO_LIVE_HOST`` so CI hosts with busy ports can move the cluster.
    """
    config = ISSConfig(
        num_nodes=SCENARIO["num_nodes"],
        protocol=SCENARIO["protocol"],
        epoch_length=SCENARIO["epoch_length"],
        random_seed=SCENARIO["random_seed"],
        client_retry_timeout=0.5,
        client_retry_max_timeout=4.0,
    )
    return LiveClusterSpec(
        config=config,
        data_dir=data_dir,
        base_port=live_base_port(),
        host=live_host(),
        client_ids=tuple(range(SCENARIO["num_clients"])),
    )


async def _run_phase(
    clients: List[KVClient], start: int, count: int, latencies: List[float]
) -> int:
    """Submit ``count`` puts round-robin across ``clients``; return completions."""
    outcomes = await asyncio.gather(
        *[
            clients[i % len(clients)].put(f"key{i}", f"value{i}", timeout=RUN_TIMEOUT)
            for i in range(start, start + count)
        ]
    )
    latencies.extend(outcome.latency for outcome in outcomes)
    return len(outcomes)


async def _drive(spec: LiveClusterSpec, deployment: LiveDeployment) -> Dict[str, object]:
    """The client side of the scenario: three write phases around a crash."""
    victim = SCENARIO["victim"]
    clock = WallClock(seed=SCENARIO["random_seed"])
    transport = TcpTransport(clock, peers=spec.peer_map())
    await transport.start()
    key_store = KeyStore(deployment_seed=spec.config.random_seed)
    clients = [
        KVClient(client_id, spec.config, clock, transport, key_store)
        for client_id in spec.client_ids
    ]
    latencies: List[float] = []
    t0 = time.monotonic()

    completed = await _run_phase(clients, 0, SCENARIO["phase1_ops"], latencies)
    frontier_at_kill = durable_prefix_len(spec, victim)
    deployment.kill(victim)
    completed += await _run_phase(
        clients, SCENARIO["phase1_ops"], SCENARIO["phase2_ops"], latencies
    )
    deployment.restart(victim)
    phase3_start = SCENARIO["phase1_ops"] + SCENARIO["phase2_ops"]
    completed += await _run_phase(
        clients, phase3_start, SCENARIO["phase3_ops"], latencies
    )
    submitted = phase3_start + SCENARIO["phase3_ops"]

    last_key = f"key{submitted - 1}"
    read = await clients[0].get(last_key, timeout=RUN_TIMEOUT)
    read_ok = bool(read.ok and read.value == f"value{submitted - 1}")

    # Wait for the restarted victim's durable prefix to reach the others'
    # frontier (state transfer fills what was ordered while it was down).
    caught_up = False
    deadline = time.monotonic() + CATCHUP_TIMEOUT
    while time.monotonic() < deadline:
        lens = [
            durable_prefix_len(spec, node) for node in range(spec.config.num_nodes)
        ]
        others = [lens[node] for node in range(spec.config.num_nodes) if node != victim]
        if (
            lens[victim] > frontier_at_kill
            and lens[victim] + spec.config.epoch_length >= min(others)
        ):
            caught_up = True
            break
        await asyncio.sleep(0.5)

    await transport.close()
    latencies.sort()
    return {
        "submitted": submitted,
        "completed": completed,
        "read_ok": read_ok,
        "victim_caught_up": caught_up,
        "wall_seconds": round(time.monotonic() - t0, 3),
        "latency_p50": round(latencies[len(latencies) // 2], 4) if latencies else 0.0,
        "latency_max": round(latencies[-1], 4) if latencies else 0.0,
    }


def run_smoke() -> Dict[str, object]:
    """Run the live scenario once and return the figures the gate checks."""
    with tempfile.TemporaryDirectory(prefix="repro-live-smoke-") as data_dir:
        spec = build_spec(data_dir)
        deployment = LiveDeployment(spec)
        deployment.start(timeout=30.0)
        try:
            driven = asyncio.run(
                asyncio.wait_for(_drive(spec, deployment), timeout=RUN_TIMEOUT)
            )
        finally:
            deployment.stop()
        prefixes = [
            durable_prefix(spec, node) for node in range(spec.config.num_nodes)
        ]
        return {
            "scenario": dict(SCENARIO),
            "submitted": driven["submitted"],
            "completed": driven["completed"],
            "completed_fraction": round(driven["completed"] / driven["submitted"], 4),
            "all_completed": driven["completed"] == driven["submitted"],
            "read_ok": driven["read_ok"],
            "prefix_identical": prefixes_identical(prefixes),
            "victim_caught_up": driven["victim_caught_up"],
            "restarts_performed": deployment.restarts_performed,
            "min_prefix_requests": min(len(prefix) for prefix in prefixes),
            "wall_seconds": driven["wall_seconds"],
            "latency_p50": driven["latency_p50"],
            "latency_max": driven["latency_max"],
        }


#: Figure keys that must match the golden trace exactly.  Wall-clock
#: figures (``wall_seconds``, latencies, ``min_prefix_requests`` which
#: grows with retransmission timing) are deliberately not pinned.
PINNED_KEYS = (
    "scenario",
    "submitted",
    "completed",
    "completed_fraction",
    "all_completed",
    "read_ok",
    "prefix_identical",
    "victim_caught_up",
    "restarts_performed",
)


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The live-backend claims that must hold regardless of the golden trace."""
    if not figures["all_completed"]:
        return (
            "LIVE SMOKE REGRESSION: only "
            f"{figures['completed']}/{figures['submitted']} KV operations completed"
        )
    if not figures["read_ok"]:
        return (
            "LIVE SMOKE REGRESSION: the final read did not return the last "
            "written value"
        )
    if not figures["prefix_identical"]:
        return (
            "LIVE SAFETY VIOLATION: the durable logs disagree on a shared "
            "position"
        )
    if not figures["victim_caught_up"]:
        return (
            "LIVE RECOVERY REGRESSION: the killed-and-restarted node never "
            "reached the surviving nodes' durable frontier"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the live scenario and apply the checks."""
    scenario = SCENARIO
    return smokelib.run_gate(
        argv,
        name="live",
        description=__doc__.splitlines()[0],
        banner=(
            f"live smoke: {scenario['num_nodes']} {scenario['protocol']} nodes "
            f"on 127.0.0.1:{live_base_port()}+, "
            f"{scenario['phase1_ops'] + scenario['phase2_ops'] + scenario['phase3_ops']}"
            f" KV ops, kill -9 node {scenario['victim']} + restart ..."
        ),
        run_smoke=run_smoke,
        golden_path=golden_path(),
        pinned_keys=PINNED_KEYS,
        regression_label="LIVE BACKEND REGRESSION",
        semantic_violations=semantic_violations,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
