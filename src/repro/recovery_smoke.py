"""Crash-recovery smoke test (``python -m repro.recovery_smoke``).

Runs the pinned crash→restart scenario — 4 PBFT nodes over the scaled WAN
with wire batching on, node 1 crashed mid-epoch at t=10 s and restarted at
t=18 s — and checks the recovery invariants end to end:

* the restarted node **catches up** (its recovery record carries a
  non-negative ``time_to_caught_up``),
* its delivered sequence is **identical** to a never-crashed peer's over
  every shared position, and
* the whole run is **deterministic**: the recovery record, the victim's
  delivered-sequence digest, and the simulator/network counters must match
  the golden trace recorded in ``tests/data/golden_trace_recovery.json``
  bit for bit (same seed ⇒ same crash ⇒ same WAL ⇒ same recovery).

Exit code 1 on any violation, which is how ``make recovery-smoke`` and the
CI driver (``benchmarks/run_perf_smoke.py``) catch recovery regressions.
Pass ``--update-golden`` after an intentional schedule-affecting change.

The scenario deliberately crashes *after* the victim's first stable
checkpoint so every recovery phase is exercised: snapshot apply, WAL-tail
replay, certificate restoration, and state transfer for the epochs ordered
while the node was down.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Optional

from . import golden, smokelib
from .core.config import ISSConfig, NetworkConfig, WorkloadConfig, PROTOCOL_PBFT
from .core.state_transfer import DEFAULT_PROBE_STAGGER
from .harness.runner import DEFAULT_RECOVERY_POLL_INTERVAL, Deployment
from .harness.scenarios import (
    DEFAULT_FLUSH_INTERVAL,
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    delivered_prefix_matches,
    iss_config,
)
from .obs import ObsConfig
from .sim.faults import CrashSpec, RestartSpec

#: The pinned crash-restart scenario (keep in sync with the golden trace).
SCENARIO = dict(
    protocol=PROTOCOL_PBFT,
    num_nodes=4,
    random_seed=11,
    num_clients=8,
    total_rate=800.0,
    duration=30.0,
    crash_time=10.0,
    restart_time=18.0,
    victim=1,
)


def golden_path() -> Path:
    """Location of the restart-determinism golden trace."""
    return smokelib.golden_data_path("golden_trace_recovery.json")


def build_deployment() -> Deployment:
    """Build the pinned scenario.

    Every knob that an env var could move (flush interval, recovery poll
    tick, state-transfer probe stagger) is set explicitly: the golden
    trace must be machine- and environment-stable.
    """
    config = iss_config(
        SCENARIO["protocol"], SCENARIO["num_nodes"], random_seed=SCENARIO["random_seed"]
    )
    network_config = NetworkConfig(
        bandwidth_bps=SCALED_BANDWIDTH_BPS,
        batch_flush_interval=DEFAULT_FLUSH_INTERVAL,
    )
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
        payload_size=PAYLOAD_BYTES,
    )
    victim = SCENARIO["victim"]
    return Deployment(
        config,
        network_config=network_config,
        workload=workload,
        crash_specs=[
            CrashSpec(node=victim, trigger="at-time", time=SCENARIO["crash_time"])
        ],
        restart_specs=[RestartSpec(node=victim, time=SCENARIO["restart_time"])],
        recovery_poll=DEFAULT_RECOVERY_POLL_INTERVAL,
        probe_stagger=DEFAULT_PROBE_STAGGER,
        obs=ObsConfig.disabled(),
    )


#: Canonical delivered-sequence shape shared by every smoke gate.
delivered_trace = golden.delivered_trace


def run_smoke() -> Dict[str, object]:
    """Run the scenario once and return the figures the golden trace pins."""
    import hashlib

    deployment = build_deployment()
    result = deployment.run()
    report = result.report
    victim = result.nodes[SCENARIO["victim"]]
    reference = next(
        node
        for node in result.nodes
        if node.node_id != SCENARIO["victim"] and not node.crashed
    )
    trace = delivered_trace(victim)
    recovery = dict(report.recoveries[0]) if report.recoveries else {}
    return {
        "scenario": dict(SCENARIO),
        "engine": report.engine,
        "recovery": recovery,
        "caught_up": recovery.get("time_to_caught_up", -1.0) >= 0.0,
        "prefix_matches": delivered_prefix_matches(reference, victim),
        "trace_len": len(trace),
        "trace_sha256": hashlib.sha256(repr(trace).encode()).hexdigest(),
        "events_executed": deployment.sim.events_executed,
        "messages_sent": deployment.network.stats.messages_sent,
        "wal_appended_total": report.extra.get("wal_appended_total", 0.0),
        "snapshots_installed_total": report.extra.get("snapshots_installed_total", 0.0),
    }


#: Figure keys that must match the golden trace exactly.
PINNED_KEYS = (
    "recovery",
    "trace_len",
    "trace_sha256",
    "events_executed",
    "messages_sent",
)


def check_against_golden(
    figures: Dict[str, object], path: Path
) -> Optional[str]:
    """Return an error string when the run diverges from the golden trace."""
    return golden.check_against_golden(
        figures, path, PINNED_KEYS, "RECOVERY DETERMINISM REGRESSION"
    )


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The recovery claims that must hold regardless of the golden trace."""
    if not figures["caught_up"]:
        return (
            "RECOVERY REGRESSION: the restarted node never caught up "
            "(time_to_caught_up = -1)"
        )
    if not figures["prefix_matches"]:
        return (
            "RECOVERY SAFETY VIOLATION: the restarted node's delivered "
            "sequence diverged from a never-crashed peer's"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the smoke scenario and apply the checks."""
    scenario = SCENARIO
    return smokelib.run_gate(
        argv,
        name="recovery",
        description=__doc__.splitlines()[0],
        banner=(
            f"recovery smoke: {scenario['num_nodes']} {scenario['protocol']} nodes, "
            f"crash t={scenario['crash_time']:.0f}s, "
            f"restart t={scenario['restart_time']:.0f}s, "
            f"{scenario['duration']:.0f}s virtual ..."
        ),
        run_smoke=run_smoke,
        golden_path=golden_path(),
        pinned_keys=PINNED_KEYS,
        regression_label="RECOVERY DETERMINISM REGRESSION",
        semantic_violations=semantic_violations,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
