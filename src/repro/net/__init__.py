"""Live deployment backend: asyncio TCP transport over real processes.

This package is the second implementation of the runtime boundary
(:mod:`repro.runtime.api`) — the first being the discrete-event simulator
in :mod:`repro.sim`.  The same protocol objects (``ISSNode``, ``Client``,
the SB implementations) run unmodified over:

* :class:`~repro.net.clock.WallClock` — the :class:`~repro.runtime.api.
  Scheduler` surface over an asyncio event loop and real seconds,
* :class:`~repro.net.transport.TcpTransport` — the :class:`~repro.runtime.
  api.Transport` surface over length-prefixed frames on real TCP sockets,
  with per-peer reconnecting connections,
* :mod:`~repro.net.host` — the per-node child process: one ISS node, its
  fsync'd :class:`~repro.storage.durable.DurableNodeStorage`, and the
  replicated-KV application,
* :class:`~repro.net.deploy.LiveDeployment` — the parent-side launcher
  spawning one process per node via ``multiprocessing``, with ``kill -9``
  and restart-with-recovery support.

Nothing in :mod:`repro.core` or the protocol packages imports this package
(or :mod:`repro.sim`); the boundary is enforced by ``tests/test_layering.py``.
"""

from .clock import WallClock, WallTimer
from .deploy import LiveClusterSpec, LiveDeployment
from .transport import TcpTransport

__all__ = [
    "LiveClusterSpec",
    "LiveDeployment",
    "TcpTransport",
    "WallClock",
    "WallTimer",
]
