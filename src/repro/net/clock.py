"""Wall-clock implementation of the :class:`~repro.runtime.api.Scheduler`.

The protocols schedule everything — batch cutting, view-change timeouts,
heartbeats, client retries — through the five-method scheduler surface.
:class:`WallClock` implements it over a running asyncio event loop: ``now``
is seconds since the clock was created (so timestamps look like the
simulator's virtual times, starting near zero), ``schedule``/``schedule_at``
return cancellable/reschedulable :class:`WallTimer` handles backed by
``loop.call_at``, and the fire-and-forget callback variants map straight to
``call_later``/``call_at``.

Unlike the simulator there is no determinism here — real time does what it
does — but the *interface* semantics match: callbacks run on the loop
thread, never reentrantly inside the call that scheduled them, and
``events_executed`` counts fired callbacks for parity with the simulator's
profiling counter.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Optional


class WallTimer:
    """Cancellable, reschedulable handle for one wall-clock callback."""

    __slots__ = ("_clock", "_callback", "_handle", "_fire_time", "_fired")

    def __init__(self, clock: "WallClock", fire_time: float, callback: Callable[[], None]):
        self._clock = clock
        self._callback = callback
        self._fired = False
        self._arm(fire_time)

    def _arm(self, fire_time: float) -> None:
        self._fire_time = fire_time
        self._handle = self._clock._loop.call_at(
            self._clock._t0 + fire_time, self._run
        )

    def _run(self) -> None:
        self._fired = True
        self._clock.events_executed += 1
        self._callback()

    @property
    def fire_time(self) -> float:
        """Absolute clock time (seconds since clock start) of the firing."""
        return self._fire_time

    @property
    def active(self) -> bool:
        """True while the callback is still going to run."""
        return not self._fired and not self._handle.cancelled()

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._handle.cancel()

    def reset(self, delay: float) -> "WallTimer":
        """Cancel and re-arm the same callback ``delay`` seconds from now."""
        self._handle.cancel()
        self._fired = False
        self._arm(self._clock.now + delay)
        return self


class WallClock:
    """The scheduler surface over an asyncio event loop and real seconds.

    Must be constructed on the loop it will schedule against (the node
    host and the client drivers create it inside their ``async`` entry
    points).  ``seed`` feeds the ``rng`` the protocols draw jitter from;
    each process seeds it differently so backoff jitter decorrelates
    across nodes, exactly as independent machines would.
    """

    def __init__(self, seed: int = 0, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self.rng = random.Random(seed)
        #: Callbacks fired so far (parity with ``Simulator.events_executed``).
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Seconds since this clock was created (monotonic)."""
        return self._loop.time() - self._t0

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None]) -> WallTimer:
        """Run ``callback`` once, ``delay`` seconds from now; returns a handle."""
        return WallTimer(self, self.now + max(0.0, delay), callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> WallTimer:
        """Absolute-time variant of :meth:`schedule` (past times fire ASAP)."""
        return WallTimer(self, max(time, self.now), callback)

    def call_soon(self, callback: Callable[[], None]) -> WallTimer:
        """Run ``callback`` on the next loop iteration; returns a handle."""
        return WallTimer(self, self.now, callback)

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget fast path: no handle, not cancellable."""
        self._loop.call_later(max(0.0, delay), self._run_plain, callback)

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_callback`."""
        self._loop.call_at(self._t0 + max(time, self.now), self._run_plain, callback)

    def _run_plain(self, callback: Callable[[], None]) -> None:
        self.events_executed += 1
        callback()
