"""TCP implementation of the :class:`~repro.runtime.api.Transport`.

Wire format: each message is one frame — a 4-byte big-endian payload
length followed by the pickle of ``(src, dst, message)``.  The message
objects are the exact protocol dataclasses the simulator's network carries
by reference; pickling them *is* the serialization layer (they are all
plain frozen dataclasses of ints, bytes and tuples).

Connection model, mirroring how real SMR deployments wire up:

* **Static peers** (the replicas) are known up front.  Each transport owns
  one outbound connection per peer, fed by a bounded queue and maintained
  by a reconnect loop — a crashed peer costs nothing but a periodic
  connection attempt, and frames queued while a peer is down are delivered
  after it returns (overflow drops the newest frame; the protocols'
  retransmission and client retries absorb loss, exactly the unreliable-
  channel contract :class:`~repro.runtime.api.Transport` documents).
* **Dynamic endpoints** (the clients) are learned from inbound traffic: a
  replica remembers which connection a client endpoint's frames arrived on
  and routes replies back over that same stream, so clients need no
  listening socket.
* **Local endpoints** short-circuit: a message to an endpoint registered
  on this transport is dispatched through the event loop without touching
  a socket (a node messaging itself, or in-process tests).

Wire batching is the same transport-independent layer the simulator uses:
with ``batch_flush_interval > 0`` a :class:`~repro.runtime.wire.
MessageBatcher` coalesces batchable messages per (src, dst, flush tick)
into one frame, and the receive path unpacks
:class:`~repro.runtime.wire.MessageBatchMsg` frames payload by payload.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Dict, Iterable, List, Optional, Tuple

from ..runtime.api import MessageHandler
from ..runtime.wire import MessageBatcher, MessageBatchMsg, is_batchable, wire_size

#: Frame header: big-endian payload length.
_FRAME_HEADER = struct.Struct(">I")

#: Refuse frames beyond this (a corrupted length prefix must not OOM us).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Per-peer outbound queue depth; overflow drops the newest frame.
PEER_QUEUE_DEPTH = 4096


def encode_frame(src: int, dst: int, message: object) -> bytes:
    """Serialise one ``(src, dst, message)`` triple into a wire frame."""
    payload = pickle.dumps((src, dst, message), protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(payload)) + payload


class TransportStats:
    """Counters describing what the transport did (tests and reports)."""

    __slots__ = (
        "messages_sent",
        "bytes_sent",
        "messages_dropped",
        "frames_received",
        "connects",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Sends with no route: unknown endpoint, dead learned route, or a
        #: full peer queue.
        self.messages_dropped = 0
        self.frames_received = 0
        #: Successful outbound connection establishments (reconnects count).
        self.connects = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat counter view for figures and debugging."""
        return {name: getattr(self, name) for name in self.__slots__}


class TcpTransport:
    """Asyncio TCP transport satisfying :class:`~repro.runtime.api.Transport`.

    Construct on the event loop, then ``await start()`` before sending.
    ``peers`` maps replica endpoints to ``(host, port)``; ``listen`` is
    this process's own ``(host, port)`` server address, or ``None`` for a
    client-only transport that never accepts connections.
    """

    def __init__(
        self,
        clock,
        peers: Dict[int, Tuple[str, int]],
        listen: Optional[Tuple[str, int]] = None,
        batch_flush_interval: float = 0.0,
        reconnect_delay: float = 0.1,
    ):
        self._clock = clock
        self._loop = clock._loop
        self._peers = dict(peers)
        self._listen = listen
        self._reconnect_delay = reconnect_delay
        self._handlers: Dict[int, MessageHandler] = {}
        self._queues: Dict[int, asyncio.Queue] = {}
        self._routes: Dict[int, asyncio.StreamWriter] = {}
        self._tasks: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        self.stats = TransportStats()
        #: Cross-protocol wire batching (same layer the simulator uses).
        self.batcher: Optional[MessageBatcher] = None
        if batch_flush_interval > 0:
            self.batcher = MessageBatcher(
                clock, batch_flush_interval, self._send_now, wire_size
            )

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the server (if any) and start the per-peer writer loops."""
        if self._listen is not None:
            host, port = self._listen
            self._server = await asyncio.start_server(
                self._on_inbound_connection, host, port
            )
        for peer_id in self._peers:
            self._queues[peer_id] = asyncio.Queue(maxsize=PEER_QUEUE_DEPTH)
            self._tasks.append(
                self._loop.create_task(self._peer_writer(peer_id))
            )

    async def close(self) -> None:
        """Stop accepting, cancel the writer loops, close every stream."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        for writer in list(self._routes.values()):
            writer.close()
        self._routes.clear()

    # ----------------------------------------------------- Transport surface
    def register(self, endpoint: int, handler: MessageHandler) -> None:
        """Attach ``handler`` for frames addressed to ``endpoint``."""
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: int) -> None:
        """Detach ``endpoint``'s handler; frames for it drop from then on."""
        self._handlers.pop(endpoint, None)

    def send(
        self, src: int, dst: int, message: object, size_bytes: Optional[int] = None
    ) -> None:
        """Send ``message`` from ``src`` to ``dst`` (fire and forget)."""
        if self.batcher is not None and is_batchable(message):
            self.batcher.enqueue(src, dst, message)
            return
        self._send_now(src, dst, message, size_bytes)

    def multicast(self, src: int, dsts: Iterable[int], message: object) -> None:
        """Send the same message to every destination."""
        for dst in dsts:
            self.send(src, dst, message)

    # ------------------------------------------------------------- send path
    def _send_now(
        self, src: int, dst: int, message: object, size_bytes: Optional[int] = None
    ) -> None:
        """Immediate send path (also the batcher's flush target)."""
        if dst in self._handlers:
            # Local short-circuit; defer through the loop so delivery is
            # never reentrant inside the sending call, matching the
            # simulator's always-asynchronous delivery.
            self._loop.call_soon(self._dispatch, src, dst, message)
            self.stats.messages_sent += 1
            return
        frame = encode_frame(src, dst, message)
        queue = self._queues.get(dst)
        if queue is not None:
            try:
                queue.put_nowait(frame)
            except asyncio.QueueFull:
                self.stats.messages_dropped += 1
                return
        else:
            writer = self._routes.get(dst)
            if writer is None or writer.is_closing():
                self.stats.messages_dropped += 1
                return
            writer.write(frame)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(frame)

    # ---------------------------------------------------------- receive path
    def _dispatch(self, src: int, dst: int, message: object) -> None:
        """Hand one message (or each payload of a wire batch) to ``dst``."""
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.messages_dropped += 1
            return
        if type(message) is MessageBatchMsg:
            for payload in message.payloads:
                handler(src, payload)
        else:
            handler(src, message)

    async def _on_inbound_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Server side: read frames, learning reply routes for clients."""
        try:
            await self._read_frames(reader, writer, learn_routes=True)
        except asyncio.CancelledError:
            # Server shutdown cancels accept-side tasks; that is a clean
            # exit, not an error to surface through the loop's handler.
            pass

    async def _read_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        learn_routes: bool,
    ) -> None:
        """Frame-decode loop shared by inbound and outbound connections."""
        try:
            while True:
                header = await reader.readexactly(_FRAME_HEADER.size)
                (length,) = _FRAME_HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    break
                payload = await reader.readexactly(length)
                try:
                    src, dst, message = pickle.loads(payload)
                except Exception:
                    break
                self.stats.frames_received += 1
                if learn_routes and src not in self._peers:
                    # A dynamic (client) endpoint: replies go back over the
                    # stream its traffic arrived on.
                    self._routes[src] = writer
                self._dispatch(src, dst, message)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            if learn_routes:
                stale = [ep for ep, w in self._routes.items() if w is writer]
                for endpoint in stale:
                    del self._routes[endpoint]
            writer.close()

    # ------------------------------------------------------------ peer loops
    async def _peer_writer(self, peer_id: int) -> None:
        """Maintain the outbound connection to one static peer.

        Connect (retrying forever while the peer is down), then drain the
        peer's queue into the socket; a connection error drops back to the
        reconnect loop, losing at most the frame in flight.  The paired
        reader task consumes whatever the peer sends back over this stream
        (client transports receive their responses here).
        """
        queue = self._queues[peer_id]
        host, port = self._peers[peer_id]
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(self._reconnect_delay)
                continue
            self.stats.connects += 1
            reader_task = self._loop.create_task(
                self._read_frames(reader, writer, learn_routes=False)
            )
            try:
                while True:
                    frame = await queue.get()
                    writer.write(frame)
                    await writer.drain()
            except (ConnectionError, OSError):
                pass
            except asyncio.CancelledError:
                reader_task.cancel()
                writer.close()
                raise
            finally:
                reader_task.cancel()
                writer.close()
