"""The per-node child process of a live deployment.

One process per replica: an asyncio loop hosting one
:class:`~repro.core.iss.ISSNode` (the identical protocol object the
simulator runs), wired to a :class:`~repro.net.clock.WallClock`, a
:class:`~repro.net.transport.TcpTransport`, a file-backed
:class:`~repro.storage.durable.DurableNodeStorage`, and the replicated-KV
application (:class:`~repro.app.kv.KVApp`).

Startup distinguishes first boot from restart by looking at the data
directory: prior state routes through the same
:class:`~repro.storage.recovery.RecoveryManager` pipeline the simulator's
restart path uses — snapshot apply, WAL-tail replay (over records that
genuinely survived a ``kill -9`` via fsync), epoch fast-forward — then the
node resumes at the first incomplete epoch in aggressive-catchup mode and
a small watcher ends catchup once the node completes an epoch beyond its
recovered frontier (the live analogue of the harness's caught-up poll,
which a child process cannot run for lack of a peers' frontier view).

The process runs until SIGTERM (clean drain) or SIGKILL (the crash the
recovery path exists for).
"""

from __future__ import annotations

import asyncio
import signal

from ..app.kv import KVApp
from ..core.iss import ISSNode
from ..crypto.signatures import KeyStore
from ..storage.durable import DurableNodeStorage
from ..storage.recovery import RecoveryManager
from .clock import WallClock
from .transport import TcpTransport

#: Tick of the post-restart catchup-end watcher (wall seconds).
CATCHUP_POLL_INTERVAL = 0.5


def node_main(spec, node_id: int) -> None:
    """Child-process entry point (the ``multiprocessing`` spawn target)."""
    asyncio.run(run_node(spec, node_id))


async def run_node(spec, node_id: int) -> None:
    """Build and run one replica until the process is told to stop."""
    clock = WallClock(seed=spec.config.random_seed * 100_003 + node_id)
    transport = TcpTransport(
        clock,
        peers=spec.peer_map(exclude=node_id),
        listen=spec.address(node_id),
        batch_flush_interval=spec.batch_flush_interval,
    )
    await transport.start()
    storage = DurableNodeStorage(node_id, spec.node_dir(node_id), fsync=spec.fsync)
    key_store = KeyStore(deployment_seed=spec.config.random_seed)
    app = KVApp(node_id, transport)
    node = ISSNode(
        node_id=node_id,
        config=spec.config,
        sim=clock,
        network=transport,
        key_store=key_store,
        client_ids=list(spec.client_ids),
        on_deliver=app.on_deliver,
        storage=storage,
    )
    if storage.has_state():
        # Restart: recover from the fsync'd files, then chase the frontier.
        app.replaying = True
        info = RecoveryManager(storage).recover(node, now=clock.now)
        app.replaying = False
        node.start_at(info.resume_epoch)
        node.begin_recovery_catchup()
        _watch_catchup_end(clock, node, info.resume_epoch)
    else:
        node.start()

    stopping = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stopping.set)
    await stopping.wait()
    await transport.close()
    storage.close()


def _watch_catchup_end(clock: WallClock, node: ISSNode, resume_epoch: int) -> None:
    """End aggressive catchup once the node progresses past its recovery.

    Completing an epoch at or beyond the resume point means state transfer
    filled everything ordered while the process was down and live
    delivery has taken over; the periodic check re-arms until then.
    """

    def check() -> None:
        if node.crashed:
            return
        if node.epochs_completed > resume_epoch:
            node.end_recovery_catchup()
            return
        clock.schedule_callback(CATCHUP_POLL_INTERVAL, check)

    clock.schedule_callback(CATCHUP_POLL_INTERVAL, check)
