"""Parent-side launcher for a live localhost cluster.

:class:`LiveClusterSpec` is the picklable description shipped to every
child process — the :class:`~repro.core.config.ISSConfig`, the data
directory, the port layout, the known client ids and the storage/batching
knobs.  :class:`LiveDeployment` turns it into running replicas: one
``multiprocessing`` (spawn) process per node executing
:func:`repro.net.host.node_main`, with ``kill()`` delivering a real
SIGKILL and ``restart()`` booting a fresh process over the same data
directory — which is precisely what routes the restart through the
on-disk WAL/snapshot recovery pipeline.

The deployment also knows how to *audit* a cluster from its files:
:func:`durable_prefix` reconstructs a node's contiguous delivered request
sequence from its snapshot and WAL alone (no RPC, no cooperation from the
process), and :func:`prefixes_identical` checks the SMR safety claim over
the shared positions.  The live smoke gate and the docs examples rest on
these.

Environment knobs (see PERF.md): ``REPRO_LIVE_BASE_PORT`` (first node
port, default 7400), ``REPRO_LIVE_HOST`` (bind/connect address, default
127.0.0.1) and ``REPRO_FSYNC`` (storage sync policy, default ``always``).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.config import ISSConfig
from ..core.types import is_nil
from ..storage.durable import (
    FSYNC_ALWAYS,
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    read_snapshot_file,
    read_wal_frames,
)
from ..storage.wal import RECORD_COMMIT

#: Defaults for the env-overridable port/host layout.
DEFAULT_BASE_PORT = 7400
DEFAULT_HOST = "127.0.0.1"


def live_base_port() -> int:
    """First node port (env var ``REPRO_LIVE_BASE_PORT``); node *i* adds *i*."""
    try:
        port = int(os.environ.get("REPRO_LIVE_BASE_PORT", str(DEFAULT_BASE_PORT)))
    except ValueError:
        return DEFAULT_BASE_PORT
    return port if 1 <= port <= 65535 else DEFAULT_BASE_PORT


def live_host() -> str:
    """Bind/connect address of the cluster (env var ``REPRO_LIVE_HOST``)."""
    return os.environ.get("REPRO_LIVE_HOST", DEFAULT_HOST).strip() or DEFAULT_HOST


@dataclass(frozen=True)
class LiveClusterSpec:
    """Everything a child process needs to boot its replica (picklable)."""

    config: ISSConfig
    data_dir: str
    base_port: int
    host: str = DEFAULT_HOST
    #: Client identities known to the validators/watermark trackers.
    client_ids: Tuple[int, ...] = field(default_factory=tuple)
    #: Wire-batching flush tick (0 = off), as in ``NetworkConfig``.
    batch_flush_interval: float = 0.0
    #: Storage fsync policy (see :mod:`repro.storage.durable`).
    fsync: str = FSYNC_ALWAYS

    def port(self, node_id: int) -> int:
        """TCP port node ``node_id`` listens on."""
        return self.base_port + node_id

    def address(self, node_id: int) -> Tuple[str, int]:
        """``(host, port)`` of one node's server socket."""
        return (self.host, self.port(node_id))

    def peer_map(self, exclude: Optional[int] = None) -> Dict[int, Tuple[str, int]]:
        """Endpoint → address map of every replica (minus ``exclude``)."""
        return {
            node_id: self.address(node_id)
            for node_id in range(self.config.num_nodes)
            if node_id != exclude
        }

    def node_dir(self, node_id: int) -> str:
        """One node's durable-storage directory under ``data_dir``."""
        return os.path.join(self.data_dir, f"node{node_id}")


class LiveDeployment:
    """A running localhost cluster: one OS process per replica."""

    def __init__(self, spec: LiveClusterSpec):
        self.spec = spec
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        #: Node restarts performed over the deployment's lifetime.
        self.restarts_performed = 0

    # -------------------------------------------------------------- lifecycle
    def start(self, timeout: float = 30.0) -> None:
        """Spawn every replica and wait until all of them accept connections."""
        for node_id in range(self.spec.config.num_nodes):
            self._spawn(node_id)
        self.wait_ready(timeout=timeout)

    def _spawn(self, node_id: int) -> None:
        from .host import node_main

        process = self._ctx.Process(
            target=node_main, args=(self.spec, node_id), daemon=True
        )
        process.start()
        self._procs[node_id] = process

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every live replica's server socket accepts."""
        deadline = time.monotonic() + timeout
        for node_id, process in self._procs.items():
            if not process.is_alive():
                continue
            self._wait_port(node_id, deadline)

    def _wait_port(self, node_id: int, deadline: float) -> None:
        host, port = self.spec.address(node_id)
        while True:
            try:
                with socket.create_connection((host, port), timeout=0.25):
                    return
            except OSError:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"node {node_id} did not start listening on {host}:{port}"
                    )
                time.sleep(0.05)

    def alive(self, node_id: int) -> bool:
        """Whether node ``node_id``'s process is currently running."""
        process = self._procs.get(node_id)
        return process is not None and process.is_alive()

    def kill(self, node_id: int) -> None:
        """SIGKILL one replica — no shutdown hooks, no final flush."""
        process = self._procs[node_id]
        process.kill()
        process.join()

    def restart(self, node_id: int, timeout: float = 30.0) -> None:
        """Boot a fresh process for ``node_id`` over its existing data dir."""
        old = self._procs.get(node_id)
        if old is not None and old.is_alive():
            raise RuntimeError(f"node {node_id} is still running; kill it first")
        self._spawn(node_id)
        self._wait_port(node_id, time.monotonic() + timeout)
        self.restarts_performed += 1

    def stop(self) -> None:
        """Terminate every replica (SIGTERM, escalating to SIGKILL)."""
        for process in self._procs.values():
            if process.is_alive():
                process.terminate()
        for process in self._procs.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join()
        self._procs.clear()

    def __enter__(self) -> "LiveDeployment":
        """Context-manager entry: starts the cluster."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: always stops the cluster."""
        self.stop()


# ------------------------------------------------------------- disk auditing
def durable_entries(spec: LiveClusterSpec, node_id: int) -> Dict[int, object]:
    """Read one node's durable log entries (``sn -> entry``) from its files.

    Pure file reads — safe on a dead node's directory and on a live node's
    (the WAL reader tolerates a concurrent append's torn tail).  Snapshot
    entries come first, WAL commit records overlay/extend them.
    """
    directory = Path(spec.node_dir(node_id))
    entries: Dict[int, object] = {}
    snapshot = read_snapshot_file(directory / SNAPSHOT_FILENAME)
    if snapshot is not None:
        for sn, entry, _epoch in snapshot.entries:
            entries[sn] = entry
    records, _offset, _torn = read_wal_frames(directory / WAL_FILENAME)
    for record in records:
        if record.kind == RECORD_COMMIT:
            entries[record.sn] = record.entry
    return entries


def durable_prefix(spec: LiveClusterSpec, node_id: int) -> List[Tuple[int, int]]:
    """One node's contiguous delivered request sequence, from disk alone.

    Walks sequence numbers from 0 while entries are present, flattening
    each committed batch into ``(client, timestamp)`` request-id pairs (NIL
    entries contribute nothing but extend the prefix).  This is the
    delivered order an application replaying the durable log would see.
    """
    entries = durable_entries(spec, node_id)
    prefix: List[Tuple[int, int]] = []
    sn = 0
    while sn in entries:
        entry = entries[sn]
        if not is_nil(entry):
            for request in entry.requests:
                prefix.append((request.rid.client, request.rid.timestamp))
        sn += 1
    return prefix


def durable_prefix_len(spec: LiveClusterSpec, node_id: int) -> int:
    """Length in *sequence numbers* of one node's contiguous durable prefix."""
    entries = durable_entries(spec, node_id)
    sn = 0
    while sn in entries:
        sn += 1
    return sn


def prefixes_identical(prefixes: List[List[Tuple[int, int]]]) -> bool:
    """SMR safety over the durable logs: agreement on every shared position."""
    if not prefixes:
        return True
    shortest = min(len(prefix) for prefix in prefixes)
    reference = prefixes[0][:shortest]
    return all(prefix[:shortest] == reference for prefix in prefixes[1:])
