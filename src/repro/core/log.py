"""The replicated log maintained by every ISS node.

Each position holds either a committed batch or the ``⊥`` placeholder.  The
log exposes the two derived quantities ISS needs:

* contiguous delivery — a batch is *delivered* (handed to the application /
  client responses) once every lower position is filled (Algorithm 1,
  line 54), and
* per-request sequence numbers following Equation (2): the rank of the
  request across all non-``⊥`` entries delivered so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .types import Batch, DeliveredRequest, EpochNr, LogEntry, NIL, Request, SeqNr, is_nil


@dataclass
class CommittedEntry:
    """A log entry together with commit metadata (for metrics and clients)."""

    sn: SeqNr
    entry: LogEntry
    epoch: EpochNr
    committed_at: float


class Log:
    """Append-by-position log with contiguous delivery tracking."""

    def __init__(self) -> None:
        self._entries: Dict[SeqNr, CommittedEntry] = {}
        self._first_undelivered: SeqNr = 0
        #: Total number of *requests* delivered so far (Equation 2 counter).
        self._total_delivered_requests = 0
        self._delivered_batches: List[CommittedEntry] = []

    # ------------------------------------------------------------ mutation
    def commit(self, sn: SeqNr, entry: LogEntry, epoch: EpochNr, now: float) -> bool:
        """Insert ``entry`` at position ``sn``.

        Returns True if the position was previously empty.  Committing a
        different value to an already-filled position raises — that would be
        an agreement violation and should never survive silently.
        """
        existing = self._entries.get(sn)
        if existing is not None:
            same_nil = is_nil(existing.entry) and is_nil(entry)
            same_batch = (
                not is_nil(existing.entry)
                and not is_nil(entry)
                and existing.entry.digest() == entry.digest()
            )
            if same_nil or same_batch:
                return False
            raise ValueError(f"conflicting commit at sequence number {sn}")
        self._entries[sn] = CommittedEntry(sn=sn, entry=entry, epoch=epoch, committed_at=now)
        return True

    def advance_delivery(self, now: float) -> List[DeliveredRequest]:
        """Deliver every contiguous newly-complete position.

        Returns the requests delivered in order, each with its global
        per-request sequence number from Equation (2).
        """
        delivered: List[DeliveredRequest] = []
        append = delivered.append
        entries = self._entries
        next_request_sn = self._total_delivered_requests
        while True:
            committed = entries.get(self._first_undelivered)
            if committed is None:
                break
            self._delivered_batches.append(committed)
            entry = committed.entry
            if entry is not NIL:
                batch_sn = committed.sn
                epoch = committed.epoch
                for request in entry.requests:
                    append(
                        DeliveredRequest(
                            request=request,
                            sn=next_request_sn,
                            batch_sn=batch_sn,
                            epoch=epoch,
                            delivered_at=now,
                        )
                    )
                    next_request_sn += 1
            self._first_undelivered += 1
        self._total_delivered_requests = next_request_sn
        return delivered

    # ------------------------------------------------------------- queries
    def entry(self, sn: SeqNr) -> Optional[LogEntry]:
        committed = self._entries.get(sn)
        return committed.entry if committed else None

    def committed(self, sn: SeqNr) -> Optional[CommittedEntry]:
        return self._entries.get(sn)

    def has_entry(self, sn: SeqNr) -> bool:
        return sn in self._entries

    def is_complete(self, seq_nrs: Iterable[SeqNr]) -> bool:
        """True when every given position holds an entry."""
        return all(sn in self._entries for sn in seq_nrs)

    def missing(self, seq_nrs: Iterable[SeqNr]) -> List[SeqNr]:
        return [sn for sn in seq_nrs if sn not in self._entries]

    @property
    def first_undelivered(self) -> SeqNr:
        return self._first_undelivered

    @property
    def total_delivered_requests(self) -> int:
        return self._total_delivered_requests

    def highest_committed(self) -> Optional[SeqNr]:
        return max(self._entries) if self._entries else None

    def committed_count(self) -> int:
        return len(self._entries)

    def nil_positions(self) -> List[SeqNr]:
        """All positions that committed the ``⊥`` placeholder."""
        return sorted(sn for sn, c in self._entries.items() if is_nil(c.entry))

    def entries_in(self, seq_nrs: Iterable[SeqNr]) -> List[Tuple[SeqNr, LogEntry]]:
        return [(sn, self._entries[sn].entry) for sn in seq_nrs if sn in self._entries]

    def digests_in(self, seq_nrs: Iterable[SeqNr]) -> List[bytes]:
        """Entry digests for the given positions, in the given order.

        Used to compute the checkpoint Merkle root ``D(e)``.
        """
        digests: List[bytes] = []
        for sn in seq_nrs:
            committed = self._entries.get(sn)
            if committed is None:
                raise KeyError(f"no entry at sequence number {sn}")
            digests.append(committed.entry.digest())
        return digests

    def delivered_requests_count(self) -> int:
        return self._total_delivered_requests
