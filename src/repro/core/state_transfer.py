"""State transfer for nodes that have fallen behind (Section 3.5).

When a node starts receiving messages for an epoch far ahead of its own —
for example after recovering from a partition — it fetches the missing log
entries together with the stable checkpoint that proves their integrity,
instead of replaying the ordering protocol for them.

This is also the second half of crash recovery (see
:mod:`repro.storage.recovery`): a restarted node replays its WAL and
snapshot locally, then probes peers with an *open-ended* request
(``last_epoch = LATEST_STABLE``) for everything they can prove stable —
including epochs ordered entirely while the node was down.  Verified
responses additionally restore the epoch's checkpoint certificate into the
local checkpoint protocol, so transferred epochs are garbage collected and
compacted exactly like locally completed ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .checkpoint import CheckpointProtocol, epoch_log_root
from .config import ISSConfig
from .log import Log
from .segment import epoch_seq_nrs
from .types import Batch, CheckpointCertificate, EpochNr, LogEntry, NIL, NodeId, SeqNr, is_nil


#: Sentinel ``last_epoch`` meaning "every epoch you can prove stable".
#: Used by the crash-recovery probe, which cannot know how far ahead the
#: live nodes have ordered while the requester was down.
LATEST_STABLE: EpochNr = -1


@dataclass(frozen=True)
class StateRequest:
    """Ask a peer for all log entries of the given epochs.

    ``last_epoch = LATEST_STABLE`` is an open-ended request: the responder
    substitutes its own latest stable epoch.
    """

    first_epoch: EpochNr
    last_epoch: EpochNr

    def wire_size(self) -> int:
        return 32


@dataclass(frozen=True)
class StateResponse:
    """Log entries of one epoch plus its stable checkpoint certificate."""

    epoch: EpochNr
    entries: Tuple[Tuple[SeqNr, LogEntry], ...]
    certificate: CheckpointCertificate

    def wire_size(self) -> int:
        payload = sum(
            (1 if is_nil(entry) else entry.size_bytes()) for _sn, entry in self.entries
        )
        return 64 + payload + 96 * len(self.certificate.signatures)


class StateTransfer:
    """Per-node state-transfer helper.

    The host node calls :meth:`request_missing` when it detects it is behind,
    answers peers' requests through :meth:`build_responses`, and applies
    verified responses through :meth:`handle_response` (which feeds entries
    into the log via the supplied callback).
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ISSConfig,
        checkpoints: CheckpointProtocol,
        send_fn: Callable[[NodeId, object], None],
        apply_entry_fn: Callable[[SeqNr, LogEntry, EpochNr], None],
    ):
        self.node_id = node_id
        self.config = config
        self.checkpoints = checkpoints
        self._send = send_fn
        self._apply_entry = apply_entry_fn
        #: Epochs for which a transfer is currently outstanding.
        self._in_flight: set = set()
        self.transfers_completed = 0
        #: Wire bytes of every StateResponse received (incl. duplicates).
        self.bytes_received = 0
        #: Log entries actually applied from verified responses.
        self.entries_applied = 0
        #: Open-ended recovery probes sent.
        self.probes_sent = 0

    # ----------------------------------------------------------- requesting
    def request_missing(
        self,
        first_epoch: EpochNr,
        last_epoch: EpochNr,
        peers: List[NodeId],
        force: bool = False,
    ) -> None:
        """Ask peers for the epochs in ``[first_epoch, last_epoch]``.

        ``force`` re-requests epochs already marked in flight — the
        recovery catch-up path uses it when it *knows* a stable checkpoint
        exists for an epoch an earlier request failed to obtain (e.g. the
        request predated the checkpoint, or the responder crashed
        mid-transfer).
        """
        wanted = [
            e
            for e in range(first_epoch, last_epoch + 1)
            if force or e not in self._in_flight
        ]
        if not wanted:
            return
        for epoch in wanted:
            self._in_flight.add(epoch)
        request = StateRequest(first_epoch=wanted[0], last_epoch=wanted[-1])
        for peer in peers:
            if peer != self.node_id:
                self._send(peer, request)

    def request_latest(self, first_epoch: EpochNr, peers: List[NodeId]) -> None:
        """Open-ended recovery probe: fetch everything stable from ``first_epoch`` on.

        A freshly restarted node cannot know how many epochs were ordered
        while it was down, so it asks every peer for all epochs they can
        prove; duplicate responses are idempotent and redundant peers make
        the probe robust to a responder crashing mid-transfer.
        """
        self.probes_sent += 1
        request = StateRequest(first_epoch=first_epoch, last_epoch=LATEST_STABLE)
        for peer in peers:
            if peer != self.node_id:
                self._send(peer, request)

    # ------------------------------------------------------------ answering
    def build_responses(self, request: StateRequest, log: Log) -> List[StateResponse]:
        """Build responses for every requested epoch we can prove stable."""
        last_epoch = request.last_epoch
        if last_epoch == LATEST_STABLE:
            latest = self.checkpoints.latest_stable_epoch()
            if latest is None:
                return []
            last_epoch = latest
        responses: List[StateResponse] = []
        for epoch in range(request.first_epoch, last_epoch + 1):
            certificate = self.checkpoints.stable_checkpoint(epoch)
            if certificate is None:
                continue
            seq_nrs = epoch_seq_nrs(epoch, self.config.epoch_length)
            if not log.is_complete(seq_nrs):
                continue
            entries = tuple(log.entries_in(seq_nrs))
            responses.append(
                StateResponse(epoch=epoch, entries=entries, certificate=certificate)
            )
        return responses

    # -------------------------------------------------------------- applying
    def handle_response(self, response: StateResponse, log: Log) -> bool:
        """Verify and apply one state-transfer response.

        Returns True when the epoch was applied (or already present).
        The certificate signature quorum and the Merkle root over the
        received entries are both checked before anything touches the log;
        a verified certificate is additionally restored into the local
        checkpoint protocol so the epoch is stable (and garbage collected)
        at the receiver exactly as if it had collected the votes itself.
        """
        self.bytes_received += response.wire_size()
        epoch = response.epoch
        if epoch not in self._in_flight and log.is_complete(
            epoch_seq_nrs(epoch, self.config.epoch_length)
        ):
            return True
        if not self.checkpoints.verify_certificate(response.certificate):
            return False
        expected_sns = list(epoch_seq_nrs(epoch, self.config.epoch_length))
        received_sns = [sn for sn, _entry in response.entries]
        if received_sns != expected_sns:
            return False
        # Check the Merkle root of the received entries against the certificate.
        from ..crypto.merkle import merkle_root  # local import to avoid cycle at module load

        digests = [entry.digest() for _sn, entry in response.entries]
        if merkle_root(digests) != response.certificate.log_root:
            return False
        for sn, entry in response.entries:
            if not log.has_entry(sn):
                self._apply_entry(sn, entry, epoch)
                self.entries_applied += 1
        # Entries first, certificate second: compaction triggered by the
        # restored certificate then sees the complete prefix right away.
        self.checkpoints.restore_stable(response.certificate)
        self._in_flight.discard(epoch)
        self.transfers_completed += 1
        return True
