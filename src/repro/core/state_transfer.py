"""State transfer for nodes that have fallen behind (Section 3.5).

When a node starts receiving messages for an epoch far ahead of its own —
for example after recovering from a partition — it fetches the missing log
entries together with the stable checkpoint that proves their integrity,
instead of replaying the ordering protocol for them.

This is also the second half of crash recovery (see
:mod:`repro.storage.recovery`): a restarted node replays its WAL and
snapshot locally, then probes peers with an *open-ended* request
(``last_epoch = LATEST_STABLE``) for everything they can prove stable —
including epochs ordered entirely while the node was down.  Verified
responses additionally restore the epoch's checkpoint certificate into the
local checkpoint protocol, so transferred epochs are garbage collected and
compacted exactly like locally completed ones.

Catch-up requests are *staggered*: asking every peer at once would make
each of them ship the full stable prefix (~(n-1)× the useful bytes, the
ROADMAP follow-up from PR 3).  Instead a request goes to one peer
immediately and escalates to the next peer every
``REPRO_PROBE_STAGGER`` virtual seconds.  Escalations are never
cancelled — they are *narrowed* at fire time to what is still missing
(open-ended probes re-base past the local stable frontier, ranged
requests shrink to the outstanding contiguous runs) and no-op when
nothing is.  Every peer is therefore still asked eventually — a crashed
or lagging early responder costs stagger intervals of delay, never
completeness — while the common case transfers each epoch exactly once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .checkpoint import CheckpointProtocol, epoch_log_root
from .config import ISSConfig
from .log import Log
from .segment import epoch_seq_nrs
from .types import Batch, CheckpointCertificate, EpochNr, LogEntry, NIL, NodeId, SeqNr, is_nil


#: Sentinel ``last_epoch`` meaning "every epoch you can prove stable".
#: Used by the crash-recovery probe, which cannot know how far ahead the
#: live nodes have ordered while the requester was down.
LATEST_STABLE: EpochNr = -1

#: Default spacing (virtual seconds) between probe escalations.  Sized so a
#: multi-epoch response has time to clear the responder's scaled-down NIC
#: before the next peer is bothered (an epoch of full batches is ~2.4 MB ≈
#: 1 s of serialisation at the benchmark bandwidth).
DEFAULT_PROBE_STAGGER = 2.0


def probe_stagger_interval() -> float:
    """Probe-escalation spacing (env var ``REPRO_PROBE_STAGGER``).

    ``0`` disables staggering entirely — every peer is probed at once, the
    pre-trim behaviour.  Negative or unparseable values fall back to
    :data:`DEFAULT_PROBE_STAGGER`.  Purely a virtual-time knob: it trades
    redundant state-transfer bytes against worst-case catch-up delay when
    the first probed peer cannot answer.
    """
    raw = os.environ.get("REPRO_PROBE_STAGGER")
    if raw is None:
        return DEFAULT_PROBE_STAGGER
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_PROBE_STAGGER
    return value if value >= 0 else DEFAULT_PROBE_STAGGER


@dataclass(frozen=True)
class StateRequest:
    """Ask a peer for all log entries of the given epochs.

    ``last_epoch = LATEST_STABLE`` is an open-ended request: the responder
    substitutes its own latest stable epoch.
    """

    first_epoch: EpochNr
    last_epoch: EpochNr

    def wire_size(self) -> int:
        return 32


@dataclass(frozen=True)
class StateResponse:
    """Log entries of one epoch plus its stable checkpoint certificate."""

    epoch: EpochNr
    entries: Tuple[Tuple[SeqNr, LogEntry], ...]
    certificate: CheckpointCertificate

    def wire_size(self) -> int:
        payload = sum(
            (1 if is_nil(entry) else entry.size_bytes()) for _sn, entry in self.entries
        )
        return 64 + payload + 96 * len(self.certificate.signatures)


class StateTransfer:
    """Per-node state-transfer helper.

    The host node calls :meth:`request_missing` when it detects it is behind,
    answers peers' requests through :meth:`build_responses`, and applies
    verified responses through :meth:`handle_response` (which feeds entries
    into the log via the supplied callback).
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ISSConfig,
        checkpoints: CheckpointProtocol,
        send_fn: Callable[[NodeId, object], None],
        apply_entry_fn: Callable[[SeqNr, LogEntry, EpochNr], None],
        schedule_fn: Optional[Callable[[float, Callable[[], None]], object]] = None,
        probe_stagger: Optional[float] = None,
    ):
        self.node_id = node_id
        self.config = config
        self.checkpoints = checkpoints
        self._send = send_fn
        self._apply_entry = apply_entry_fn
        #: Timer factory for probe escalation; None (or a zero stagger)
        #: falls back to probing every peer immediately.
        self._schedule = schedule_fn
        self.probe_stagger = (
            probe_stagger if probe_stagger is not None else probe_stagger_interval()
        )
        #: Epochs for which a transfer is currently outstanding.
        self._in_flight: set = set()
        self.transfers_completed = 0
        #: Wire bytes of every StateResponse received (incl. duplicates).
        self.bytes_received = 0
        #: Log entries actually applied from verified responses.
        self.entries_applied = 0
        #: Open-ended recovery probes sent.
        self.probes_sent = 0
        #: Staggered escalations actually fired (earlier peers too slow).
        self.probe_escalations = 0
        #: Staggered request chains started (rotates the first responder).
        self._ranged_requests = 0
        #: Outstanding escalation/expiry timers (cancelled on host crash).
        self._probe_timers: List[object] = []

    # ----------------------------------------------------------- requesting
    def request_missing(
        self,
        first_epoch: EpochNr,
        last_epoch: EpochNr,
        peers: List[NodeId],
        force: bool = False,
    ) -> None:
        """Ask peers for the epochs in ``[first_epoch, last_epoch]``.

        ``force`` re-requests epochs already marked in flight — the
        recovery catch-up path uses it when it *knows* a stable checkpoint
        exists for an epoch an earlier request failed to obtain (e.g. the
        request predated the checkpoint, or the responder crashed
        mid-transfer).

        Requests use the staggered escalation discipline (see
        :meth:`_staggered_send`): one peer is asked immediately, the rest
        ``probe_stagger`` apart with the request narrowed to what is still
        missing, and the in-flight reservation expires once the chain has
        run through every peer — so a chain whose responders all fail never
        blocks a later trigger from retrying.
        """
        wanted = [
            e
            for e in range(first_epoch, last_epoch + 1)
            if force or e not in self._in_flight
        ]
        if not wanted:
            return
        for epoch in wanted:
            self._in_flight.add(epoch)
        request = StateRequest(first_epoch=wanted[0], last_epoch=wanted[-1])
        others = [peer for peer in peers if peer != self.node_id]
        if not others:
            return
        self._staggered_send(others, request)

    def request_latest(self, first_epoch: EpochNr, peers: List[NodeId]) -> None:
        """Open-ended recovery probe: fetch everything stable from ``first_epoch`` on.

        A freshly restarted node cannot know how many epochs were ordered
        while it was down, so it asks for all epochs peers can prove.  The
        probe targets peers one at a time (``probe_stagger`` apart); later
        escalations re-base past whatever earlier responders already
        supplied, so every peer is still consulted eventually but the full
        stable prefix is shipped (at most) once instead of n-1 times.
        With no scheduler or a zero stagger, every peer is probed at once
        (the maximally redundant, maximally robust pre-trim behaviour).
        """
        self.probes_sent += 1
        request = StateRequest(first_epoch=first_epoch, last_epoch=LATEST_STABLE)
        others = [peer for peer in peers if peer != self.node_id]
        if not others:
            return
        self._staggered_send(others, request)

    # ------------------------------------------------- stagger & escalation
    def _staggered_send(self, others: List[NodeId], request: StateRequest) -> None:
        """Ask one peer now, schedule the rest ``probe_stagger`` apart.

        The starting peer rotates per request so repeated catch-ups spread
        the responder load.  Escalations self-narrow at fire time (see
        :meth:`_escalate_probe`), so peers asked later only ship what the
        earlier responders failed to supply; a ranged chain additionally
        expires its in-flight reservation one stagger after the last peer
        was asked, so even a chain of dead responders cannot block a later
        trigger from retrying.  Without a scheduler (unit tests) or with a
        zero stagger, every peer is asked at once — the pre-trim behaviour.
        """
        if self._schedule is None or self.probe_stagger <= 0:
            for peer in others:
                self._send(peer, request)
            return
        # Prune fired/cancelled timers so repeated catch-ups on a long-lived
        # lagging node keep the handle list (and stop()'s work) bounded.
        self._probe_timers = [
            timer for timer in self._probe_timers if getattr(timer, "active", True)
        ]
        start = self._ranged_requests % len(others)
        self._ranged_requests += 1
        rotated = others[start:] + others[:start]
        self._send(rotated[0], request)
        for index, peer in enumerate(rotated[1:], start=1):
            self._probe_timers.append(
                self._schedule(
                    self.probe_stagger * index,
                    lambda p=peer, r=request: self._escalate_probe(p, r),
                )
            )
        if request.last_epoch != LATEST_STABLE:
            self._probe_timers.append(
                self._schedule(
                    self.probe_stagger * len(rotated),
                    lambda r=request: self._expire_request(r),
                )
            )

    def _escalate_probe(self, peer: NodeId, request: StateRequest) -> None:
        """Fire one staggered escalation, narrowed to what is still missing.

        Open-ended probes re-base past the local stable frontier (verified
        responses restored those epochs' certificates, so the frontier
        reflects everything already obtained); ranged requests shrink to
        the outstanding epochs, one request per contiguous run so already
        supplied gaps are never re-shipped.  When nothing is missing the
        escalation is free: an empty range is skipped entirely and a
        re-based probe only yields epochs that stabilised since.
        """
        if request.last_epoch == LATEST_STABLE:
            latest = self.checkpoints.latest_stable_epoch()
            if latest is not None and latest + 1 > request.first_epoch:
                request = StateRequest(first_epoch=latest + 1, last_epoch=LATEST_STABLE)
            self.probe_escalations += 1
            self._send(peer, request)
            return
        missing = [
            epoch
            for epoch in range(request.first_epoch, request.last_epoch + 1)
            if epoch in self._in_flight
        ]
        if not missing:
            return
        self.probe_escalations += 1
        run_start = previous = missing[0]
        for epoch in missing[1:] + [None]:
            if epoch is not None and epoch == previous + 1:
                previous = epoch
                continue
            self._send(peer, StateRequest(first_epoch=run_start, last_epoch=previous))
            if epoch is not None:
                run_start = previous = epoch

    def _expire_request(self, request: StateRequest) -> None:
        """Release a ranged chain's in-flight reservation after it ran dry.

        Fires one stagger interval after the chain's last peer was asked:
        whatever is still unapplied by then is fair game for the next
        catch-up trigger (fresh chain, freshly rotated peers).
        """
        for epoch in range(request.first_epoch, request.last_epoch + 1):
            self._in_flight.discard(epoch)

    def stop(self) -> None:
        """Cancel outstanding escalation timers (host crashed or shut down)."""
        for timer in self._probe_timers:
            cancel = getattr(timer, "cancel", None)
            if cancel is not None:
                cancel()
        self._probe_timers = []

    # ------------------------------------------------------------ answering
    def build_responses(self, request: StateRequest, log: Log) -> List[StateResponse]:
        """Build responses for every requested epoch we can prove stable."""
        last_epoch = request.last_epoch
        if last_epoch == LATEST_STABLE:
            latest = self.checkpoints.latest_stable_epoch()
            if latest is None:
                return []
            last_epoch = latest
        responses: List[StateResponse] = []
        for epoch in range(request.first_epoch, last_epoch + 1):
            certificate = self.checkpoints.stable_checkpoint(epoch)
            if certificate is None:
                continue
            seq_nrs = epoch_seq_nrs(epoch, self.config.epoch_length)
            if not log.is_complete(seq_nrs):
                continue
            entries = tuple(log.entries_in(seq_nrs))
            responses.append(
                StateResponse(epoch=epoch, entries=entries, certificate=certificate)
            )
        return responses

    # -------------------------------------------------------------- applying
    def handle_response(self, response: StateResponse, log: Log) -> bool:
        """Verify and apply one state-transfer response.

        Returns True when the epoch was applied (or already present).
        The certificate signature quorum and the Merkle root over the
        received entries are both checked before anything touches the log;
        a verified certificate is additionally restored into the local
        checkpoint protocol so the epoch is stable (and garbage collected)
        at the receiver exactly as if it had collected the votes itself.
        """
        self.bytes_received += response.wire_size()
        epoch = response.epoch
        if epoch not in self._in_flight and log.is_complete(
            epoch_seq_nrs(epoch, self.config.epoch_length)
        ):
            return True
        if not self.checkpoints.verify_certificate(response.certificate):
            return False
        expected_sns = list(epoch_seq_nrs(epoch, self.config.epoch_length))
        received_sns = [sn for sn, _entry in response.entries]
        if received_sns != expected_sns:
            return False
        # Check the Merkle root of the received entries against the certificate.
        from ..crypto.merkle import merkle_root  # local import to avoid cycle at module load

        digests = [entry.digest() for _sn, entry in response.entries]
        if merkle_root(digests) != response.certificate.log_root:
            return False
        for sn, entry in response.entries:
            if not log.has_entry(sn):
                self._apply_entry(sn, entry, epoch)
                self.entries_applied += 1
        # Entries first, certificate second: compaction triggered by the
        # restored certificate then sees the complete prefix right away.
        self.checkpoints.restore_stable(response.certificate)
        self._in_flight.discard(epoch)
        self.transfers_completed += 1
        return True
