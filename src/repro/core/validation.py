"""Request validation and client watermarks (Section 3.7).

A request is valid iff (1) its signature verifies, (2) its client identifier
belongs to the known client set, and (3) its timestamp falls within the
client's current watermark window.  Watermark windows bound how many requests
a client can have in flight, which in turn bounds how much a malicious client
can bias the request-to-bucket distribution; ISS advances the windows at
epoch transitions.

The watermark window is also what makes per-node client state *collectable*:
once a client's low watermark passes a timestamp, no request with that
timestamp can ever be validly resubmitted, so the delivered filters and
verification caches holding it can be dropped
(see :meth:`repro.core.iss.ISSNode._gc_client_state`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..crypto.signatures import KeyStore
from .types import ClientId, Request, RequestId

#: Rejection reasons tracked per client (see :class:`ValidationStats`).
REJECT_BAD_SIGNATURE = "bad_signature"
REJECT_UNKNOWN_CLIENT = "unknown_client"
REJECT_OUTSIDE_WATERMARKS = "outside_watermarks"

REJECTION_REASONS = (
    REJECT_BAD_SIGNATURE,
    REJECT_UNKNOWN_CLIENT,
    REJECT_OUTSIDE_WATERMARKS,
)


def request_signing_payload(request: Request) -> bytes:
    """Bytes covered by the client signature: the identifier and the payload."""
    return (
        request.rid.client.to_bytes(8, "little", signed=False)
        + request.rid.timestamp.to_bytes(8, "little", signed=False)
        + request.payload
    )


def sign_request(key_store: KeyStore, request: Request) -> Request:
    """Return a copy of ``request`` signed with its client's key."""
    signature = key_store.sign(request.rid.client, request_signing_payload(request))
    return Request(rid=request.rid, payload=request.payload, signature=signature)


class ClientWatermarks:
    """Per-client watermark windows.

    A client may only use timestamps in ``[low, low + window)``, i.e. it may
    have at most ``window`` requests in flight.  The low watermark advances
    at epoch transitions (Section 3.7) to the end of the client's
    *contiguously delivered* timestamp prefix: everything below ``low`` has
    been delivered, so sliding the window there never invalidates an
    in-flight request while still bounding how far ahead a client can run.

    Memory stays bounded even against abusive gap-leaving clients: the
    out-of-order buffer of one client can never exceed its window (the
    window itself rejects anything further out), per-client sets are
    dropped the moment the prefix catches up, and
    :meth:`advance_epoch` prunes anything a replayed delivery could have
    left below the advanced watermark.
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("watermark window must be >= 1")
        self.window = window
        self._low: Dict[ClientId, int] = {}
        #: Next timestamp still missing from the contiguous delivered prefix.
        self._prefix: Dict[ClientId, int] = {}
        #: Delivered timestamps above the prefix (pruned as the prefix grows;
        #: entries exist only for clients that currently have a gap).
        self._out_of_order: Dict[ClientId, set] = {}

    def low_watermark(self, client: ClientId) -> int:
        return self._low.get(client, 0)

    def in_window(self, client: ClientId, timestamp: int) -> bool:
        low = self._low.get(client, 0)
        return low <= timestamp < low + self.window

    def note_delivered(self, client: ClientId, timestamp: int) -> None:
        """Record a delivered request (called on every SMR-DELIVER)."""
        prefix = self._prefix.get(client, 0)
        if timestamp < prefix:
            return
        if timestamp == prefix:
            # Common case (clients use contiguous timestamps): advance the
            # prefix straight through any buffered out-of-order deliveries
            # without ever materialising a set for purely in-order clients.
            prefix += 1
            pending = self._out_of_order.get(client)
            if pending:
                while prefix in pending:
                    pending.discard(prefix)
                    prefix += 1
                if not pending:
                    # The prefix caught up: keep no empty set behind for
                    # clients that go quiet.
                    del self._out_of_order[client]
            self._prefix[client] = prefix
            return
        pending = self._out_of_order.get(client)
        if pending is None:
            pending = self._out_of_order[client] = set()
        pending.add(timestamp)

    def advance_epoch(self) -> List[Tuple[ClientId, int, int]]:
        """Advance every client's window at an epoch transition.

        Returns the ``(client, old_low, new_low)`` triple of every window
        that moved — exactly the timestamp ranges whose requests can never
        be validly resubmitted again, which is what drives the per-client
        state garbage collection in the ISS node.
        """
        advanced: List[Tuple[ClientId, int, int]] = []
        for client, prefix in self._prefix.items():
            old = self._low.get(client, 0)
            if prefix <= old:
                continue
            self._low[client] = prefix
            advanced.append((client, old, prefix))
            # Defensive prune: deliveries replayed out of order (recovery,
            # state transfer) must never strand timestamps at or below the
            # advanced watermark in the out-of-order buffer.
            pending = self._out_of_order.get(client)
            if pending:
                stale = [ts for ts in pending if ts < prefix]
                for ts in stale:
                    pending.discard(ts)
                if not pending:
                    del self._out_of_order[client]
        return advanced

    # ------------------------------------------------------------ inspection
    def out_of_order_entries(self) -> int:
        """Total buffered out-of-order timestamps across all clients (the
        node-memory figure abusive gap-leavers try to inflate)."""
        return sum(len(pending) for pending in self._out_of_order.values())

    def tracked_gap_clients(self) -> int:
        """Number of clients currently holding an out-of-order buffer."""
        return len(self._out_of_order)


@dataclass
class ValidationStats:
    """Counts of accepted / rejected requests, per rejection reason.

    ``by_client`` attributes every rejection to the client identity the
    request *claims* (for forged signatures that is the impersonated victim
    — the only identity a node can observe); it is only touched on
    rejection, so honest-path validation stays counter increments.
    """

    accepted: int = 0
    bad_signature: int = 0
    unknown_client: int = 0
    outside_watermarks: int = 0
    #: Rejections per claimed client identity, per reason.
    by_client: Dict[ClientId, Dict[str, int]] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return self.bad_signature + self.unknown_client + self.outside_watermarks

    def note_rejection(self, client: ClientId, reason: str) -> None:
        """Attribute one rejection of ``reason`` to ``client``."""
        per = self.by_client.get(client)
        if per is None:
            per = self.by_client[client] = dict.fromkeys(REJECTION_REASONS, 0)
        per[reason] += 1


class RequestValidator:
    """Implements the three-part validity check of Section 3.7."""

    def __init__(
        self,
        key_store: KeyStore,
        known_clients: Iterable[ClientId],
        watermarks: ClientWatermarks,
        verify_signatures: bool = True,
    ):
        self.key_store = key_store
        self.known_clients: Set[ClientId] = set(known_clients)
        self.watermarks = watermarks
        self.verify_signatures = verify_signatures
        self.stats = ValidationStats()
        #: Requests whose signature this node already verified (a node sees
        #: the same request on reception and again inside proposals; the
        #: crypto result cannot change, so re-verification is skipped).
        #: Keyed by request id so entries below a client's advanced low
        #: watermark can be garbage collected (:meth:`forget_below`); the
        #: stored Request is compared on lookup, so a different payload or
        #: signature under a reused id still re-verifies.
        self._verified: Dict[RequestId, Request] = {}

    def add_client(self, client: ClientId) -> None:
        self.known_clients.add(client)

    def is_valid(self, request: Request) -> bool:
        """Full validity check; updates :attr:`stats` with the outcome."""
        rid = request.rid
        if rid.client not in self.known_clients:
            self.stats.unknown_client += 1
            self.stats.note_rejection(rid.client, REJECT_UNKNOWN_CLIENT)
            return False
        if not self.watermarks.in_window(rid.client, rid.timestamp):
            self.stats.outside_watermarks += 1
            self.stats.note_rejection(rid.client, REJECT_OUTSIDE_WATERMARKS)
            return False
        if self.verify_signatures:
            cached = self._verified.get(rid)
            if cached is not request and cached != request:
                # Shared O(1) re-verification: the key store memoizes the
                # outcome by (identity, digest, signature), so only the first
                # validator in the deployment pays for the HMAC.
                if not self.key_store.verify_digest(
                    rid.client,
                    request.digest(),
                    request.signature,
                    lambda: request_signing_payload(request),
                ):
                    self.stats.bad_signature += 1
                    self.stats.note_rejection(rid.client, REJECT_BAD_SIGNATURE)
                    return False
                self._verified[rid] = request
        self.stats.accepted += 1
        return True

    def forget_below(self, client: ClientId, old_low: int, new_low: int) -> int:
        """Drop verification cache entries for ``client`` timestamps in
        ``[old_low, new_low)`` — below the advanced low watermark they can
        never be validly resubmitted, so caching them is pure retention.
        Returns the number of entries dropped."""
        dropped = 0
        verified = self._verified
        for timestamp in range(old_low, new_low):
            if verified.pop(RequestId(client=client, timestamp=timestamp), None) is not None:
                dropped += 1
        return dropped

    def verified_cache_size(self) -> int:
        """Entries currently held by the signature-verification cache."""
        return len(self._verified)
