"""Request validation and client watermarks (Section 3.7).

A request is valid iff (1) its signature verifies, (2) its client identifier
belongs to the known client set, and (3) its timestamp falls within the
client's current watermark window.  Watermark windows bound how many requests
a client can have in flight, which in turn bounds how much a malicious client
can bias the request-to-bucket distribution; ISS advances the windows at
epoch transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from ..crypto.signatures import KeyStore
from .types import ClientId, Request


def request_signing_payload(request: Request) -> bytes:
    """Bytes covered by the client signature: the identifier and the payload."""
    return (
        request.rid.client.to_bytes(8, "little", signed=False)
        + request.rid.timestamp.to_bytes(8, "little", signed=False)
        + request.payload
    )


def sign_request(key_store: KeyStore, request: Request) -> Request:
    """Return a copy of ``request`` signed with its client's key."""
    signature = key_store.sign(request.rid.client, request_signing_payload(request))
    return Request(rid=request.rid, payload=request.payload, signature=signature)


class ClientWatermarks:
    """Per-client watermark windows.

    A client may only use timestamps in ``[low, low + window)``, i.e. it may
    have at most ``window`` requests in flight.  The low watermark advances
    at epoch transitions (Section 3.7) to the end of the client's
    *contiguously delivered* timestamp prefix: everything below ``low`` has
    been delivered, so sliding the window there never invalidates an
    in-flight request while still bounding how far ahead a client can run.
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("watermark window must be >= 1")
        self.window = window
        self._low: Dict[ClientId, int] = {}
        #: Next timestamp still missing from the contiguous delivered prefix.
        self._prefix: Dict[ClientId, int] = {}
        #: Delivered timestamps above the prefix (pruned as the prefix grows).
        self._out_of_order: Dict[ClientId, set] = {}

    def low_watermark(self, client: ClientId) -> int:
        return self._low.get(client, 0)

    def in_window(self, client: ClientId, timestamp: int) -> bool:
        low = self._low.get(client, 0)
        return low <= timestamp < low + self.window

    def note_delivered(self, client: ClientId, timestamp: int) -> None:
        """Record a delivered request (called on every SMR-DELIVER)."""
        prefix = self._prefix.get(client, 0)
        if timestamp < prefix:
            return
        pending = self._out_of_order.get(client)
        if pending is None:
            pending = self._out_of_order[client] = set()
        pending.add(timestamp)
        if timestamp == prefix:
            while prefix in pending:
                pending.discard(prefix)
                prefix += 1
            self._prefix[client] = prefix

    def advance_epoch(self) -> None:
        """Advance every client's window at an epoch transition."""
        for client, prefix in self._prefix.items():
            self._low[client] = max(self._low.get(client, 0), prefix)


@dataclass
class ValidationStats:
    """Counts of accepted / rejected requests, per rejection reason."""

    accepted: int = 0
    bad_signature: int = 0
    unknown_client: int = 0
    outside_watermarks: int = 0

    @property
    def rejected(self) -> int:
        return self.bad_signature + self.unknown_client + self.outside_watermarks


class RequestValidator:
    """Implements the three-part validity check of Section 3.7."""

    def __init__(
        self,
        key_store: KeyStore,
        known_clients: Iterable[ClientId],
        watermarks: ClientWatermarks,
        verify_signatures: bool = True,
    ):
        self.key_store = key_store
        self.known_clients: Set[ClientId] = set(known_clients)
        self.watermarks = watermarks
        self.verify_signatures = verify_signatures
        self.stats = ValidationStats()
        #: Requests whose signature this node already verified (a node sees
        #: the same request on reception and again inside proposals; the
        #: crypto result cannot change, so re-verification is skipped).
        #: Keyed by the Request object — its hash covers (rid, payload) and is
        #: cached on the instance, so a hit costs one set probe.
        self._verified: Set[Request] = set()

    def add_client(self, client: ClientId) -> None:
        self.known_clients.add(client)

    def is_valid(self, request: Request) -> bool:
        """Full validity check; updates :attr:`stats` with the outcome."""
        rid = request.rid
        if rid.client not in self.known_clients:
            self.stats.unknown_client += 1
            return False
        if not self.watermarks.in_window(rid.client, rid.timestamp):
            self.stats.outside_watermarks += 1
            return False
        if self.verify_signatures:
            if request not in self._verified:
                # Shared O(1) re-verification: the key store memoizes the
                # outcome by (identity, digest, signature), so only the first
                # validator in the deployment pays for the HMAC.
                if not self.key_store.verify_digest(
                    rid.client,
                    request.digest(),
                    request.signature,
                    lambda: request_signing_payload(request),
                ):
                    self.stats.bad_signature += 1
                    return False
                self._verified.add(request)
        self.stats.accepted += 1
        return True
