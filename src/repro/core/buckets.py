"""Request buckets and the rotating bucket-to-leader assignment.

ISS partitions the space of client requests into *buckets* using a hash of
the request identifier (Section 3.7: the payload is excluded so malicious
clients cannot bias the distribution).  Each epoch assigns every bucket to
exactly one segment/leader; the assignment rotates across epochs (Section
2.4, Equation 1 plus the extra-bucket redistribution) so every bucket is
eventually owned by a correct leader — this is what prevents both request
duplication and censoring.

The module also provides :class:`BucketQueue`, the node-local FIFO,
idempotent queue of pending requests per bucket (Section 3.7), and
:class:`BucketPool`, the set of all bucket queues of one node.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .types import BucketId, EpochNr, NodeId, Request, RequestId


# --------------------------------------------------------------------------
# Hash-partitioning of the request space
# --------------------------------------------------------------------------

def bucket_of(rid: RequestId, num_buckets: int) -> BucketId:
    """Map a request identifier to its bucket.

    Follows Section 3.7: the bucket is derived from the client identifier and
    the client timestamp only (``c || t mod |B|``); the payload is excluded
    so clients cannot bias placement by crafting payloads.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    # The mixing step keeps consecutive timestamps of one client from all
    # landing in consecutive buckets while remaining deterministic; the mixed
    # value is precomputed at RequestId construction (``_mix``).
    return rid._mix % num_buckets


# --------------------------------------------------------------------------
# Bucket-to-leader assignment (Section 2.4)
# --------------------------------------------------------------------------

def init_buckets(epoch: EpochNr, node: NodeId, num_nodes: int, num_buckets: int) -> List[BucketId]:
    """Equation (1): buckets initially assigned to ``node`` in ``epoch``.

    ``initBuckets(e, i) = { b in B | (b + e) == i  (mod n) }``
    """
    return [b for b in range(num_buckets) if (b + epoch) % num_nodes == node]


def extra_buckets(
    epoch: EpochNr,
    leaders: Sequence[NodeId],
    num_nodes: int,
    num_buckets: int,
) -> List[BucketId]:
    """Buckets whose initial assignee is *not* a leader of ``epoch``."""
    leader_set = set(leaders)
    extras: List[BucketId] = []
    for node in range(num_nodes):
        if node in leader_set:
            continue
        extras.extend(init_buckets(epoch, node, num_nodes, num_buckets))
    return sorted(extras)


def buckets_for_leader(
    epoch: EpochNr,
    leader: NodeId,
    leaders: Sequence[NodeId],
    num_nodes: int,
    num_buckets: int,
) -> List[BucketId]:
    """Full bucket set of one leader in ``epoch`` (Section 2.4).

    The leader keeps its initial buckets and receives, round-robin by its
    index in the (lexicographically sorted) leaderset, a share of the buckets
    whose initial assignees are not leaders this epoch.
    """
    ordered_leaders = sorted(leaders)
    if leader not in ordered_leaders:
        raise ValueError(f"node {leader} is not a leader of epoch {epoch}")
    k = ordered_leaders.index(leader)
    own = set(init_buckets(epoch, leader, num_nodes, num_buckets))
    redistributed = {
        b
        for b in extra_buckets(epoch, ordered_leaders, num_nodes, num_buckets)
        if (b + epoch) % len(ordered_leaders) == k
    }
    return sorted(own | redistributed)


def assignment_for_epoch(
    epoch: EpochNr,
    leaders: Sequence[NodeId],
    num_nodes: int,
    num_buckets: int,
    active_nodes: Optional[Sequence[NodeId]] = None,
) -> Dict[NodeId, List[BucketId]]:
    """Bucket assignment for every leader of ``epoch``.

    The result is a partition of ``range(num_buckets)``: every bucket is
    owned by exactly one leader.  Semantically identical to calling
    :func:`buckets_for_leader` per leader (the test suite asserts the
    equivalence) but computed in a single O(|B|) pass, since clients and the
    epoch manager evaluate it frequently.

    ``active_nodes`` is the epoch's membership (sorted node ids) under
    dynamic reconfiguration.  Equation (1) then rotates over the *index* in
    the active list rather than the raw node id — identical to the paper's
    ``(b + e) mod n`` whenever the membership is the genesis ``0..n-1``,
    but well-defined for arbitrary replica sets (the bucket space itself
    stays fixed at its genesis size).
    """
    ordered_leaders = sorted(set(leaders))
    if not ordered_leaders:
        raise ValueError("assignment needs at least one leader")
    if active_nodes is not None:
        active = sorted(active_nodes)
        contiguous = active == list(range(len(active)))
    else:
        active = list(range(num_nodes))
        contiguous = True
    leader_index = {leader: k for k, leader in enumerate(ordered_leaders)}
    assignment: Dict[NodeId, List[BucketId]] = {leader: [] for leader in ordered_leaders}
    num_active = len(active)
    for bucket in range(num_buckets):
        if contiguous:
            initial_owner = (bucket + epoch) % num_active
        else:
            initial_owner = active[(bucket + epoch) % num_active]
        if initial_owner in leader_index:
            assignment[initial_owner].append(bucket)
        else:
            k = (bucket + epoch) % len(ordered_leaders)
            assignment[ordered_leaders[k]].append(bucket)
    return assignment


# --------------------------------------------------------------------------
# Node-local bucket queues
# --------------------------------------------------------------------------

@dataclass
class _QueueEntry:
    order: int
    request: Request


class BucketQueue:
    """FIFO, idempotent queue of pending requests for one bucket.

    * *Idempotent*: adding the same request id twice is a no-op.
    * *FIFO*: :meth:`take_oldest` always returns the oldest pending requests,
      which the liveness proof (Lemma 5.5) relies on.
    * *Resurrection-aware*: a request returned via :meth:`resurrect` keeps its
      original arrival order, so it goes back to the front of the queue.
    """

    def __init__(self, bucket_id: BucketId):
        self.bucket_id = bucket_id
        self._entries: Dict[RequestId, _QueueEntry] = {}
        #: Min-heap of (arrival order, request id); may contain stale ids.
        self._heap: List[Tuple[int, RequestId]] = []
        self._arrival_counter = 0
        #: Arrival order remembered even after removal, for resurrection.
        self._original_order: Dict[RequestId, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: RequestId) -> bool:
        return rid in self._entries

    def add(self, request: Request) -> bool:
        """Add a request exactly once.

        Returns False when the request is already pending *or* was added
        before and has since been removed (proposed or delivered) — the
        "exactly once" idempotence of Section 3.7.  Requests withdrawn by an
        unsuccessful proposal re-enter through :meth:`resurrect`, which
        bypasses this check while preserving the original FIFO position.
        """
        rid = request.rid
        if rid in self._entries or rid in self._original_order:
            return False
        self._insert(request)
        return True

    def _insert(self, request: Request) -> None:
        rid = request.rid
        order = self._original_order.get(rid)
        if order is None:
            order = self._arrival_counter
            self._arrival_counter += 1
            self._original_order[rid] = order
        entry = _QueueEntry(order=order, request=request)
        self._entries[rid] = entry
        heapq.heappush(self._heap, (order, rid))

    def remove(self, rid: RequestId) -> Optional[Request]:
        """Remove a request (e.g. because it was proposed or delivered)."""
        entry = self._entries.pop(rid, None)
        return entry.request if entry else None

    def resurrect(self, request: Request) -> None:
        """Return an unsuccessfully proposed request, keeping its FIFO slot."""
        if request.rid in self._entries:
            return
        self._insert(request)

    def peek_oldest(self) -> Optional[Request]:
        self._compact()
        if not self._heap:
            return None
        _order, rid = self._heap[0]
        return self._entries[rid].request

    def take_oldest(self, count: int) -> List[Request]:
        """Remove and return up to ``count`` oldest pending requests."""
        taken: List[Request] = []
        while len(taken) < count:
            self._compact()
            if not self._heap:
                break
            _order, rid = heapq.heappop(self._heap)
            entry = self._entries.pop(rid, None)
            if entry is not None:
                taken.append(entry.request)
        return taken

    def _compact(self) -> None:
        """Drop stale heap heads pointing at removed requests."""
        while self._heap and self._heap[0][1] not in self._entries:
            heapq.heappop(self._heap)

    def pending(self) -> List[Request]:
        """All pending requests in FIFO order (test/inspection helper)."""
        entries = sorted(self._entries.values(), key=lambda e: e.order)
        return [e.request for e in entries]

    def forget_history(self, rid: RequestId) -> None:
        """Drop the remembered arrival order of a request (garbage collection)."""
        self._original_order.pop(rid, None)


class BucketPool:
    """All bucket queues of one node plus the delivered-request filter.

    Nodes add every valid request they receive to the corresponding queue,
    but only propose from queues currently assigned to segments they lead.
    Delivered requests are remembered so they are never re-added or
    re-proposed (duplication prevention across epochs, Section 3.2).
    """

    def __init__(self, num_buckets: int):
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.num_buckets = num_buckets
        self._queues: Dict[BucketId, BucketQueue] = {
            b: BucketQueue(b) for b in range(num_buckets)
        }
        #: Request ids delivered at this node; read directly by hot loops
        #: (batch validation), mutated only through :meth:`mark_delivered`.
        self.delivered: Set[RequestId] = set()

    def queue(self, bucket: BucketId) -> BucketQueue:
        return self._queues[bucket]

    def bucket_of(self, rid: RequestId) -> BucketId:
        return rid._mix % self.num_buckets

    def add_request(self, request: Request) -> bool:
        """Add a request to its bucket unless it was already delivered."""
        rid = request.rid
        if rid in self.delivered:
            return False
        return self._queues[rid._mix % self.num_buckets].add(request)

    def remove_request(self, rid: RequestId) -> Optional[Request]:
        return self._queues[rid._mix % self.num_buckets].remove(rid)

    def mark_delivered(self, request: Request) -> None:
        """Record delivery and drop the request from its pending queue."""
        rid = request.rid
        self.delivered.add(rid)
        queue = self._queues[rid._mix % self.num_buckets]
        queue.remove(rid)
        queue.forget_history(rid)

    def is_delivered(self, rid: RequestId) -> bool:
        return rid in self.delivered

    def forget_delivered_below(self, client: int, old_low: int, new_low: int) -> int:
        """Garbage-collect delivered request ids of ``client`` with timestamps
        in ``[old_low, new_low)``.

        Called at epoch transitions once the client's low watermark advanced
        to ``new_low``: every timestamp below the watermark is outside the
        client's window forever, so the validator rejects any resubmission
        before it can reach the queues and the delivered filter no longer
        needs to remember it.  The range is exactly the contiguous delivered
        prefix the watermark slid over, so every id in it is expected to be
        present.  Returns the number of entries dropped.
        """
        dropped = 0
        delivered = self.delivered
        for timestamp in range(old_low, new_low):
            rid = RequestId(client=client, timestamp=timestamp)
            if rid in delivered:
                delivered.discard(rid)
                dropped += 1
        return dropped

    def resurrect(self, requests: Iterable[Request]) -> None:
        """Return unsuccessfully proposed requests to their queues
        (Algorithm 2, ``resurrectRequests``), skipping any that committed in
        the meantime."""
        for request in requests:
            rid = request.rid
            if rid in self.delivered:
                continue
            self._queues[rid._mix % self.num_buckets].resurrect(request)

    def pending_in(self, buckets: Iterable[BucketId]) -> int:
        """Number of pending requests across the given buckets."""
        return sum(len(self._queues[b]) for b in buckets)

    def cut_batch(self, buckets: Sequence[BucketId], max_size: int) -> List[Request]:
        """Take up to ``max_size`` oldest requests across ``buckets``.

        Requests are drawn oldest-first *per bucket* and merged by arrival
        order, approximating a global FIFO over the segment's buckets
        (Algorithm 2, ``cutBatch``).
        """
        if max_size <= 0:
            return []
        # Gather candidates lazily: peek each bucket and repeatedly take the
        # globally oldest head.  Queue heads expose their arrival order via
        # the underlying heap, but a simple peek-and-compare loop is clearer
        # and fast enough for simulation batch sizes.
        taken: List[Request] = []
        heads: List[Tuple[int, BucketId]] = []
        for b in buckets:
            queue = self._queues[b]
            oldest = queue.peek_oldest()
            if oldest is not None:
                heads.append((queue._entries[oldest.rid].order, b))
        heapq.heapify(heads)
        while heads and len(taken) < max_size:
            _order, b = heapq.heappop(heads)
            queue = self._queues[b]
            requests = queue.take_oldest(1)
            if requests:
                taken.append(requests[0])
            oldest = queue.peek_oldest()
            if oldest is not None:
                heapq.heappush(heads, (queue._entries[oldest.rid].order, b))
        return taken

    def total_pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def delivered_count(self) -> int:
        return len(self.delivered)
