"""Top-level message envelopes exchanged between ISS nodes and clients.

Protocol messages of the individual SB instances are wrapped in
:class:`InstanceMessage` envelopes carrying the instance identifier
``(epoch, segment leader)`` so the receiving node can route them; checkpoint,
state-transfer and client messages travel unwrapped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..runtime.wire import is_batchable, register_batchable, wire_size
from .types import BucketId, ClientId, EpochNr, NodeId, Request, RequestId, SeqNr

#: Network endpoint ids of clients start here so they never collide with nodes.
CLIENT_ENDPOINT_OFFSET = 1_000_000


def client_endpoint(client_id: int) -> int:
    """Network endpoint identifier of a client process."""
    return CLIENT_ENDPOINT_OFFSET + client_id


def is_client_endpoint(endpoint: int) -> bool:
    """Whether a network endpoint id belongs to a client (vs a node)."""
    return endpoint >= CLIENT_ENDPOINT_OFFSET


@dataclass(frozen=True)
class InstanceMessage:
    """Envelope routing a protocol message to one SB instance."""

    instance_id: Tuple[EpochNr, NodeId]
    payload: object

    def wire_size(self) -> int:
        return 16 + wire_size(self.payload)


# The envelope is transparent to wire batching: it may be coalesced exactly
# when the protocol message it routes may be (votes yes, proposals no).
register_batchable(InstanceMessage, predicate=lambda m: is_batchable(m.payload))


@register_batchable
@dataclass(frozen=True)
class ClientRequestMsg:
    """⟨REQUEST, r⟩ sent by a client to a node.

    Batchable: a client submitting at a high rate coalesces the requests it
    sends to the same node within one flush tick into a single wire frame
    (the node still validates and buckets each request individually).
    """

    request: Request

    def wire_size(self) -> int:
        return 8 + self.request.size_bytes()


@register_batchable
@dataclass(frozen=True)
class ClientResponseMsg:
    """A node's acknowledgement that it delivered the client's request.

    Kept as the single-request form (re-acknowledgements of retransmitted
    requests, tests); the delivery fast path aggregates acknowledgements into
    :class:`ClientResponseBatchMsg` instead of sending one of these per
    request.
    """

    rid: RequestId
    sn: int
    node: NodeId

    def wire_size(self) -> int:
        return 48


@register_batchable
@dataclass(frozen=True)
class ClientResponseBatchMsg:
    """A node's acknowledgement for *all* of one client's requests delivered
    by one commit step.

    Aggregating the per-request ⟨RESPONSE⟩ messages per (client, batch) cuts
    the dominant message count of large runs by the batch size while leaving
    per-request completion semantics at the client unchanged: every ``(rid,
    sn)`` entry is processed exactly as if it had arrived in its own
    :class:`ClientResponseMsg`.
    """

    client: ClientId
    #: ``(request id, per-request sequence number)`` pairs; ``sn == -1``
    #: re-acknowledges an already-delivered retransmission.
    entries: Tuple[Tuple[RequestId, int], ...]
    node: NodeId

    def wire_size(self) -> int:
        # Header plus (rid 16B + sn 8B) per acknowledged request.
        return 32 + 24 * len(self.entries)


@dataclass(frozen=True)
class BucketAssignmentMsg:
    """Epoch-transition notification to clients (Section 4.3).

    Maps every bucket to the node leading its segment in ``epoch`` so clients
    can send each request to the leader currently responsible for it.
    """

    epoch: EpochNr
    assignment: Tuple[Tuple[BucketId, NodeId], ...]

    def wire_size(self) -> int:
        return 16 + 8 * len(self.assignment)
