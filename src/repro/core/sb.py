"""The Sequenced Broadcast (SB) abstraction (Section 2.2).

An SB instance is parametrised by a designated sender σ (the segment
leader), an explicit set of sequence numbers S (the segment's positions), an
explicit message set M (batches drawn from the segment's buckets) and a
failure-detector instance.  Correct nodes deliver, for *every* sequence
number in S, either a batch sb-cast by σ or the special ``⊥`` value — the
latter only after some correct node suspected σ.

This module defines the interface between ISS and its SB implementations
(PBFT, HotStuff, Raft, or the reference consensus-based construction):

* :class:`SBContext` — everything the host node provides to an instance
  (routing, timers, batch cutting, validation, delivery).
* :class:`SBInstance` — the behaviour every implementation must provide.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from .config import ISSConfig
from .types import Batch, EpochNr, LogEntry, NodeId, SegmentDescriptor, SeqNr
from ..runtime.api import Timer


#: Type of the instance identifier: ``(epoch, segment leader)``.
InstanceId = Tuple[EpochNr, NodeId]


class SBContext:
    """Host-node services handed to a Sequenced Broadcast instance.

    The context hides everything about the surrounding ISS node: message
    routing (protocol messages are wrapped with the instance id and sent over
    the simulated network), virtual-time timers, batch construction from the
    segment's bucket queues, proposal validation, and the SB-DELIVER path
    back into the log.
    """

    def __init__(
        self,
        *,
        node_id: NodeId,
        config: ISSConfig,
        segment: SegmentDescriptor,
        all_nodes: Iterable[NodeId],
        send_fn: Callable[[NodeId, object], None],
        local_fn: Callable[[object], None],
        schedule_fn: Callable[[float, Callable[[], None]], Timer],
        now_fn: Callable[[], float],
        cut_batch_fn: Callable[[SeqNr], Batch],
        validate_batch_fn: Callable[[Batch], bool],
        deliver_fn: Callable[[SeqNr, LogEntry], None],
        pending_fn: Callable[[], int],
        proposal_interval: float = 0.0,
        may_propose_fn: Optional[Callable[[SeqNr], bool]] = None,
        proposal_delay: float = 0.0,
        force_empty_proposals: bool = False,
        key_store: Optional[object] = None,
        report_misbehaviour_fn: Optional[Callable[[str, NodeId], None]] = None,
        timeout_jitter_fn: Optional[Callable[[], float]] = None,
        note_view_change_fn: Optional[Callable[[], None]] = None,
        tracer=None,
        membership=None,
    ):
        self.node_id = node_id
        self.config = config
        self.segment = segment
        self.all_nodes: List[NodeId] = list(all_nodes)
        #: Membership view of the instance's epoch under dynamic
        #: reconfiguration (``repro.core.membership.MembershipView``); None
        #: means the genesis configuration, in which case the quorum
        #: properties below fall back to the static config arithmetic.
        self.membership = membership
        self._send = send_fn
        self._local = local_fn
        self._schedule = schedule_fn
        self._now = now_fn
        self._cut_batch = cut_batch_fn
        self._validate_batch = validate_batch_fn
        self._deliver = deliver_fn
        self._pending = pending_fn
        #: Minimum spacing between this leader's proposals (rate limiting,
        #: Section 4.4.1 / the fixed batch rate of Table 1).  Zero disables.
        self.proposal_interval = proposal_interval
        self._may_propose = may_propose_fn
        #: Byzantine-straggler knobs (Section 6.4.2): extra delay before each
        #: proposal and stripping of requests from proposals.
        self.proposal_delay = proposal_delay
        self.force_empty_proposals = force_empty_proposals
        #: Deployment key store (used by HotStuff for threshold signatures and
        #: by any implementation that wants to sign protocol messages).
        self.key_store = key_store
        self._report_misbehaviour = report_misbehaviour_fn
        #: Deterministic per-instance jitter on armed view/round timeouts
        #: (None = no jitter; see ``ISSConfig.view_change_jitter``).
        self._timeout_jitter = timeout_jitter_fn
        #: Host counter hook fired on every completed view/round change.
        self._note_view_change = note_view_change_fn
        #: Observability hook (``repro.obs.RequestTracer``); protocol
        #: implementations emit per-slot phase events through it when it is
        #: not ``None`` (see ``RequestTracer.on_sb``).
        self.tracer = tracer

    # ------------------------------------------------------------ identity
    @property
    def num_nodes(self) -> int:
        if self.membership is not None:
            return self.membership.num_nodes
        return self.config.num_nodes

    @property
    def max_faulty(self) -> int:
        if self.membership is not None:
            return self.membership.max_faulty
        return self.config.max_faulty

    @property
    def strong_quorum(self) -> int:
        if self.membership is not None:
            return self.membership.strong_quorum
        return self.config.strong_quorum

    @property
    def weak_quorum(self) -> int:
        if self.membership is not None:
            return self.membership.weak_quorum
        return self.config.weak_quorum

    @property
    def is_leader(self) -> bool:
        """True when this node is the segment's designated sender σ."""
        return self.segment.leader == self.node_id

    # ----------------------------------------------------------- messaging
    def send(self, dst: NodeId, message: object) -> None:
        """Send a protocol message to one peer (self-sends short-circuit)."""
        if dst == self.node_id:
            self._local(message)
        else:
            self._send(dst, message)

    def broadcast(self, message: object, include_self: bool = True) -> None:
        """Send a protocol message to every node (optionally including self).

        Vote-sized messages may be coalesced with other traffic on each
        (sender, receiver) link by the network's wire-batching layer (see
        :mod:`repro.sim.batching`); every recipient still handles the vote
        individually, so implementations need not care.
        """
        for node in self.all_nodes:
            if node == self.node_id:
                if include_self:
                    self._local(message)
            else:
                self._send(node, message)

    # -------------------------------------------------------------- timing
    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        return self._schedule(delay, callback)

    def now(self) -> float:
        return self._now()

    def timeout_jitter(self) -> float:
        """Multiplier (``>= 1``) for the next armed view/round timeout.

        With ``ISSConfig.view_change_jitter = 0`` (the default) this is a
        constant 1.0 and draws nothing; otherwise the host supplies a
        deterministic per-instance sample in ``[1, 1 + jitter)``, which
        desynchronises simultaneous timeouts across nodes (no view-change
        storms when a partition stalls many instances at once).
        """
        if self._timeout_jitter is None:
            return 1.0
        return self._timeout_jitter()

    def note_view_change(self) -> None:
        """Count one completed view/round change at the host node (feeds the
        "view changes during partition" figure of ``RunReport.partitions``;
        the per-instance counters die with epoch garbage collection, this
        one survives)."""
        if self._note_view_change is not None:
            self._note_view_change()

    # ------------------------------------------------------------ batching
    def cut_batch(self, sn: SeqNr) -> Batch:
        """Cut a batch for ``sn`` from the segment's bucket queues.

        The host records the proposal (for resurrection on ``⊥``) and removes
        the requests from its queues; a straggler host returns empty batches.
        """
        return self._cut_batch(sn)

    def pending_requests(self) -> int:
        """Requests currently waiting in the segment's buckets."""
        return self._pending()

    def batch_ready(self) -> bool:
        """True when enough requests are pending to fill a batch."""
        return self._pending() >= self.config.max_batch_size

    def may_propose(self, sn: SeqNr) -> bool:
        """Crash-fault hook: False means the node just crashed (suppress send)."""
        if self._may_propose is None:
            return True
        return self._may_propose(sn)

    # ---------------------------------------------------------- validation
    def validate_batch(self, batch: Batch) -> bool:
        """Follower-side proposal check (Section 4.2, acceptance rule (a)-(c))."""
        return self._validate_batch(batch)

    # -------------------------------------------------------- misbehaviour
    def report_misbehaviour(self, kind: str, node: NodeId) -> None:
        """Report *provable* misbehaviour of ``node`` to the host.

        ``kind`` is ``"equivocation"`` (evidence that the designated sender
        issued conflicting proposals, e.g. f+1 prepare votes for a digest
        other than the locally accepted one) or ``"invalid-signature"`` (a
        vote whose signature failed verification).  The host only counts
        these in its diagnostics (``RunReport``); leaderset eviction stays
        driven by the log-visible ``⊥`` entries so every correct node keeps
        computing identical leadersets (Section 3.4).
        """
        if self._report_misbehaviour is not None:
            self._report_misbehaviour(kind, node)

    # ------------------------------------------------------------ delivery
    def deliver(self, sn: SeqNr, value: LogEntry) -> None:
        """Trigger SB-DELIVER(sn, value) at the host node."""
        self._deliver(sn, value)


class SBInstance(ABC):
    """Behaviour required from every Sequenced Broadcast implementation.

    Lifecycle: the host constructs the instance with its :class:`SBContext`,
    calls :meth:`start` (the SB-INIT event), routes incoming protocol
    messages to :meth:`handle_message`, and finally calls :meth:`stop` once
    the segment is covered by a stable checkpoint and can be garbage
    collected.  The instance must call ``context.deliver(sn, value)`` exactly
    once for every sequence number of its segment (SB Termination).
    """

    def __init__(self, context: SBContext):
        self.context = context

    @property
    def instance_id(self) -> InstanceId:
        return self.context.segment.instance_id

    @property
    def segment(self) -> SegmentDescriptor:
        return self.context.segment

    @abstractmethod
    def start(self) -> None:
        """SB-INIT: begin participating in the instance."""

    @abstractmethod
    def handle_message(self, src: NodeId, message: object) -> None:
        """Process one protocol message addressed to this instance."""

    @abstractmethod
    def stop(self) -> None:
        """Stop all activity (cancel timers); called at garbage collection."""

    def nudge(self) -> None:
        """Connectivity was restored (e.g. a partition healed): re-examine
        liveness *now* instead of waiting out timers that were exponentially
        backed off during the outage.

        Default no-op; view/round-based protocols override it to restart
        their stalled-progress machinery at the base timeout.  Never called
        on the clean path, so implementations may send messages freely.
        """


@dataclass
class SBDelivery:
    """Record of one SB-DELIVER event (used by tests and the orderer)."""

    instance_id: InstanceId
    sn: SeqNr
    value: LogEntry
    delivered_at: float
