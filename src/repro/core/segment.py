"""Epoch and segment arithmetic (Sections 2.3 and 3.1).

The log is split into fixed-length *epochs*; each epoch's sequence numbers
are interleaved round-robin across that epoch's *segments*, one segment per
leader.  Round-robin interleaving (rather than contiguous blocks) minimises
"gaps" in the log during fault-free execution and therefore end-to-end
latency — an ablation benchmark compares both layouts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .types import BucketId, EpochNr, NodeId, SegmentDescriptor, SeqNr
from .buckets import assignment_for_epoch

#: Sequence-number layouts supported for the ablation study.
LAYOUT_ROUND_ROBIN = "round-robin"
LAYOUT_CONTIGUOUS = "contiguous"


def epoch_of(sn: SeqNr, epoch_length: int) -> EpochNr:
    """Epoch that sequence number ``sn`` belongs to."""
    if sn < 0:
        raise ValueError("sequence numbers are non-negative")
    return sn // epoch_length


def epoch_seq_nrs(epoch: EpochNr, epoch_length: int) -> range:
    """``Sn(e)``: the contiguous sequence numbers of ``epoch``."""
    start = epoch * epoch_length
    return range(start, start + epoch_length)


def epoch_first_sn(epoch: EpochNr, epoch_length: int) -> SeqNr:
    """First log sequence number belonging to ``epoch``."""
    return epoch * epoch_length


def epoch_last_sn(epoch: EpochNr, epoch_length: int) -> SeqNr:
    """Last log sequence number belonging to ``epoch`` (inclusive)."""
    return (epoch + 1) * epoch_length - 1


def segment_seq_nrs(
    epoch: EpochNr,
    leader_index: int,
    num_leaders: int,
    epoch_length: int,
    layout: str = LAYOUT_ROUND_ROBIN,
) -> Tuple[SeqNr, ...]:
    """``Seg(e, i)``: the sequence numbers of the ``leader_index``-th segment.

    ``round-robin`` (the paper's choice) assigns ``sn`` to segment
    ``sn mod num_leaders``; ``contiguous`` carves the epoch into consecutive
    blocks (used only by the ablation benchmark).
    """
    if not 0 <= leader_index < num_leaders:
        raise ValueError("leader_index out of range")
    sns = epoch_seq_nrs(epoch, epoch_length)
    if layout == LAYOUT_ROUND_ROBIN:
        return tuple(sn for sn in sns if sn % num_leaders == leader_index)
    if layout == LAYOUT_CONTIGUOUS:
        per_segment = epoch_length // num_leaders
        remainder = epoch_length % num_leaders
        # Earlier segments absorb the remainder one sequence number each so
        # the segment lengths differ by at most one, like round-robin.
        start_offset = leader_index * per_segment + min(leader_index, remainder)
        length = per_segment + (1 if leader_index < remainder else 0)
        start = sns.start + start_offset
        return tuple(range(start, start + length))
    raise ValueError(f"unknown layout {layout!r}")


def build_segments(
    epoch: EpochNr,
    leaders: Sequence[NodeId],
    num_nodes: int,
    epoch_length: int,
    num_buckets: int,
    layout: str = LAYOUT_ROUND_ROBIN,
    active_nodes: Optional[Sequence[NodeId]] = None,
) -> List[SegmentDescriptor]:
    """Create the segment descriptors of one epoch (Algorithm 3, initEpoch).

    ``leaders`` is the epoch's leaderset in the order produced by the leader
    selection policy; the ``l``-th leader owns the ``l``-th interleave of the
    epoch's sequence numbers and the buckets computed by
    :func:`repro.core.buckets.buckets_for_leader`.  ``active_nodes`` is the
    epoch's membership under dynamic reconfiguration (defaults to the
    genesis ``0..num_nodes-1``).
    """
    if not leaders:
        raise ValueError("an epoch needs at least one leader")
    if len(set(leaders)) != len(leaders):
        raise ValueError("leaders must be distinct")
    bucket_assignment: Dict[NodeId, List[BucketId]] = assignment_for_epoch(
        epoch, leaders, num_nodes, num_buckets, active_nodes=active_nodes
    )
    segments: List[SegmentDescriptor] = []
    for index, leader in enumerate(leaders):
        seq_nrs = segment_seq_nrs(epoch, index, len(leaders), epoch_length, layout)
        segments.append(
            SegmentDescriptor(
                epoch=epoch,
                leader=leader,
                seq_nrs=seq_nrs,
                buckets=tuple(bucket_assignment[leader]),
            )
        )
    return segments


def segment_of(sn: SeqNr, segments: Sequence[SegmentDescriptor]) -> SegmentDescriptor:
    """``segOf(sn)``: the segment containing ``sn`` among the given segments."""
    for segment in segments:
        if sn in segment.seq_nrs:
            return segment
    raise KeyError(f"sequence number {sn} not covered by any segment")


def validate_epoch_partition(
    segments: Sequence[SegmentDescriptor], epoch: EpochNr, epoch_length: int, num_buckets: int
) -> None:
    """Assert the two partition invariants ISS relies on.

    1. The segments' sequence numbers partition ``Sn(epoch)`` exactly.
    2. The segments' buckets partition the full bucket set exactly.

    Raises ``ValueError`` on violation; used by tests and by the manager in
    paranoid mode.
    """
    all_sns: List[SeqNr] = []
    all_buckets: List[BucketId] = []
    for segment in segments:
        all_sns.extend(segment.seq_nrs)
        all_buckets.extend(segment.buckets)
    expected_sns = list(epoch_seq_nrs(epoch, epoch_length))
    if sorted(all_sns) != expected_sns:
        raise ValueError("segments do not partition the epoch's sequence numbers")
    if sorted(all_buckets) != list(range(num_buckets)):
        raise ValueError("segments do not partition the bucket space")
