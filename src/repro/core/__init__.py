"""ISS core: Sequenced Broadcast multiplexing into a total order (the paper's contribution)."""

from .config import (
    ISSConfig,
    NetworkConfig,
    WorkloadConfig,
    ConfigError,
    paper_config,
    PROTOCOL_PBFT,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_RAFT,
    PROTOCOL_CONSENSUS,
    POLICY_SIMPLE,
    POLICY_BACKOFF,
    POLICY_BLACKLIST,
)
from .types import (
    Request,
    RequestId,
    Batch,
    NIL,
    is_nil,
    DeliveredRequest,
    SegmentDescriptor,
    CheckpointCertificate,
)
from .buckets import BucketPool, BucketQueue, bucket_of, buckets_for_leader, assignment_for_epoch
from .segment import (
    build_segments,
    epoch_seq_nrs,
    epoch_of,
    segment_seq_nrs,
    LAYOUT_ROUND_ROBIN,
    LAYOUT_CONTIGUOUS,
)
from .log import Log
from .leader_policy import (
    SimplePolicy,
    BackoffPolicy,
    BlacklistPolicy,
    FailureHistory,
    make_policy,
)
from .sb import SBContext, SBInstance
from .manager import EpochManager
from .orderer import Orderer, default_factory
from .iss import ISSNode
from .client import Client
from .validation import RequestValidator, ClientWatermarks, sign_request

__all__ = [
    "ISSConfig",
    "NetworkConfig",
    "WorkloadConfig",
    "ConfigError",
    "paper_config",
    "PROTOCOL_PBFT",
    "PROTOCOL_HOTSTUFF",
    "PROTOCOL_RAFT",
    "PROTOCOL_CONSENSUS",
    "POLICY_SIMPLE",
    "POLICY_BACKOFF",
    "POLICY_BLACKLIST",
    "Request",
    "RequestId",
    "Batch",
    "NIL",
    "is_nil",
    "DeliveredRequest",
    "SegmentDescriptor",
    "CheckpointCertificate",
    "BucketPool",
    "BucketQueue",
    "bucket_of",
    "buckets_for_leader",
    "assignment_for_epoch",
    "build_segments",
    "epoch_seq_nrs",
    "epoch_of",
    "segment_seq_nrs",
    "LAYOUT_ROUND_ROBIN",
    "LAYOUT_CONTIGUOUS",
    "Log",
    "SimplePolicy",
    "BackoffPolicy",
    "BlacklistPolicy",
    "FailureHistory",
    "make_policy",
    "SBContext",
    "SBInstance",
    "EpochManager",
    "Orderer",
    "default_factory",
    "ISSNode",
    "Client",
    "RequestValidator",
    "ClientWatermarks",
    "sign_request",
]
