"""Core data types shared across the ISS reproduction.

The paper (Section 2.1) models a client request as ``r = (o, id)`` where
``o`` is an opaque payload and ``id = (t, c)`` combines a per-client logical
timestamp ``t`` with the client identity ``c``.  Requests are grouped into
*batches*, which are the unit of agreement: each log position (sequence
number) holds exactly one batch (or the special ``NIL`` value when the
Sequenced Broadcast instance aborted that position).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

# Type aliases used throughout the codebase.  They are plain ints/strings so
# that messages stay cheap to hash and copy inside the simulator.
NodeId = int
ClientId = int
SeqNr = int
EpochNr = int
BucketId = int
ViewNr = int


@dataclass(frozen=True, order=True)
class RequestId:
    """Unique request identifier ``(t, c)``.

    ``timestamp`` is the client-local logical timestamp (monotonically
    increasing per client, bounded by the client watermark window) and
    ``client`` is the client identity (an integer standing in for the
    client's public key).

    Request ids key every hot collection in the system (bucket queues,
    delivered sets, validation caches), so the hash and the bucket-mixing
    value are computed once at construction instead of per lookup.
    """

    client: ClientId
    timestamp: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.client, self.timestamp)))
        # Mixing constant shared with repro.core.buckets.bucket_of: keeps
        # consecutive timestamps of one client out of consecutive buckets.
        object.__setattr__(
            self,
            "_mix",
            (self.client * 0x9E3779B1 + self.timestamp * 0x85EBCA77)
            & 0xFFFFFFFFFFFFFFFF,
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"req(c={self.client},t={self.timestamp})"


@dataclass(frozen=True)
class Request:
    """A client request ``r = (o, id)`` with its signature.

    ``payload`` carries the application operation; ISS never interprets it.
    ``signature`` is produced by :mod:`repro.crypto.signatures` over
    ``(id, payload)`` as described in Section 3.7 of the paper.
    """

    rid: RequestId
    payload: bytes = b""
    signature: bytes = b""

    @property
    def client(self) -> ClientId:
        return self.rid.client

    @property
    def timestamp(self) -> int:
        return self.rid.timestamp

    def size_bytes(self) -> int:
        """Approximate wire size of the request (payload + id + signature)."""
        return len(self.payload) + 16 + len(self.signature)

    def digest(self) -> bytes:
        """Stable digest of the request identity and payload (cached)."""
        cached = self.__dict__.get("_digest")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        h.update(self.rid.client.to_bytes(8, "little", signed=False))
        h.update(self.rid.timestamp.to_bytes(8, "little", signed=False))
        h.update(self.payload)
        digest = h.digest()
        object.__setattr__(self, "_digest", digest)
        return digest

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.rid, self.payload))
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass(frozen=True)
class Batch:
    """An ordered batch of requests proposed for a single sequence number."""

    requests: Tuple[Request, ...] = ()

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __bool__(self) -> bool:
        # An *empty* batch is still a real batch (it occupies a log slot);
        # truthiness always holds so that ``if batch`` distinguishes batches
        # from ``None``/NIL rather than from emptiness.
        return True

    @staticmethod
    def of(requests: Iterable[Request]) -> "Batch":
        return Batch(tuple(requests))

    def size_bytes(self) -> int:
        """Approximate wire size: request bytes plus a small batch header."""
        cached = self.__dict__.get("_size")
        if cached is not None:
            return cached
        size = 32 + sum(r.size_bytes() for r in self.requests)
        object.__setattr__(self, "_size", size)
        return size

    def digest(self) -> bytes:
        """Stable digest over the contained request digests (cached)."""
        cached = self.__dict__.get("_digest")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        h.update(len(self.requests).to_bytes(4, "little"))
        for r in self.requests:
            h.update(r.digest())
        digest = h.digest()
        object.__setattr__(self, "_digest", digest)
        return digest


class Nil:
    """The special ``⊥`` value Sequenced Broadcast may deliver.

    A singleton: use :data:`NIL` and compare with ``is``.  ``⊥`` fills a log
    position whose designated sender was suspected before proposing, letting
    the epoch terminate (SB Termination) without a real batch.
    """

    _instance: Optional["Nil"] = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NIL"

    def __bool__(self) -> bool:
        return False

    def size_bytes(self) -> int:
        return 1

    def digest(self) -> bytes:
        return hashlib.sha256(b"NIL").digest()


#: Singleton ``⊥`` value delivered by SB when the sender is suspected.
NIL = Nil()

#: A log entry is either a committed batch or the ``⊥`` placeholder.
LogEntry = object  # Batch | Nil -- kept loose for typing simplicity.


def is_nil(entry: object) -> bool:
    """Return True when ``entry`` is the ``⊥`` placeholder."""
    return entry is NIL


@dataclass(frozen=True, slots=True)
class DeliveredRequest:
    """A request delivered by the SMR service with its final order.

    ``sn`` is the per-request sequence number computed by Equation (2) in the
    paper: the global rank of the request across all delivered batches.
    ``batch_sn`` is the log position of the batch the request arrived in.

    One instance is created per request per node per run; ``slots`` keeps
    construction and attribute access cheap while staying frozen/hashable.
    """

    request: Request
    sn: int
    batch_sn: SeqNr
    epoch: EpochNr
    delivered_at: float


@dataclass(frozen=True)
class SegmentDescriptor:
    """Static description of one segment: the unit handed to an SB instance.

    A segment of epoch ``e`` with leader ``i`` is the tuple
    ``(e, i, Seg(e, i), Buckets(e, i))`` from Section 2.3.
    """

    epoch: EpochNr
    leader: NodeId
    seq_nrs: Tuple[SeqNr, ...]
    buckets: Tuple[BucketId, ...]

    @property
    def instance_id(self) -> Tuple[EpochNr, NodeId]:
        """Unique identifier of the SB instance serving this segment."""
        return (self.epoch, self.leader)

    def bucket_set(self) -> frozenset:
        """The segment's buckets as a frozenset (cached; used by the
        per-request membership check in batch validation)."""
        cached = self.__dict__.get("_bucket_set")
        if cached is None:
            cached = frozenset(self.buckets)
            object.__setattr__(self, "_bucket_set", cached)
        return cached

    def __contains__(self, sn: SeqNr) -> bool:
        return sn in self.seq_nrs

    def __len__(self) -> int:
        return len(self.seq_nrs)


@dataclass
class CheckpointCertificate:
    """A stable checkpoint: 2f+1 matching signed CHECKPOINT messages."""

    epoch: EpochNr
    last_sn: SeqNr
    log_root: bytes
    signatures: Tuple[Tuple[NodeId, bytes], ...] = field(default_factory=tuple)

    def signers(self) -> Sequence[NodeId]:
        return [node for node, _sig in self.signatures]
