"""ISS checkpointing (Section 3.5).

At the end of every epoch — once the log holds an entry for each of the
epoch's sequence numbers — every node broadcasts a signed CHECKPOINT message
carrying the epoch's last sequence number and the Merkle root of the epoch's
entry digests.  A quorum of ``2f+1`` matching, correctly signed CHECKPOINT
messages forms a *stable checkpoint*, after which the epoch's SB instances
can be garbage collected and slow nodes can state-transfer the epoch instead
of replaying it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.hashing import hash_int, sha256
from ..crypto.merkle import merkle_root
from ..crypto.signatures import SIGNATURE_SIZE, KeyStore
from ..runtime.wire import register_batchable
from .config import ISSConfig
from .log import Log
from .segment import epoch_last_sn, epoch_seq_nrs
from .types import CheckpointCertificate, EpochNr, NodeId, SeqNr


@register_batchable
@dataclass(frozen=True)
class CheckpointMsg:
    """Signed ⟨CHECKPOINT, max(Sn(e)), D(e), σ_i⟩ message.

    Batchable: checkpoint votes are digest-sized and latency-tolerant, so
    they may share a wire frame with other votes on the same link.
    """

    epoch: EpochNr
    last_sn: SeqNr
    log_root: bytes
    sender: NodeId
    signature: bytes

    def wire_size(self) -> int:
        return 8 + 8 + len(self.log_root) + 8 + len(self.signature)


def checkpoint_signing_payload(epoch: EpochNr, last_sn: SeqNr, log_root: bytes) -> bytes:
    """Canonical byte string a node signs inside its CHECKPOINT message."""
    return b"checkpoint" + hash_int(epoch) + hash_int(last_sn) + log_root


def epoch_log_root(log: Log, epoch: EpochNr, epoch_length: int) -> bytes:
    """``D(e)``: Merkle root of the digests of the epoch's log entries."""
    digests = log.digests_in(epoch_seq_nrs(epoch, epoch_length))
    return merkle_root(digests)


class CheckpointProtocol:
    """Per-node state of the checkpointing sub-protocol.

    The host ISS node calls :meth:`local_epoch_complete` when its own log
    covers an epoch and :meth:`handle_message` for incoming CHECKPOINT
    messages; :attr:`on_stable` fires exactly once per epoch when the
    ``2f+1`` quorum is reached locally.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ISSConfig,
        key_store: KeyStore,
        broadcast_fn: Callable[[object], None],
        on_stable: Callable[[EpochNr, CheckpointCertificate], None],
        view_fn: Optional[Callable[[EpochNr], object]] = None,
        view_sealed_fn: Optional[Callable[[EpochNr], bool]] = None,
    ):
        self.node_id = node_id
        self.config = config
        self.key_store = key_store
        self._broadcast = broadcast_fn
        self.on_stable = on_stable
        #: Dynamic-membership hooks: ``view_fn`` maps an epoch to its
        #: MembershipView so the quorum size and the admissible signer set
        #: follow the committed configuration; ``view_sealed_fn`` reports
        #: whether that view is authoritative yet (a catching-up node only
        #: estimates views beyond its seal frontier, so the signer-subset
        #: check is deferred there — quorum-many valid distinct signatures
        #: are still required).  None = static genesis configuration.
        self._view_fn = view_fn
        self._view_sealed = view_sealed_fn
        #: Received signatures per (epoch, last_sn, root): sender -> signature.
        self._received: Dict[Tuple[EpochNr, SeqNr, bytes], Dict[NodeId, bytes]] = {}
        self._stable: Dict[EpochNr, CheckpointCertificate] = {}
        self._announced_local: set = set()
        #: CHECKPOINT messages rejected for a bad or mis-attributed signature
        #: (a Byzantine voter forging votes lands here; see RunReport).
        self.invalid_signatures_rejected = 0

    # ----------------------------------------------------------- local side
    def local_epoch_complete(self, epoch: EpochNr, log: Log) -> None:
        """Broadcast our CHECKPOINT message for a locally complete epoch."""
        if epoch in self._announced_local:
            return
        self._announced_local.add(epoch)
        last_sn = epoch_last_sn(epoch, self.config.epoch_length)
        root = epoch_log_root(log, epoch, self.config.epoch_length)
        payload = checkpoint_signing_payload(epoch, last_sn, root)
        signature = self.key_store.sign(self.node_id, payload)
        message = CheckpointMsg(
            epoch=epoch, last_sn=last_sn, log_root=root, sender=self.node_id,
            signature=signature,
        )
        self._broadcast(message)
        # Count our own message towards the quorum immediately.
        self._record(message)

    # --------------------------------------------------------- message side
    def handle_message(self, src: NodeId, message: CheckpointMsg) -> None:
        if not isinstance(message, CheckpointMsg):
            return
        if message.sender != src:
            self.invalid_signatures_rejected += 1
            return
        payload = checkpoint_signing_payload(message.epoch, message.last_sn, message.log_root)
        if not self.key_store.verify(message.sender, payload, message.signature):
            self.invalid_signatures_rejected += 1
            return
        self._record(message)

    def _quorum_for(self, epoch: EpochNr) -> int:
        if self._view_fn is None:
            return self.config.strong_quorum
        return self._view_fn(epoch).strong_quorum

    def _members_for(self, epoch: EpochNr):
        """Admissible signer set of ``epoch``, or None when unknown/static.

        Only sealed epochs have an authoritative view; for epochs beyond
        the local seal frontier (a node still catching up) no signer-subset
        restriction applies.
        """
        if self._view_fn is None:
            return None
        if self._view_sealed is not None and not self._view_sealed(epoch):
            return None
        return self._view_fn(epoch).nodes

    def _record(self, message: CheckpointMsg) -> None:
        if message.epoch in self._stable:
            return
        members = self._members_for(message.epoch)
        if members is not None and message.sender not in members:
            # Votes from replicas outside the epoch's membership (e.g. a
            # removed node's stale broadcast) never count towards stability.
            return
        key = (message.epoch, message.last_sn, message.log_root)
        signatures = self._received.setdefault(key, {})
        signatures[message.sender] = message.signature
        if len(signatures) >= self._quorum_for(message.epoch):
            certificate = CheckpointCertificate(
                epoch=message.epoch,
                last_sn=message.last_sn,
                log_root=message.log_root,
                signatures=tuple(sorted(signatures.items())),
            )
            self._stable[message.epoch] = certificate
            self.on_stable(message.epoch, certificate)

    # ----------------------------------------------------------- restoration
    def restore_stable(self, certificate: CheckpointCertificate) -> bool:
        """Install an externally obtained stable certificate.

        Used by state transfer (a verified response carries the epoch's
        certificate) and by crash recovery (certificates replayed from the
        write-ahead log).  Fires :attr:`on_stable` exactly as a locally
        reached quorum would, so the epoch's SB instances are garbage
        collected; returns False when the epoch was already stable.

        The epoch is also marked announced: it is provably stable at 2f+1
        peers already, so broadcasting our own CHECKPOINT vote for it when
        the local log later completes would only add stale wire noise.
        """
        epoch = certificate.epoch
        if epoch in self._stable:
            return False
        self._stable[epoch] = certificate
        self._announced_local.add(epoch)
        self.on_stable(epoch, certificate)
        return True

    def mark_announced(self, epoch: EpochNr) -> None:
        """Suppress the local CHECKPOINT broadcast for ``epoch``.

        Crash recovery marks every epoch the pre-crash incarnation already
        announced, so the restarted node does not replay stale votes.
        """
        self._announced_local.add(epoch)

    # -------------------------------------------------------------- queries
    def stable_checkpoint(self, epoch: EpochNr) -> Optional[CheckpointCertificate]:
        return self._stable.get(epoch)

    def latest_stable_epoch(self) -> Optional[EpochNr]:
        return max(self._stable) if self._stable else None

    def verify_certificate(self, certificate: CheckpointCertificate) -> bool:
        """Check a certificate received from a peer (used by state transfer).

        Under dynamic membership the quorum size and the admissible signer
        set are those of the certificate's epoch as far as this node has
        sealed it; for epochs beyond the local seal frontier the latest
        sealed view applies (a catching-up node tightens retroactively as
        it seals — certificates are re-served on demand, never cached
        unverified).
        """
        if len(certificate.signatures) < self._quorum_for(certificate.epoch):
            return False
        members = self._members_for(certificate.epoch)
        payload = checkpoint_signing_payload(
            certificate.epoch, certificate.last_sn, certificate.log_root
        )
        seen: set = set()
        for node, signature in certificate.signatures:
            if node in seen:
                return False
            if members is not None and node not in members:
                return False
            if not self.key_store.verify(node, payload, signature):
                return False
            seen.add(node)
        return True
