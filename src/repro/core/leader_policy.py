"""Leader-selection policies (Section 3.4, Algorithm 4).

A policy deterministically maps an epoch number plus the publicly known
history of the log (which segment leaders produced ``⊥`` entries) to the
epoch's leaderset.  Because every correct node reaches the same log for
every finished epoch (SMR Agreement + SB Termination), all correct nodes
compute identical leadersets without any extra communication — this is the
property that lets ISS drop Mir-BFT's epoch primary.

Three policies from the paper are implemented:

* ``SIMPLE``    — all nodes lead every epoch.
* ``BACKOFF``   — suspected nodes are banned for an exponentially growing,
                  linearly decaying number of epochs.
* ``BLACKLIST`` — the ``f`` most recently failed nodes are excluded
                  (the paper's default).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .config import ISSConfig, POLICY_BACKOFF, POLICY_BLACKLIST, POLICY_SIMPLE
from .log import Log
from .segment import epoch_seq_nrs
from .types import EpochNr, NodeId, SegmentDescriptor, SeqNr, is_nil


class FailureHistory:
    """Record of which segment leaders failed to fill which log positions.

    ISS extracts leader-failure information from the log itself: a ``⊥``
    entry at a position belonging to leader ``n``'s segment means ``n`` was
    suspected while leading that position (Algorithm 4, ``lastFailure``).
    The history is updated once per finished epoch from the epoch's segments
    and the node's log, and is identical at all correct nodes.
    """

    def __init__(self) -> None:
        #: Highest ``⊥`` position attributed to each node, -1 if none.
        self._last_failure: Dict[NodeId, SeqNr] = {}
        #: Epoch in which each node last produced a ``⊥`` entry, -1 if none.
        self._last_failure_epoch: Dict[NodeId, EpochNr] = {}

    def record_epoch(
        self, epoch: EpochNr, segments: Sequence[SegmentDescriptor], log: Log
    ) -> None:
        """Fold one finished epoch into the history."""
        for segment in segments:
            for sn in segment.seq_nrs:
                entry = log.entry(sn)
                if entry is not None and is_nil(entry):
                    previous = self._last_failure.get(segment.leader, -1)
                    if sn > previous:
                        self._last_failure[segment.leader] = sn
                        self._last_failure_epoch[segment.leader] = epoch

    def last_failure(self, node: NodeId) -> SeqNr:
        """Highest sequence number ``node`` failed to deliver, -1 if none."""
        return self._last_failure.get(node, -1)

    def failed_in_epoch(self, node: NodeId, epoch: EpochNr) -> bool:
        """``suspect(n, e)``: did ``node`` produce a ``⊥`` entry in ``epoch``?"""
        return self._last_failure_epoch.get(node, -1) == epoch

    def snapshot(self) -> Dict[NodeId, SeqNr]:
        return dict(self._last_failure)


class LeaderSelectionPolicy(ABC):
    """Deterministic leaderset selection for each epoch."""

    def __init__(self, num_nodes: int, max_faulty: int):
        self.num_nodes = num_nodes
        self.max_faulty = max_faulty
        self.all_nodes: List[NodeId] = list(range(num_nodes))

    def set_membership(self, nodes: Sequence[NodeId], max_faulty: int) -> None:
        """Adopt a new membership view (dynamic reconfiguration).

        Called by the epoch manager before computing an epoch's leaderset
        when the active replica set differs from genesis.  Deterministic at
        every node because the view itself is derived from the committed
        log.  Stateful policies override to initialise per-node state for
        joining replicas.
        """
        self.all_nodes = sorted(nodes)
        self.num_nodes = len(self.all_nodes)
        self.max_faulty = max_faulty

    @abstractmethod
    def leaders(self, epoch: EpochNr, history: FailureHistory) -> List[NodeId]:
        """Leaderset for ``epoch`` given the failure history up to ``epoch``."""

    def epoch_finished(self, epoch: EpochNr, history: FailureHistory) -> None:
        """Hook called once per finished epoch; stateful policies override."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short policy name used in reports."""


class SimplePolicy(LeaderSelectionPolicy):
    """All nodes lead every epoch (maximum resource usage, worst fault latency)."""

    @property
    def name(self) -> str:
        return POLICY_SIMPLE

    def leaders(self, epoch: EpochNr, history: FailureHistory) -> List[NodeId]:
        return sorted(self.all_nodes)


class BlacklistPolicy(LeaderSelectionPolicy):
    """Exclude the up-to-``f`` most recently failed nodes (the default).

    Nodes that never failed are never excluded, so the leaderset always
    contains at least ``2f+1`` nodes and therefore at least ``f+1`` correct
    ones.
    """

    @property
    def name(self) -> str:
        return POLICY_BLACKLIST

    def leaders(self, epoch: EpochNr, history: FailureHistory) -> List[NodeId]:
        failures = {node: history.last_failure(node) for node in self.all_nodes}
        offenders = sorted(
            (node for node, sn in failures.items() if sn >= 0),
            key=lambda node: failures[node],
            reverse=True,
        )
        blacklist = set(offenders[: self.max_faulty])
        return sorted(node for node in self.all_nodes if node not in blacklist)


class BackoffPolicy(LeaderSelectionPolicy):
    """Ban suspected nodes for an exponentially growing number of epochs.

    The ban doubles on every new suspicion and decreases linearly (by ``c``
    epochs per well-behaved epoch) once the node is re-included.  If every
    node is banned simultaneously the policy falls back to the full node set
    for that epoch — the paper "skips" such epochs, which in a simulation
    without external time would spin; using all nodes preserves liveness and
    is documented here as a deliberate deviation.
    """

    def __init__(
        self,
        num_nodes: int,
        max_faulty: int,
        ban_period: int = 4,
        decrease: int = 1,
    ):
        super().__init__(num_nodes, max_faulty)
        self.ban_period = ban_period
        self.decrease = decrease
        self._penalty: Dict[NodeId, int] = {node: 0 for node in self.all_nodes}

    @property
    def name(self) -> str:
        return POLICY_BACKOFF

    def set_membership(self, nodes: Sequence[NodeId], max_faulty: int) -> None:
        super().set_membership(nodes, max_faulty)
        # Joining replicas start unpenalised; leavers keep their counter in
        # case they are re-added later (the ban history is log-derived and
        # thus identical at every node either way).
        for node in self.all_nodes:
            self._penalty.setdefault(node, 0)

    def leaders(self, epoch: EpochNr, history: FailureHistory) -> List[NodeId]:
        allowed = sorted(node for node in self.all_nodes if self._penalty[node] <= 0)
        if not allowed:
            return sorted(self.all_nodes)
        return allowed

    def epoch_finished(self, epoch: EpochNr, history: FailureHistory) -> None:
        for node in self.all_nodes:
            if history.failed_in_epoch(node, epoch):
                if self._penalty[node] > 0:
                    self._penalty[node] = self._penalty[node] * 2 - 1
                else:
                    self._penalty[node] = self.ban_period
            elif self._penalty[node] > 0:
                self._penalty[node] = max(0, self._penalty[node] - self.decrease)

    def penalty_of(self, node: NodeId) -> int:
        """Current ban counter of a node (test/inspection helper)."""
        return self._penalty[node]


def make_policy(config: ISSConfig) -> LeaderSelectionPolicy:
    """Instantiate the policy named in ``config.leader_policy``."""
    if config.leader_policy == POLICY_SIMPLE:
        return SimplePolicy(config.num_nodes, config.max_faulty)
    if config.leader_policy == POLICY_BLACKLIST:
        return BlacklistPolicy(config.num_nodes, config.max_faulty)
    if config.leader_policy == POLICY_BACKOFF:
        return BackoffPolicy(
            config.num_nodes,
            config.max_faulty,
            ban_period=config.backoff_ban_period,
            decrease=config.backoff_decrease,
        )
    raise ValueError(f"unknown leader policy {config.leader_policy!r}")
