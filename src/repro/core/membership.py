"""Dynamic membership: configuration transactions ordered in the log.

ISS already recomputes leader sets, segments, and bucket assignments
deterministically at every epoch boundary, which makes the boundary the
natural reconfiguration point.  A membership change is submitted as an
ordinary client request whose payload carries a *configuration
transaction* (``ConfigTx``): add or remove one replica.  The request is
validated, bucketed, ordered, and committed exactly like any other
request; once the epoch that contains it completes, every node folds the
epoch's committed ConfigTxs — in sequence-number order — into the
membership view of the *next* epoch.  Because the fold is a pure
function of the committed log prefix, every correct node (including
nodes that reconstruct their log via WAL replay or state transfer)
derives the same view for every epoch without any extra agreement round.

The bucket space stays fixed at its genesis size; membership changes
only alter which leaders own which buckets, so request-to-bucket hashing
(Section 3.7) never needs re-keying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .types import EpochNr, NodeId, is_nil

#: Magic prefix marking a request payload as a configuration transaction.
#: Ordinary client payloads are opaque application bytes; the prefix keeps
#: the committed-entry scan cheap (a startswith per request).
CONFIG_TX_MAGIC = b"\x00ISSCFG1\x00"

ACTION_ADD = "add"
ACTION_REMOVE = "remove"

_ACTION_CODES = {ACTION_ADD: b"A", ACTION_REMOVE: b"R"}
_CODE_ACTIONS = {code: action for action, code in _ACTION_CODES.items()}


@dataclass(frozen=True)
class ConfigTx:
    """One membership change: add or remove a single replica."""

    action: str
    node: NodeId

    def __post_init__(self) -> None:
        if self.action not in _ACTION_CODES:
            raise ValueError(f"unknown config-tx action {self.action!r}")
        if self.node < 0:
            raise ValueError("config-tx node ids are non-negative")


def encode_config_tx(tx: ConfigTx) -> bytes:
    """Serialise a ConfigTx into a request payload."""
    return CONFIG_TX_MAGIC + _ACTION_CODES[tx.action] + tx.node.to_bytes(8, "little")


def decode_config_tx(payload: bytes) -> Optional[ConfigTx]:
    """Decode a request payload into a ConfigTx, or None if it is not one.

    Malformed payloads that carry the magic prefix decode to None rather
    than raising: a malicious client could submit garbage behind the magic
    and must not be able to crash the commit path.
    """
    if not payload.startswith(CONFIG_TX_MAGIC):
        return None
    body = payload[len(CONFIG_TX_MAGIC):]
    if len(body) != 9:
        return None
    action = _CODE_ACTIONS.get(body[:1])
    if action is None:
        return None
    return ConfigTx(action=action, node=int.from_bytes(body[1:], "little"))


@dataclass(frozen=True)
class MembershipView:
    """The replica set of one epoch plus the derived quorum sizes.

    ``f`` mirrors the arithmetic of :class:`repro.core.config.ISSConfig`
    (``(n - 1) // 3`` Byzantine, ``(n - 1) // 2`` crash); the strong
    quorum uses the generalised intersecting form — see
    :attr:`strong_quorum` — because dynamic views are not limited to the
    ``n = 3f + 1`` shape of the static configuration.
    """

    nodes: Tuple[NodeId, ...]
    byzantine: bool = True

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a membership view needs at least one node")
        if tuple(sorted(set(self.nodes))) != self.nodes:
            raise ValueError("membership nodes must be sorted and distinct")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def max_faulty(self) -> int:
        n = len(self.nodes)
        return (n - 1) // 3 if self.byzantine else (n - 1) // 2

    @property
    def strong_quorum(self) -> int:
        """Generalised intersecting quorum, not the genesis ``2f+1``.

        Dynamic views can have any size, so the quorum must guarantee
        intersection for any n ≥ 3f+1: ⌈(n+f+1)/2⌉ in the Byzantine
        model (which coincides with 2f+1 exactly when n = 3f+1, the only
        shape the static configuration ever has) and a strict majority in
        the crash model.  With the naive formulas a shrunken view — n=3,
        f=0, "quorum" of 1 — lets a view change revoke a committed batch:
        two disjoint single-node quorums certify different entries for
        the same sequence number and state transfer propagates the fork.
        """
        n = len(self.nodes)
        if self.byzantine:
            return (n + self.max_faulty + 2) // 2
        return n // 2 + 1

    @property
    def weak_quorum(self) -> int:
        return self.max_faulty + 1

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    def apply(self, txs: Sequence[ConfigTx]) -> "MembershipView":
        """Fold ConfigTxs into a new view.

        Adding a present node or removing an absent one is a no-op, which
        gives exactly-once activation by construction: a duplicate ConfigTx
        (e.g. a retried submission committed twice) changes nothing.  A
        removal that would empty the view is ignored — the system never
        reconfigures itself out of existence.
        """
        members = set(self.nodes)
        for tx in txs:
            if tx.action == ACTION_ADD:
                members.add(tx.node)
            elif tx.action == ACTION_REMOVE and len(members) > 1:
                members.discard(tx.node)
        nodes = tuple(sorted(members))
        if nodes == self.nodes:
            return self
        return MembershipView(nodes=nodes, byzantine=self.byzantine)


def genesis_view(config) -> MembershipView:
    """The genesis membership: nodes ``0 .. num_nodes-1`` of the config."""
    return MembershipView(
        nodes=tuple(range(config.num_nodes)), byzantine=config.byzantine
    )


class MembershipTracker:
    """Derives the membership view of every epoch from the committed log.

    ``view(0)`` is the genesis configuration; ``view(e + 1)`` is ``view(e)``
    with the ConfigTxs committed in epoch ``e``'s sequence numbers folded in,
    in sequence-number order (ties within a batch resolve in batch order).
    Epochs *seal* strictly in order as they complete — the same order in
    which the epoch manager finishes them — so the fold is incremental and
    each view is computed exactly once.  Because sealing only reads the log,
    a node that rebuilds its log through WAL replay or state transfer
    reconstructs identical views for free.
    """

    def __init__(self, config, log) -> None:
        self.config = config
        self.log = log
        self._views: Dict[EpochNr, MembershipView] = {0: genesis_view(config)}
        self._sealed_through: EpochNr = -1
        #: (epoch, added, removed) per activation that changed the view.
        self.activations: List[Tuple[EpochNr, Tuple[NodeId, ...], Tuple[NodeId, ...]]] = []
        #: ConfigTxs committed so far, in seal order (for metrics/tests).
        self.committed_txs: List[Tuple[EpochNr, ConfigTx]] = []

    def view_for(self, epoch: EpochNr) -> MembershipView:
        """The membership view governing ``epoch``.

        Views only change at seal points; for an epoch beyond the sealed
        frontier the latest sealed view applies (epochs complete strictly
        sequentially, so by the time an epoch actually starts its
        predecessor has sealed).
        """
        view = self._views.get(epoch)
        if view is not None:
            return view
        bound = min(epoch, self._sealed_through + 1)
        while bound >= 0:
            view = self._views.get(bound)
            if view is not None:
                return view
            bound -= 1
        return self._views[0]

    def seal_epoch(self, epoch: EpochNr) -> Tuple[Tuple[NodeId, ...], Tuple[NodeId, ...]]:
        """Fold epoch ``epoch``'s committed ConfigTxs into ``view(epoch+1)``.

        Idempotent; returns the (added, removed) node tuples of this
        activation (both empty when the view did not change).  Requires the
        epoch's log positions to be committed, which holds at every call
        site (the epoch manager only finishes complete epochs).
        """
        if epoch <= self._sealed_through:
            return ((), ())
        if epoch != self._sealed_through + 1 and self._sealed_through >= 0:
            # Seal any skipped predecessors first (defensive; epochs finish
            # sequentially in practice).
            for missing in range(self._sealed_through + 1, epoch):
                self.seal_epoch(missing)
        current = self.view_for(epoch)
        txs = self._txs_in_epoch(epoch)
        new_view = current.apply(txs)
        self._sealed_through = epoch
        if new_view is not current:
            self._views[epoch + 1] = new_view
            old = set(current.nodes)
            new = set(new_view.nodes)
            added = tuple(sorted(new - old))
            removed = tuple(sorted(old - new))
            self.activations.append((epoch + 1, added, removed))
            return (added, removed)
        return ((), ())

    def _txs_in_epoch(self, epoch: EpochNr) -> List[ConfigTx]:
        first = epoch * self.config.epoch_length
        txs: List[ConfigTx] = []
        for sn in range(first, first + self.config.epoch_length):
            entry = self.log.entry(sn)
            if entry is None or is_nil(entry):
                continue
            for request in entry.requests:
                tx = decode_config_tx(request.payload)
                if tx is not None:
                    txs.append(tx)
                    self.committed_txs.append((epoch, tx))
        return txs

    @property
    def sealed_through(self) -> EpochNr:
        return self._sealed_through

    def current_view(self) -> MembershipView:
        return self.view_for(self._sealed_through + 1)
