"""The Orderer module (Section 4.1).

The Manager announces segments; the Orderer instantiates, for each segment,
an implementation of the Sequenced Broadcast protocol parametrised by that
segment and routes incoming protocol messages to the right instance.  The
``Segment(s)`` / ``Announce(b, sn)`` interface from the paper maps to
:meth:`Orderer.open_segment` and the ``deliver_fn`` of the instance's
:class:`~repro.core.sb.SBContext`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .config import (
    ISSConfig,
    PROTOCOL_CONSENSUS,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_PBFT,
    PROTOCOL_RAFT,
)
from .sb import InstanceId, SBContext, SBInstance
from .types import EpochNr, NodeId, SegmentDescriptor

#: Factory signature: build an SB instance from its context.
SBFactory = Callable[[SBContext], SBInstance]


def default_factory(config: ISSConfig, **extras) -> SBFactory:
    """Return the SB-implementation factory for the configured protocol.

    ``extras`` are protocol-specific keyword arguments; currently only the
    consensus-based reference implementation accepts ``failure_detector``.
    """
    protocol = config.protocol
    if protocol == PROTOCOL_PBFT:
        from ..pbft.pbft import PbftSB

        return lambda context: PbftSB(context)
    if protocol == PROTOCOL_HOTSTUFF:
        from ..hotstuff.hotstuff import HotStuffSB

        return lambda context: HotStuffSB(context)
    if protocol == PROTOCOL_RAFT:
        from ..raft.raft import RaftSB

        return lambda context: RaftSB(context)
    if protocol == PROTOCOL_CONSENSUS:
        from ..consensus.sb_consensus import ConsensusSB

        failure_detector = extras.get("failure_detector")
        return lambda context: ConsensusSB(context, failure_detector=failure_detector)
    raise ValueError(f"unknown protocol {protocol!r}")


class Orderer:
    """Owns the active SB instances of one node."""

    def __init__(self, factory: SBFactory):
        self._factory = factory
        self._instances: Dict[InstanceId, SBInstance] = {}
        #: Instances grouped by epoch, for garbage collection.
        self._by_epoch: Dict[EpochNr, List[InstanceId]] = {}
        self.instances_created = 0
        self.instances_stopped = 0

    # -------------------------------------------------------------- segments
    def open_segment(self, context: SBContext) -> SBInstance:
        """``Segment(s)``: create and start the SB instance for a segment."""
        instance = self._factory(context)
        instance_id = context.segment.instance_id
        self._instances[instance_id] = instance
        self._by_epoch.setdefault(context.segment.epoch, []).append(instance_id)
        self.instances_created += 1
        instance.start()
        return instance

    # -------------------------------------------------------------- routing
    def handle_message(self, instance_id: InstanceId, src: NodeId, payload: object) -> bool:
        """Route a protocol message; returns False when the instance is unknown."""
        instance = self._instances.get(instance_id)
        if instance is None:
            return False
        instance.handle_message(src, payload)
        return True

    def instance(self, instance_id: InstanceId) -> Optional[SBInstance]:
        return self._instances.get(instance_id)

    def has_instance(self, instance_id: InstanceId) -> bool:
        return instance_id in self._instances

    def active_instances(self) -> Iterable[SBInstance]:
        return self._instances.values()

    # ----------------------------------------------------- garbage collection
    def stop_epoch(self, epoch: EpochNr) -> None:
        """Stop and drop every instance of ``epoch`` (after a stable checkpoint)."""
        for instance_id in self._by_epoch.pop(epoch, []):
            instance = self._instances.pop(instance_id, None)
            if instance is not None:
                instance.stop()
                self.instances_stopped += 1

    def stop_all(self) -> None:
        for instance in self._instances.values():
            instance.stop()
        self.instances_stopped += len(self._instances)
        self._instances.clear()
        self._by_epoch.clear()
