"""Configuration objects for ISS deployments.

The defaults follow Table 1 of the paper ("ISS configuration parameters used
in evaluation").  Durations are expressed in (virtual) seconds since the
whole system runs on the discrete-event simulator in :mod:`repro.sim`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional


#: Protocols supported as Sequenced Broadcast implementations.
PROTOCOL_PBFT = "pbft"
PROTOCOL_HOTSTUFF = "hotstuff"
PROTOCOL_RAFT = "raft"
PROTOCOL_CONSENSUS = "consensus"  # reference SB-from-consensus (Algorithm 5)

SUPPORTED_PROTOCOLS = (
    PROTOCOL_PBFT,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_RAFT,
    PROTOCOL_CONSENSUS,
)

#: Leader-selection policies (Algorithm 4).
POLICY_SIMPLE = "simple"
POLICY_BACKOFF = "backoff"
POLICY_BLACKLIST = "blacklist"

SUPPORTED_POLICIES = (POLICY_SIMPLE, POLICY_BACKOFF, POLICY_BLACKLIST)


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass
class ISSConfig:
    """Parameters of a single ISS deployment.

    Attributes mirror the parameter block of Algorithm 1 plus the
    evaluation parameters from Table 1.
    """

    # --- membership -----------------------------------------------------
    num_nodes: int = 4
    #: The ordering protocol used to implement Sequenced Broadcast.
    protocol: str = PROTOCOL_PBFT
    #: ``True`` for BFT protocols (n >= 3f+1), ``False`` for CFT (n >= 2f+1).
    byzantine: bool = True

    # --- log partitioning ------------------------------------------------
    #: Sequence numbers per epoch ("Min epoch length" in Table 1; scaled
    #: down by default so simulations stay short).
    epoch_length: int = 32
    #: Minimum sequence numbers per segment.  Segments shorter than this
    #: force a smaller leaderset (Table 1: 2 for PBFT, 16 for HotStuff/Raft).
    min_segment_size: int = 1
    #: Buckets per leader (Table 1: 16).
    buckets_per_leader: int = 16

    # --- batching --------------------------------------------------------
    max_batch_size: int = 2048
    #: Batches per second per deployment (Table 1: 32 b/s for PBFT/Raft).
    #: ``None`` disables rate limiting (HotStuff).
    batch_rate: Optional[float] = 32.0
    min_batch_timeout: float = 0.0
    max_batch_timeout: float = 4.0

    # --- timeouts --------------------------------------------------------
    epoch_change_timeout: float = 10.0
    #: PBFT/HotStuff view-change (pacemaker) timeout for a single instance.
    view_change_timeout: float = 10.0
    #: Deterministic, seeded jitter on every view-change/round timer arming,
    #: as a fraction of the timeout: each armed timer fires after
    #: ``timeout * (1 + U[0, jitter))``.  Desynchronises simultaneous
    #: timeouts across nodes so a partition does not produce synchronized
    #: view-change storms.  ``0`` (the default) draws nothing and keeps
    #: every existing schedule bit-identical.
    view_change_jitter: float = 0.0
    #: Grace period (seconds) after which a node holding a *stable*
    #: checkpoint for its own current epoch with an incomplete local log
    #: requests state transfer.  Persistent message loss can leave a node
    #: with log holes it can never fill via SB (the epoch's instances are
    #: garbage collected at the peers once the checkpoint is stable); view
    #: changes cannot help either because the peers' instances are gone.
    #: ``0`` (the default) disables the check and schedules nothing —
    #: clean-path schedules stay bit-identical.
    stalled_catchup_grace: float = 0.0
    #: View-change recovery hardening (textbook-PBFT behaviours this
    #: simulation can skip while channels are reliable): include committed
    #: slots' prepared proofs in VIEW-CHANGE messages, re-announce decided
    #: values in NEW-VIEW, re-affirm commits so laggards can assemble a
    #: commit quorum, and reset the view/round-timeout backoff on progress.
    #: Required for reconvergence from partitions that leave *no* side with
    #: a quorum (nothing checkpoints, so state transfer has nothing to
    #: serve).  Off by default purely to keep pre-chaos golden schedules
    #: bit-identical; semantics without it are still safe, just slower to
    #: recover.
    vc_recovery: bool = False
    #: Raft election timeout range (min, max).
    election_timeout: tuple = (10.0, 20.0)

    # --- leader selection -------------------------------------------------
    leader_policy: str = POLICY_BLACKLIST
    #: BACKOFF policy: initial ban period (in epochs) and linear decrease.
    backoff_ban_period: int = 4
    backoff_decrease: int = 1

    # --- clients ----------------------------------------------------------
    client_watermark_window: int = 1024
    client_signatures: bool = True
    #: Simulated signature sizes (bytes); 64 matches 256-bit ECDSA.
    signature_size: int = 64
    #: Client retry/backoff (closing the loss-path liveness gap: before this,
    #: a request whose messages were all dropped waited for the next epoch's
    #: bucket reassignment — or forever).  ``client_retry_timeout`` is the
    #: per-request timeout before the first resubmission; ``0`` (the
    #: default) disables retries entirely and schedules nothing.
    client_retry_timeout: float = 0.0
    #: Multiplier applied to the retry timeout after every attempt
    #: (exponential backoff, >= 1).
    client_retry_backoff: float = 2.0
    #: Cap on the backed-off retry timeout (seconds).
    client_retry_max_timeout: float = 30.0
    #: Deterministic, seeded jitter on each retry delay, as a fraction:
    #: every delay is multiplied by ``1 + U[0, jitter)`` so a healed
    #: partition does not see all clients resubmit in the same instant.
    client_retry_jitter: float = 0.1
    #: Whether nodes send per-request responses back to clients.  The paper's
    #: clients wait for f+1 responses; large simulated sweeps disable the
    #: response messages and measure the same quantity centrally (the moment
    #: the (f+1)-th node delivers), which is equivalent and far cheaper.
    send_client_responses: bool = True

    # --- simulation / misc -------------------------------------------------
    random_seed: int = 42

    def __post_init__(self) -> None:
        self.validate()

    # -- derived quantities ------------------------------------------------
    @property
    def max_faulty(self) -> int:
        """Maximum number of tolerated faults f for the configured model."""
        if self.byzantine:
            return (self.num_nodes - 1) // 3
        return (self.num_nodes - 1) // 2

    @property
    def strong_quorum(self) -> int:
        """Quorum size guaranteeing intersection in correct nodes (2f+1 / f+1)."""
        if self.byzantine:
            return 2 * self.max_faulty + 1
        return self.max_faulty + 1

    @property
    def weak_quorum(self) -> int:
        """Smallest set guaranteed to contain one correct node (f+1)."""
        return self.max_faulty + 1

    @property
    def num_buckets(self) -> int:
        """Total number of buckets |B| = buckets_per_leader * n."""
        return self.buckets_per_leader * self.num_nodes

    def max_leaders(self) -> int:
        """Largest leaderset a single epoch can accommodate.

        Bounded by the number of nodes and by ``epoch_length /
        min_segment_size`` so that every segment gets at least
        ``min_segment_size`` sequence numbers.
        """
        by_segment = max(1, self.epoch_length // max(1, self.min_segment_size))
        return max(1, min(self.num_nodes, by_segment))

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.protocol not in SUPPORTED_PROTOCOLS:
            raise ConfigError(f"unknown protocol {self.protocol!r}")
        if self.leader_policy not in SUPPORTED_POLICIES:
            raise ConfigError(f"unknown leader policy {self.leader_policy!r}")
        if self.epoch_length < 1:
            raise ConfigError("epoch_length must be >= 1")
        if self.min_segment_size < 1:
            raise ConfigError("min_segment_size must be >= 1")
        if self.buckets_per_leader < 1:
            raise ConfigError("buckets_per_leader must be >= 1")
        if self.max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        if self.batch_rate is not None and self.batch_rate <= 0:
            raise ConfigError("batch_rate must be positive or None")
        if self.min_batch_timeout < 0 or self.max_batch_timeout < 0:
            raise ConfigError("batch timeouts must be non-negative")
        if self.protocol == PROTOCOL_RAFT and self.byzantine:
            raise ConfigError("Raft is a CFT protocol; set byzantine=False")
        if self.client_watermark_window < 1:
            raise ConfigError("client_watermark_window must be >= 1")
        if not 0.0 <= self.view_change_jitter < 1.0:
            raise ConfigError("view_change_jitter must be in [0, 1)")
        if self.stalled_catchup_grace < 0:
            raise ConfigError("stalled_catchup_grace must be >= 0")
        if self.client_retry_timeout < 0:
            raise ConfigError("client_retry_timeout must be >= 0")
        if self.client_retry_backoff < 1.0:
            raise ConfigError("client_retry_backoff must be >= 1")
        if self.client_retry_max_timeout < self.client_retry_timeout:
            raise ConfigError(
                "client_retry_max_timeout must be >= client_retry_timeout"
            )
        if not 0.0 <= self.client_retry_jitter < 1.0:
            raise ConfigError("client_retry_jitter must be in [0, 1)")

    def with_updates(self, **kwargs) -> "ISSConfig":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **kwargs)


def paper_config(protocol: str, num_nodes: int, **overrides) -> ISSConfig:
    """Build a configuration matching Table 1 for the given protocol.

    The epoch length in the paper is 256 batches; callers typically override
    it downwards for simulation speed.  Anything passed through ``overrides``
    wins over the Table 1 defaults.
    """
    table1: Dict[str, Dict[str, object]] = {
        PROTOCOL_PBFT: dict(
            max_batch_size=2048,
            batch_rate=32.0,
            min_batch_timeout=0.0,
            max_batch_timeout=4.0,
            epoch_length=256,
            min_segment_size=2,
            epoch_change_timeout=10.0,
            buckets_per_leader=16,
            client_signatures=True,
            byzantine=True,
        ),
        PROTOCOL_HOTSTUFF: dict(
            max_batch_size=4096,
            batch_rate=None,
            min_batch_timeout=1.0,
            max_batch_timeout=0.0,
            epoch_length=256,
            min_segment_size=16,
            epoch_change_timeout=10.0,
            buckets_per_leader=16,
            client_signatures=True,
            byzantine=True,
        ),
        PROTOCOL_RAFT: dict(
            max_batch_size=4096,
            batch_rate=32.0,
            min_batch_timeout=0.0,
            max_batch_timeout=4.0,
            epoch_length=256,
            min_segment_size=16,
            epoch_change_timeout=10.0,
            buckets_per_leader=16,
            client_signatures=False,
            byzantine=False,
        ),
        PROTOCOL_CONSENSUS: dict(
            max_batch_size=2048,
            batch_rate=32.0,
            epoch_length=256,
            min_segment_size=2,
            buckets_per_leader=16,
            byzantine=True,
        ),
    }
    if protocol not in table1:
        raise ConfigError(f"unknown protocol {protocol!r}")
    params: Dict[str, object] = dict(table1[protocol])
    params.update(overrides)
    return ISSConfig(num_nodes=num_nodes, protocol=protocol, **params)


#: Simulator engines selectable via :class:`SimConfig` (see
#: :mod:`repro.sim.simulator` and :mod:`repro.sim.sharded`).
ENGINE_SINGLE = "single"
ENGINE_SHARDED = "sharded"

SUPPORTED_ENGINES = (ENGINE_SINGLE, ENGINE_SHARDED)


@dataclass
class SimConfig:
    """Selection and tuning of the discrete-event engine.

    Both engines execute the identical global ``(time, seq)`` event order,
    so every seeded run produces a bit-identical schedule on either —
    the differential suite (``tests/test_sharded_equivalence.py``) pins
    this.  The sharded engine trades per-event heap cost for per-shard
    queues merged at conservative-lookahead horizons, which pays off at
    32+ nodes (see docs/ARCHITECTURE.md).
    """

    #: ``"single"`` (one global heap) or ``"sharded"`` (per-shard queues
    #: under a lookahead horizon).
    engine: str = ENGINE_SINGLE
    #: Shard count for the sharded engine; ``0`` derives one shard per
    #: datacenter, capped at 8 (measured sweet spot for 32–128 nodes).
    num_shards: int = 0
    #: Floor on the sharded engine's horizon window (seconds); the window
    #: itself derives from the minimum inter-shard link latency.
    min_window: float = 0.005

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent engine settings."""
        if self.engine not in SUPPORTED_ENGINES:
            raise ConfigError(f"unknown simulator engine {self.engine!r}")
        if self.num_shards < 0:
            raise ConfigError("num_shards must be >= 0 (0 = auto)")
        if self.min_window < 0:
            raise ConfigError("min_window must be >= 0")

    @staticmethod
    def from_env() -> "SimConfig":
        """Build from the environment: ``REPRO_ENGINE`` selects the engine.

        Unknown or unset values fall back to the single engine, so existing
        workflows (and every golden trace) keep their default behaviour.
        """
        raw = os.environ.get("REPRO_ENGINE", ENGINE_SINGLE).strip().lower()
        engine = raw if raw in SUPPORTED_ENGINES else ENGINE_SINGLE
        return SimConfig(engine=engine)


@dataclass
class NetworkConfig:
    """Parameters of the simulated WAN (Section 6.1 of the paper)."""

    #: Per-node NIC bandwidth in bits per second (paper: rate-limited 1 Gbps).
    bandwidth_bps: float = 1e9
    #: Number of geo-distributed datacenters nodes are spread across.
    num_datacenters: int = 16
    #: Base one-way latency within a datacenter (seconds).
    intra_dc_latency: float = 0.0005
    #: Mean one-way latency between distinct datacenters (seconds).
    inter_dc_latency: float = 0.08
    #: Jitter applied to every message delay, as a fraction of the latency.
    jitter: float = 0.05
    #: Probability of dropping any individual message (0 = reliable links).
    drop_rate: float = 0.0
    #: Fixed per-message processing overhead at the receiver (seconds).
    processing_delay: float = 0.00002
    #: Width of the wire-batching flush tick (seconds).  When positive, small
    #: batchable messages (protocol votes, client requests/acknowledgements —
    #: see :mod:`repro.sim.batching`) sent on the same (src, dst) link within
    #: one tick are coalesced into a single wire message flushed at the tick
    #: boundary.  ``0`` (the default) disables batching entirely.
    batch_flush_interval: float = 0.0
    #: Optional per-directed-link bandwidth in bits per second.  When
    #: positive, each (src, dst) link serialises wire messages at this rate
    #: *after* the sender's NIC: back-to-back traffic on one link queues up
    #: behind it (see ``Network._send_now``).  ``0`` (the default) disables
    #: link queueing entirely — the pre-existing NIC-only model, which every
    #: golden trace pins.  Engine-independent: both simulator engines see
    #: identical arrival times.
    link_bandwidth_bps: float = 0.0
    #: Optional explicit one-way datacenter latency matrix (seconds),
    #: ``num_datacenters`` × ``num_datacenters``.  ``None`` (the default)
    #: keeps the synthetic ring-distance matrix; scenario builders like
    #: :func:`repro.harness.scenarios.wan_regions` install measured
    #: region-to-region latencies here.
    dc_latency_matrix: Optional[List[List[float]]] = None
    random_seed: int = 7

    def validate(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if not 0 <= self.drop_rate < 1:
            raise ConfigError("drop_rate must be in [0, 1)")
        if self.num_datacenters < 1:
            raise ConfigError("num_datacenters must be >= 1")
        if self.batch_flush_interval < 0:
            raise ConfigError("batch_flush_interval must be >= 0")
        if self.link_bandwidth_bps < 0:
            raise ConfigError("link_bandwidth_bps must be >= 0")
        if self.dc_latency_matrix is not None:
            matrix = self.dc_latency_matrix
            if len(matrix) != self.num_datacenters or any(
                len(row) != self.num_datacenters for row in matrix
            ):
                raise ConfigError(
                    "dc_latency_matrix must be num_datacenters x num_datacenters"
                )


@dataclass
class WorkloadConfig:
    """Open-loop client workload (Section 6.1)."""

    num_clients: int = 16
    #: Aggregate request rate across all clients (requests / second).
    total_rate: float = 1000.0
    #: Request payload size in bytes (paper: 500, the avg. Bitcoin tx).
    payload_size: int = 500
    #: Total virtual duration of the experiment (seconds).
    duration: float = 30.0
    #: Ramp-up time excluded from measurements (seconds).
    warmup: float = 0.0
    random_seed: int = 11

    def validate(self) -> None:
        if self.num_clients < 1:
            raise ConfigError("num_clients must be >= 1")
        if self.total_rate <= 0:
            raise ConfigError("total_rate must be positive")
        if self.payload_size < 0:
            raise ConfigError("payload_size must be >= 0")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
