"""Leader-side proposal pacing shared by the SB implementations.

Section 3.2 of the paper: a leader proposes a batch for the next sequence
number of its segment once *either* enough requests are pending to fill a
batch *or* the batch timeout since the previous proposal has elapsed.  On top
of that, PBFT and Raft run with a fixed deployment-wide batch rate
(Table 1, Section 4.4.1) that translates into a minimum spacing between one
leader's proposals — the rate limit that protects against view changes under
load spikes.

:class:`ProposalPacer` encapsulates that logic so PBFT, Raft and the
reference SB-from-consensus implementation do not each re-implement it.
Byzantine-straggler behaviour (Section 6.4.2) plugs in here as well: the
straggler adds a fixed delay before every proposal and strips its batches.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .sb import SBContext
from .types import Batch, SeqNr
from ..runtime.api import Timer


class ProposalPacer:
    """Drives a segment leader's proposals for its sequence numbers, in order.

    ``propose_fn(sn, batch)`` is invoked exactly once per sequence number
    (unless the node crashes first).  The pacer never proposes out of order;
    protocols that pipeline (PBFT) still initiate proposals in order and let
    the agreement rounds overlap.
    """

    def __init__(
        self,
        context: SBContext,
        propose_fn: Callable[[SeqNr, Batch], None],
        seq_nrs: Optional[List[SeqNr]] = None,
    ):
        self.context = context
        self._propose = propose_fn
        self._seq_nrs: List[SeqNr] = list(
            seq_nrs if seq_nrs is not None else context.segment.seq_nrs
        )
        self._next_index = 0
        self._last_proposal_time: Optional[float] = None
        self._timer: Optional[Timer] = None
        self._stopped = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin pacing; the first proposal fires after the usual spacing."""
        if not self.context.is_leader:
            return
        self._schedule_next(first=True)

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()

    @property
    def finished(self) -> bool:
        return self._next_index >= len(self._seq_nrs)

    # --------------------------------------------------------------- pacing
    def _spacing(self) -> float:
        """Minimum time between two proposals of this leader."""
        config = self.context.config
        return max(self.context.proposal_interval, config.min_batch_timeout)

    def _deadline_spacing(self) -> float:
        """Time after which we propose even with a non-full (or empty) batch."""
        config = self.context.config
        return max(self._spacing(), config.max_batch_timeout)

    def _schedule_next(self, first: bool = False) -> None:
        if self._stopped or self.finished:
            return
        now = self.context.now()
        base = self._last_proposal_time if self._last_proposal_time is not None else now
        earliest = base + (0.0 if first else self._spacing())
        earliest += self.context.proposal_delay  # Byzantine straggler delay
        delay = max(0.0, earliest - now)
        self._timer = self.context.schedule(delay, self._attempt_proposal)

    def _attempt_proposal(self) -> None:
        if self._stopped or self.finished:
            return
        now = self.context.now()
        base = self._last_proposal_time if self._last_proposal_time is not None else 0.0
        deadline = base + self._deadline_spacing() + self.context.proposal_delay
        if not self.context.batch_ready() and now < deadline and self.context.config.max_batch_timeout > 0:
            # Not enough requests yet: wait until the batch timeout expires,
            # then propose whatever is available (possibly an empty batch,
            # which keeps the followers' protocol timers from firing).
            self._timer = self.context.schedule(max(0.0, deadline - now), self._attempt_proposal)
            return
        self._fire_proposal()

    def _fire_proposal(self) -> None:
        sn = self._seq_nrs[self._next_index]
        if not self.context.may_propose(sn):
            # The fault injector crashed this node right before the proposal.
            self.stop()
            return
        batch = self.context.cut_batch(sn)
        self._next_index += 1
        self._last_proposal_time = self.context.now()
        self._propose(sn, batch)
        self._schedule_next()
