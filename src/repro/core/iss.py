"""The ISS node: multiplexing Sequenced Broadcast instances into one log.

This module ties together everything the paper's Algorithms 1–3 describe:

* request reception and validation into bucket queues,
* epoch initialisation (leaderset, segments, buckets, SB instances),
* proposal batching for segments this node leads (through
  :class:`~repro.core.sb.SBContext` / the proposal pacer),
* handling of SB-DELIVER events — committing batches to the log, removing
  delivered requests from bucket queues, resurrecting the node's own
  unsuccessful proposals on ``⊥``,
* contiguous delivery with per-request sequence numbers (Equation 2) and
  client responses,
* epoch transitions, checkpointing, garbage collection and state transfer,
* durable persistence: when the node owns a
  :class:`~repro.storage.node_storage.NodeStorage`, every commit, epoch
  start and stable checkpoint is recorded through a narrow persist hook so
  a crashed node can be rebuilt by
  :class:`~repro.storage.recovery.RecoveryManager` (WAL replay + snapshot)
  and catch up on whatever it missed via state transfer.

Wire efficiency: client acknowledgements are aggregated per (client, commit
step) into :class:`~repro.core.messages.ClientResponseBatchMsg` here, and —
one layer below — the network coalesces protocol votes, checkpoint votes and
client requests per (sender, receiver, flush tick) into single wire frames
when :mod:`repro.sim.batching` is enabled.  Neither changes what any node
delivers; both only reduce the number of messages on the simulated wire.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..crypto.signatures import KeyStore
from ..fd.detector import FailureDetector, HeartbeatMsg
from ..runtime.api import FaultNotifier, Scheduler, Transport
from ..runtime.faults import BYZ_CENSOR, ByzantineSpec, StragglerSpec

if TYPE_CHECKING:  # annotation-only: storage imports core, not vice versa
    from ..storage.node_storage import NodeStorage
from .buckets import BucketPool
from .checkpoint import CheckpointMsg, CheckpointProtocol
from .config import ISSConfig, PROTOCOL_CONSENSUS
from .leader_policy import LeaderSelectionPolicy
from .log import Log
from .manager import EpochManager
from .membership import MembershipTracker
from .messages import (
    BucketAssignmentMsg,
    ClientRequestMsg,
    ClientResponseBatchMsg,
    InstanceMessage,
    client_endpoint,
)
from .orderer import Orderer, SBFactory, default_factory
from .sb import InstanceId, SBContext
from .segment import LAYOUT_ROUND_ROBIN, epoch_seq_nrs
from .state_transfer import StateRequest, StateResponse, StateTransfer
from .types import (
    Batch,
    DeliveredRequest,
    EpochNr,
    LogEntry,
    NIL,
    NodeId,
    Request,
    SegmentDescriptor,
    SeqNr,
    is_nil,
)
from .validation import ClientWatermarks, RequestValidator

#: Callback invoked for every request delivered at a node.
DeliveryListener = Callable[[NodeId, DeliveredRequest], None]


class ISSNode:
    """One replica of the ISS state-machine-replication service."""

    def __init__(
        self,
        node_id: NodeId,
        config: ISSConfig,
        sim: Scheduler,
        network: Transport,
        key_store: KeyStore,
        client_ids: Iterable[int] = (),
        on_deliver: Optional[DeliveryListener] = None,
        fault_injector: Optional[FaultNotifier] = None,
        straggler: Optional[StragglerSpec] = None,
        byzantine: Optional[ByzantineSpec] = None,
        policy: Optional[LeaderSelectionPolicy] = None,
        layout: str = LAYOUT_ROUND_ROBIN,
        sb_factory: Optional[SBFactory] = None,
        storage: Optional[NodeStorage] = None,
        probe_stagger: Optional[float] = None,
        tracer=None,
        membership_enabled: bool = False,
    ):
        self.node_id = node_id
        self.config = config
        self.sim = sim
        self.network = network
        self.key_store = key_store
        self.client_ids = list(client_ids)
        self.on_deliver = on_deliver
        #: Observability hook (``repro.obs.RequestTracer``); ``None`` keeps
        #: every instrumentation site a single attribute test.
        self.tracer = tracer
        self.fault_injector = fault_injector
        self.straggler = straggler if straggler and straggler.node == node_id else None
        #: Byzantine behaviour of *this* node (censorship is honoured here in
        #: ``_cut_batch``; send-level behaviours live in the network hook).
        self.byzantine = byzantine if byzantine and byzantine.node == node_id else None
        self.layout = layout
        #: Durable storage (WAL + snapshots); ``None`` disables persistence.
        self.storage = storage
        #: While True (set between restart and caught-up), stable
        #: checkpoints for the *current* epoch also trigger state transfer.
        self._catchup_aggressive = False
        #: Pending stalled-epoch re-check (``stalled_catchup_grace``);
        #: at most one armed at a time.
        self._wedge_timer = None

        # --- replicated state -------------------------------------------------
        self.log = Log()
        self.buckets = BucketPool(config.num_buckets)
        self.watermarks = ClientWatermarks(config.client_watermark_window)
        self.validator = RequestValidator(
            key_store,
            self.client_ids,
            self.watermarks,
            verify_signatures=config.client_signatures,
        )
        #: Dynamic membership (None = static genesis configuration).  The
        #: tracker derives every epoch's replica set from the committed log,
        #: so it is reconstructed for free by WAL replay and state transfer.
        self.membership = (
            MembershipTracker(config, self.log) if membership_enabled else None
        )
        #: Harness hook fired on every membership activation:
        #: ``listener(node_id, epoch, view, added, removed)``.
        self.membership_listener = None
        #: True once this node was removed from membership and quiesced.
        self.retired = False
        #: First epoch this incarnation is a member of.  Genesis replicas
        #: are members from epoch 0; a (re-)added replica is a member from
        #: the activation epoch of its add-ConfigTx.  Removals activated
        #: *before* this epoch are history the node replays while catching
        #: up (a rolling upgrade's earlier removal of the very same id) —
        #: they must not retire the new incarnation.
        self.join_epoch: EpochNr = 0
        self.manager = EpochManager(
            config, policy=policy, layout=layout, membership=self.membership
        )
        self.current_epoch: EpochNr = 0
        #: Batches this node proposed, per sequence number (for resurrection).
        self._proposed: Dict[SeqNr, Batch] = {}
        #: Requests seen in accepted proposals of the current epoch, mapped to
        #: the digest of the batch they appeared in (duplication check that
        #: still accepts re-validations of the very same batch).
        self._proposed_this_epoch: Dict[object, bytes] = {}
        self.crashed = False

        # --- failure detector (used by the consensus-based SB implementation) --
        self.failure_detector: Optional[FailureDetector] = None
        if config.protocol == PROTOCOL_CONSENSUS:
            self.failure_detector = FailureDetector(
                node_id=node_id,
                all_nodes=range(config.num_nodes),
                sim=sim,
                broadcast_fn=self._broadcast_to_nodes,
                heartbeat_interval=1.0,
                initial_timeout=config.epoch_change_timeout,
            )

        # --- sub-protocols ----------------------------------------------------
        factory = sb_factory or default_factory(config, failure_detector=self.failure_detector)
        self.orderer = Orderer(factory)
        self.checkpoints = CheckpointProtocol(
            node_id=node_id,
            config=config,
            key_store=key_store,
            broadcast_fn=self._broadcast_to_nodes,
            on_stable=self._on_stable_checkpoint,
            view_fn=(
                self.membership.view_for if self.membership is not None else None
            ),
            view_sealed_fn=(
                (lambda epoch: epoch <= self.membership.sealed_through + 1)
                if self.membership is not None
                else None
            ),
        )
        self.state_transfer = StateTransfer(
            node_id=node_id,
            config=config,
            checkpoints=self.checkpoints,
            send_fn=self._send_to_node,
            apply_entry_fn=self._apply_transferred_entry,
            schedule_fn=sim.schedule,
            probe_stagger=probe_stagger,
        )

        #: Instance messages buffered for epochs we have not started yet.
        self._pending_messages: Dict[EpochNr, List[Tuple[NodeId, InstanceMessage]]] = {}
        #: Statistics.
        self.requests_received = 0
        self.batches_committed = 0
        self.nil_committed = 0
        self.epochs_completed = 0
        #: Misbehaviour diagnostics (reported by SB instances; see
        #: ``SBContext.report_misbehaviour``).  Eviction of Byzantine
        #: leaders stays log-driven (⊥ entries → FailureHistory), so these
        #: counters never influence leaderset computation.
        self.equivocations_detected = 0
        #: Forged protocol votes rejected by this node's SB instances.
        self.invalid_votes_rejected = 0
        #: View/round changes completed across all SB instances this node has
        #: ever hosted (the per-instance counters die with epoch garbage
        #: collection; partition diagnostics need a persistent figure).
        self.view_changes = 0
        #: Duplicate submissions absorbed per client (re-transmissions of
        #: delivered or already-pending requests; abusive flooders inflate
        #: this, honest epoch-driven resubmission contributes too).
        self.duplicate_requests: Dict[int, int] = {}
        #: Delivered-filter / verification-cache entries garbage collected
        #: below advanced client watermarks (see :meth:`_gc_client_state`).
        self.client_state_gc_entries = 0

        network.register(node_id, self.on_message)

    # ====================================================================== API
    def start(self) -> None:
        """Boot the node: start the failure detector and epoch 0."""
        self.start_at(0)

    def start_at(self, epoch: EpochNr) -> None:
        """Boot the node at ``epoch`` (0 for a fresh boot, the recovery
        manager's resume epoch after a restart)."""
        if self.failure_detector is not None:
            self.failure_detector.start()
        self._start_epoch(epoch)

    def crash(self) -> None:
        """Stop all local activity (used by the fault injector)."""
        self.crashed = True
        self.orderer.stop_all()
        self.state_transfer.stop()
        if self._wedge_timer is not None:
            self._wedge_timer.cancel()
            self._wedge_timer = None
        if self.failure_detector is not None:
            self.failure_detector.stop()

    def begin_recovery_catchup(self) -> None:
        """Post-restart: fetch everything the peers can prove stable.

        Sends the open-ended state-transfer probe and switches the
        checkpoint handler into aggressive mode (a stable checkpoint for
        the *current* epoch with an incomplete local log also triggers
        transfer — the epoch's SB instances were garbage collected at the
        peers, so votes alone can no longer complete it here).
        """
        self._catchup_aggressive = True
        self.state_transfer.request_latest(self.current_epoch, self._peer_nodes())

    def end_recovery_catchup(self) -> None:
        """Leave aggressive catch-up mode (the node is back at the frontier)."""
        self._catchup_aggressive = False

    def nudge_stalled_instances(self) -> None:
        """Partition healed: prod every live SB instance to re-examine
        liveness immediately (see :meth:`repro.core.sb.SBInstance.nudge`).

        State transfer only serves checkpoint-backed prefixes; epochs where
        *no* side kept a quorum (a bridge partition, say) have no stable
        checkpoint to transfer, and their decided-but-unfinished instances
        can only complete through the protocol's own view/round machinery —
        whose timers were exponentially backed off during the outage.
        Called by the harness's heal hook; never on the clean path.
        """
        if self.crashed:
            return
        for instance in list(self.orderer.active_instances()):
            instance.nudge()

    def submit_request(self, request: Request) -> bool:
        """Entry point for a locally injected request (bypassing the network).

        Equivalent to receiving a ⟨REQUEST⟩ message; mainly used by tests and
        examples that do not want to instantiate client processes.
        """
        return self._handle_client_request(request)

    # ============================================================== networking
    def _active_nodes(self) -> Sequence[NodeId]:
        """The replica set this node currently addresses.

        The current epoch's membership view under dynamic reconfiguration;
        the genesis ``range(n)`` otherwise (identical values, so static
        deployments keep a bit-identical schedule).
        """
        if self.membership is not None:
            return self.membership.view_for(self.current_epoch).nodes
        return range(self.config.num_nodes)

    def _peer_nodes(self) -> List[NodeId]:
        """Every active node except this one (state-transfer peer set)."""
        peers = [n for n in self._active_nodes() if n != self.node_id]
        if not peers:
            # A node outside its own view (e.g. a joiner whose local seal
            # frontier predates its admission) probes the genesis replicas.
            peers = [n for n in range(self.config.num_nodes) if n != self.node_id]
        return peers

    def _send_to_node(self, dst: NodeId, message: object) -> None:
        self.network.send(self.node_id, dst, message)

    def _broadcast_to_nodes(self, message: object) -> None:
        """Send to every other active node; deliver locally without network cost."""
        for node in self._active_nodes():
            if node == self.node_id:
                self.sim.call_soon(lambda m=message: self.on_message(self.node_id, m))
            else:
                self.network.send(self.node_id, node, message)

    def on_message(self, src: NodeId, message: object) -> None:
        """Network entry point: dispatch by message type."""
        if self.crashed:
            return
        if isinstance(message, InstanceMessage):
            self._handle_instance_message(src, message)
        elif isinstance(message, ClientRequestMsg):
            self._handle_client_request(message.request)
        elif isinstance(message, CheckpointMsg):
            self.checkpoints.handle_message(src, message)
            self._maybe_request_state_transfer(message.epoch)
        elif isinstance(message, StateRequest):
            for response in self.state_transfer.build_responses(message, self.log):
                self._send_to_node(src, response)
        elif isinstance(message, StateResponse):
            self.state_transfer.handle_response(response=message, log=self.log)
            self._after_commit()
        elif isinstance(message, HeartbeatMsg):
            if self.failure_detector is not None:
                self.failure_detector.handle_message(src, message)

    # ======================================================== client requests
    def _handle_client_request(self, request: Request) -> bool:
        self.requests_received += 1
        rid = request.rid
        tracer = self.tracer
        if self.buckets.is_delivered(rid):
            # Re-transmission of an already delivered request: re-acknowledge.
            if tracer is not None:
                tracer.on_duplicate(self.sim.now, self.node_id, rid)
            self._note_duplicate(rid.client)
            self._send_client_response(rid, -1)
            return False
        if rid.timestamp < self.watermarks.low_watermark(rid.client):
            # Below the low watermark the request was necessarily delivered
            # (the watermark only advances over the contiguous delivered
            # prefix) and its delivered-filter entry has been garbage
            # collected — re-acknowledge exactly like the branch above.
            if tracer is not None:
                tracer.on_duplicate(self.sim.now, self.node_id, rid)
            self._note_duplicate(rid.client)
            self._send_client_response(rid, -1)
            return False
        if not self.validator.is_valid(request):
            if tracer is not None:
                tracer.on_reject(self.sim.now, self.node_id, rid, "invalid")
            return False
        if self.buckets.add_request(request):
            if tracer is not None:
                tracer.on_admit(self.sim.now, self.node_id, rid)
            return True
        if tracer is not None:
            tracer.on_duplicate(self.sim.now, self.node_id, rid)
        self._note_duplicate(rid.client)
        return False

    def _note_duplicate(self, client: int) -> None:
        self.duplicate_requests[client] = self.duplicate_requests.get(client, 0) + 1

    def _send_client_response(self, rid, sn: int) -> None:
        """Acknowledge a single request (used for re-transmission re-acks)."""
        if not self.config.send_client_responses:
            return
        self.network.send(
            self.node_id,
            client_endpoint(rid.client),
            ClientResponseBatchMsg(
                client=rid.client, entries=((rid, sn),), node=self.node_id
            ),
        )

    def _send_delivery_responses(self, delivered: Sequence[DeliveredRequest]) -> None:
        """Acknowledge a commit step's deliveries, aggregated per client.

        One ⟨RESPONSE⟩ message per (client, commit step) instead of one per
        request: same information reaches the same clients, with per-request
        completion semantics preserved by the entry list.
        """
        groups: Dict[int, List[Tuple[object, int]]] = {}
        for item in delivered:
            rid = item.request.rid
            group = groups.get(rid.client)
            if group is None:
                groups[rid.client] = group = []
            group.append((rid, item.sn))
        node = self.node_id
        for client, entries in groups.items():
            self.network.send(
                node,
                client_endpoint(client),
                ClientResponseBatchMsg(client=client, entries=tuple(entries), node=node),
            )

    # ============================================================ epoch logic
    def _start_epoch(self, epoch: EpochNr) -> None:
        if self.crashed:
            return
        self.current_epoch = epoch
        self._proposed_this_epoch = {}
        if self.storage is not None:
            self.storage.record_epoch_start(epoch)
        if self.fault_injector is not None:
            self.fault_injector.notify_epoch_start(self.node_id, epoch)
            if self.crashed:
                return
        if self.manager.epoch_complete(epoch, self.log):
            # Every position of the epoch is already committed (state
            # transfer or recovery replay ran ahead): opening SB instances
            # would re-propose decided positions and strand the requests
            # they cut.  The transition loop in _after_commit finishes the
            # epoch immediately; buffered instance messages are stale.
            self._pending_messages.pop(epoch, None)
            return
        segments = self.manager.segments_for(epoch)
        interval = self.manager.proposal_interval(epoch)
        for segment in segments:
            context = self._build_context(segment, interval)
            self.orderer.open_segment(context)
        self._announce_buckets_to_clients(epoch, segments)
        # Process protocol messages that arrived before we reached this epoch.
        for src, message in self._pending_messages.pop(epoch, []):
            self._handle_instance_message(src, message)

    def _build_context(self, segment: SegmentDescriptor, interval: float) -> SBContext:
        is_straggler_leader = self.straggler is not None and segment.leader == self.node_id
        view = (
            self.membership.view_for(segment.epoch)
            if self.membership is not None
            else None
        )
        return SBContext(
            node_id=self.node_id,
            config=self.config,
            segment=segment,
            all_nodes=(
                list(view.nodes) if view is not None else list(range(self.config.num_nodes))
            ),
            membership=view,
            send_fn=lambda dst, payload, seg=segment: self._send_instance_message(
                dst, seg.instance_id, payload
            ),
            local_fn=lambda payload, seg=segment: self._local_instance_message(
                seg.instance_id, payload
            ),
            schedule_fn=self.sim.schedule,
            now_fn=lambda: self.sim.now,
            cut_batch_fn=lambda sn, seg=segment: self._cut_batch(seg, sn),
            validate_batch_fn=lambda batch, seg=segment: self._validate_batch(seg, batch),
            deliver_fn=lambda sn, value, seg=segment: self._sb_deliver(seg, sn, value),
            pending_fn=lambda seg=segment: self.buckets.pending_in(seg.buckets),
            proposal_interval=interval,
            may_propose_fn=lambda sn, seg=segment: self._may_propose(seg, sn),
            proposal_delay=self.straggler.delay if is_straggler_leader else 0.0,
            force_empty_proposals=(
                self.straggler.propose_empty if is_straggler_leader else False
            ),
            key_store=self.key_store,
            report_misbehaviour_fn=self._note_misbehaviour,
            timeout_jitter_fn=self._make_timeout_jitter(segment),
            note_view_change_fn=self._note_view_change,
            tracer=self.tracer,
        )

    def _make_timeout_jitter(self, segment: SegmentDescriptor) -> Optional[Callable[[], float]]:
        """Deterministic per-instance jitter source for view/round timeouts.

        Returns ``None`` (no jitter, no RNG allocated, bit-identical
        schedules) unless ``config.view_change_jitter > 0``.  The seed mixes
        only integers — the deployment seed, this node and the instance id —
        so different nodes arm the same logical timeout desynchronised while
        the whole schedule stays reproducible across runs.
        """
        jitter = self.config.view_change_jitter
        if jitter <= 0:
            return None
        epoch, leader = segment.instance_id
        seed = (
            (self.config.random_seed * 2654435761)
            ^ (int(self.node_id) * 1_000_003)
            ^ (int(epoch) * 7919)
            ^ (int(leader) * 104_729)
        ) & 0xFFFFFFFF
        rng = random.Random(seed ^ 0x7177E4)
        return lambda: 1.0 + jitter * rng.random()

    def _note_view_change(self) -> None:
        """Count one completed view/round change (all instances, all epochs)."""
        self.view_changes += 1

    def _note_misbehaviour(self, kind: str, offender: NodeId) -> None:
        """Count provable misbehaviour reported by an SB instance.

        Diagnostics only (surfaced per node through ``RunReport.byzantine``):
        leaderset eviction is driven exclusively by the log-visible ``⊥``
        entries so all correct nodes keep computing identical leadersets.
        """
        if kind == "equivocation":
            self.equivocations_detected += 1
        elif kind == "invalid-signature":
            self.invalid_votes_rejected += 1

    def _announce_buckets_to_clients(self, epoch: EpochNr, segments: Sequence[SegmentDescriptor]) -> None:
        if not self.client_ids:
            return
        assignment = []
        for segment in segments:
            for bucket in segment.buckets:
                assignment.append((bucket, segment.leader))
        message = BucketAssignmentMsg(epoch=epoch, assignment=tuple(sorted(assignment)))
        for client in self.client_ids:
            self.network.send(self.node_id, client_endpoint(client), message)

    # =============================================================== proposals
    def _cut_batch(self, segment: SegmentDescriptor, sn: SeqNr) -> Batch:
        """Cut a batch for one of our sequence numbers (Algorithm 2, propose).

        A censoring Byzantine leader (``ByzantineSpec(behaviour="censor")``)
        silently skips its targeted buckets: the requests stay queued at
        every correct node and are proposed as soon as bucket rotation
        (Section 3.2) hands the bucket to an honest leader — the exact
        liveness argument the censorship scenarios measure.
        """
        if self.straggler is not None and self.straggler.propose_empty:
            batch = Batch.of(())
        else:
            buckets = list(segment.buckets)
            byzantine = self.byzantine
            if (
                byzantine is not None
                and byzantine.behaviour == BYZ_CENSOR
                and self.sim.now >= byzantine.start_time
            ):
                censored = set(byzantine.buckets)
                buckets = [b for b in buckets if b not in censored]
            requests = self.buckets.cut_batch(buckets, self.config.max_batch_size)
            batch = Batch.of(requests)
        self._proposed[sn] = batch
        tracer = self.tracer
        if tracer is not None:
            rids = tuple(r.rid for r in batch.requests if tracer.wants(r.rid))
            tracer.on_propose(self.sim.now, self.node_id, segment.instance_id, sn, rids)
        return batch

    def _may_propose(self, segment: SegmentDescriptor, sn: SeqNr) -> bool:
        if self.crashed:
            return False
        if self.fault_injector is not None and sn == segment.seq_nrs[-1]:
            if self.fault_injector.notify_last_proposal(self.node_id, segment.epoch):
                return False
        return not self.crashed

    def _validate_batch(self, segment: SegmentDescriptor, batch: Batch) -> bool:
        """Follower acceptance rules (a)–(c) of Section 4.2."""
        digest = batch.digest()
        requests = batch.requests
        allowed_buckets = segment.bucket_set()
        num_buckets = self.buckets.num_buckets
        delivered = self.buckets.delivered
        proposed = self._proposed_this_epoch
        proposed_get = proposed.get
        is_valid = self.validator.is_valid
        seen_in_batch = set()
        seen_add = seen_in_batch.add
        for request in requests:
            rid = request.rid
            if rid in seen_in_batch:
                return False
            seen_add(rid)
            if rid._mix % num_buckets not in allowed_buckets:
                return False
            if rid in delivered:
                return False
            earlier = proposed_get(rid)
            if earlier is not None and earlier != digest:
                return False
            if not is_valid(request):
                return False
        for request in requests:
            proposed[request.rid] = digest
        return True

    # ================================================================ delivery
    def _sb_deliver(self, segment: SegmentDescriptor, sn: SeqNr, value: LogEntry) -> None:
        """SB-DELIVER handler (Algorithm 1, lines 40–48)."""
        if self.crashed:
            return
        if self.log.has_entry(sn):
            return
        self.log.commit(sn, value, segment.epoch, self.sim.now)
        if self.tracer is not None:
            self.tracer.on_commit(
                self.sim.now, self.node_id, segment.instance_id, sn, is_nil(value)
            )
        if self.storage is not None:
            self.storage.record_commit(sn, value, segment.epoch)
        if is_nil(value):
            self.nil_committed += 1
            proposed = self._proposed.get(sn)
            if proposed is not None:
                # Our own proposal was aborted: return its requests to the
                # bucket queues so a later segment can re-propose them.
                self.buckets.resurrect(proposed.requests)
        else:
            self.batches_committed += 1
            for request in value.requests:
                self.buckets.mark_delivered(request)
                self.watermarks.note_delivered(request.rid.client, request.rid.timestamp)
        self._after_commit()

    def _apply_transferred_entry(self, sn: SeqNr, entry: LogEntry, epoch: EpochNr) -> None:
        """Apply a state-transferred log entry (same effects as SB-DELIVER)."""
        if self.log.has_entry(sn):
            return
        self.restore_entry(sn, entry, epoch)
        if self.storage is not None:
            self.storage.record_commit(sn, entry, epoch)

    def restore_entry(self, sn: SeqNr, entry: LogEntry, epoch: EpochNr) -> None:
        """Apply one already-persisted entry without re-persisting it.

        The recovery manager replays snapshot and WAL entries through this
        method; the bookkeeping mirrors SB-DELIVER (delivered sets, client
        watermarks, commit counters) minus the persist hook and the
        delivery/epoch advancement, which recovery drives itself.
        """
        if self.log.has_entry(sn):
            return
        self.log.commit(sn, entry, epoch, self.sim.now)
        if not is_nil(entry):
            self.batches_committed += 1
            for request in entry.requests:
                self.buckets.mark_delivered(request)
                self.watermarks.note_delivered(request.rid.client, request.rid.timestamp)

    def _after_commit(self) -> None:
        """Advance contiguous delivery and epoch state after any commit."""
        delivered = self.log.advance_delivery(self.sim.now)
        if delivered:
            if self.config.send_client_responses:
                self._send_delivery_responses(delivered)
            if self.tracer is not None:
                self.tracer.on_deliver_batch(self.sim.now, self.node_id, delivered)
            on_deliver = self.on_deliver
            if on_deliver is not None:
                node_id = self.node_id
                for item in delivered:
                    on_deliver(node_id, item)
        # Epoch transitions: the current epoch may now be complete; epochs are
        # processed strictly sequentially (Algorithm 1, line 50).
        while self.manager.epoch_complete(self.current_epoch, self.log) and not self.crashed:
            finished = self.current_epoch
            activation = self.manager.finish_epoch(finished, self.log)
            self.checkpoints.local_epoch_complete(finished, self.log)
            self.advance_client_watermarks()
            self.epochs_completed += 1
            if activation is not None and (activation[0] or activation[1]):
                self._on_membership_activation(finished + 1, *activation)
                if self.retired:
                    return
            self._start_epoch(finished + 1)

    # ======================================================= dynamic membership
    def _on_membership_activation(
        self, epoch: EpochNr, added: Tuple[NodeId, ...], removed: Tuple[NodeId, ...]
    ) -> None:
        """A sealed epoch changed the membership, effective from ``epoch``.

        Persists the activated view, emits observability events, notifies
        the harness (which boots joining replicas and quiesces removed
        ones), and — when this node itself was removed — retires it.  The
        finished epoch's SB instances have all delivered by construction
        (the epoch is complete), so nothing is left in flight to drain.
        """
        view = self.membership.view_for(epoch)
        if self.storage is not None:
            self.storage.record_membership(epoch, view.nodes)
        if self.tracer is not None:
            self.tracer.on_membership(self.sim.now, self.node_id, epoch, added, removed)
        listener = self.membership_listener
        if listener is not None:
            listener(self.node_id, epoch, view, added, removed)
        if self.node_id not in view and epoch >= self.join_epoch:
            self.retire()

    def retire(self) -> None:
        """Quiesce a replica removed from membership.

        Identical teardown to :meth:`crash` (stop SB instances, state
        transfer, timers) plus the ``retired`` marker the harness and the
        invariant checkers use to distinguish a clean removal from a fault.
        The node's delivered log remains a valid prefix; it just stops
        extending it.
        """
        if self.retired:
            return
        self.retired = True
        self.crash()

    def advance_client_watermarks(self) -> None:
        """One epoch transition's worth of Section 3.7 client bookkeeping:
        advance every client's watermark window and garbage-collect the
        per-client state the advance makes unreachable.  Called on live
        epoch transitions here and by the recovery fast-forward
        (:class:`~repro.storage.recovery.RecoveryManager`) — the pairing is
        a contract; advancing without collecting reintroduces unbounded
        delivered-filter growth."""
        advanced = self.watermarks.advance_epoch()
        if advanced:
            self._gc_client_state(advanced)

    def _gc_client_state(self, advanced) -> None:
        """Garbage-collect per-client state below advanced low watermarks.

        ``advanced`` is the ``(client, old_low, new_low)`` list returned by
        :meth:`ClientWatermarks.advance_epoch`.  Timestamps below the new
        watermark can never be validly resubmitted (the validator rejects
        them before they reach any queue, and re-transmissions are
        re-acknowledged from the watermark itself), so the delivered filter
        and the signature-verification cache no longer need to remember
        them — without this both grow linearly for the lifetime of a run.
        """
        dropped = 0
        for client, old_low, new_low in advanced:
            dropped += self.buckets.forget_delivered_below(client, old_low, new_low)
            dropped += self.validator.forget_below(client, old_low, new_low)
        self.client_state_gc_entries += dropped

    # ============================================================ checkpointing
    def _on_stable_checkpoint(self, epoch: EpochNr, certificate) -> None:
        """Garbage-collect the epoch's instances once its checkpoint is stable,
        and persist the certificate (which compacts the WAL below it)."""
        if self.tracer is not None:
            self.tracer.on_checkpoint(self.sim.now, self.node_id, epoch)
        self.orderer.stop_epoch(epoch)
        if self.storage is not None:
            self.storage.record_stable_checkpoint(certificate)

    def _maybe_request_state_transfer(self, checkpoint_epoch: EpochNr) -> None:
        """A stable checkpoint ahead of us means we fell behind: catch up."""
        if checkpoint_epoch > self.current_epoch:
            self.state_transfer.request_missing(
                self.current_epoch, checkpoint_epoch, self._peer_nodes()
            )
        elif (
            self._catchup_aggressive
            and checkpoint_epoch == self.current_epoch
            and self.checkpoints.stable_checkpoint(checkpoint_epoch) is not None
            and not self.manager.epoch_complete(checkpoint_epoch, self.log)
        ):
            # Post-restart: the current epoch is provably decided (stable
            # checkpoint) but our log has holes we can no longer fill via
            # SB — the instances were garbage collected at the peers.
            # Force a transfer even if an earlier request is in flight.
            self.state_transfer.request_missing(
                checkpoint_epoch, checkpoint_epoch, self._peer_nodes(), force=True
            )
        elif (
            self.config.stalled_catchup_grace > 0
            and self._wedge_timer is None
            and checkpoint_epoch == self.current_epoch
            and self.checkpoints.stable_checkpoint(checkpoint_epoch) is not None
            and not self.manager.epoch_complete(checkpoint_epoch, self.log)
        ):
            # Same wedge outside the restart path: persistent message loss
            # left holes in an epoch the peers have already garbage
            # collected.  The in-flight commits get one grace period to
            # land; if the epoch is still incomplete afterwards only a
            # transfer can complete it.
            self._wedge_timer = self.sim.schedule(
                self.config.stalled_catchup_grace,
                lambda: self._catchup_if_wedged(checkpoint_epoch),
            )

    def _catchup_if_wedged(self, epoch: EpochNr) -> None:
        """Grace period expired: force a transfer if the epoch is still stuck."""
        self._wedge_timer = None
        if self.crashed or epoch != self.current_epoch:
            return
        if self.manager.epoch_complete(epoch, self.log):
            return
        if self.checkpoints.stable_checkpoint(epoch) is None:
            return
        self.state_transfer.request_missing(epoch, epoch, self._peer_nodes(), force=True)

    # ======================================================= instance messages
    def _send_instance_message(self, dst: NodeId, instance_id: InstanceId, payload: object) -> None:
        self.network.send(self.node_id, dst, InstanceMessage(instance_id=instance_id, payload=payload))

    def _local_instance_message(self, instance_id: InstanceId, payload: object) -> None:
        """Local short-circuit for a node's messages to itself (no NIC cost)."""
        self.sim.call_soon(
            lambda: self._dispatch_instance_message(self.node_id, instance_id, payload)
        )

    def _handle_instance_message(self, src: NodeId, message: InstanceMessage) -> None:
        self._dispatch_instance_message(src, message.instance_id, message.payload)

    def _dispatch_instance_message(self, src: NodeId, instance_id: InstanceId, payload: object) -> None:
        if self.crashed:
            return
        if self.orderer.handle_message(instance_id, src, payload):
            return
        epoch = instance_id[0]
        if epoch > self.current_epoch:
            # Future epoch: buffer until we get there; if we are far behind,
            # also trigger state transfer for the missing epochs.
            self._pending_messages.setdefault(epoch, []).append(
                (src, InstanceMessage(instance_id=instance_id, payload=payload))
            )
            if epoch > self.current_epoch + 1:
                self._maybe_request_state_transfer(epoch - 1)
        # Messages for garbage-collected epochs are stale and dropped.

    # ================================================================= queries
    def delivered_count(self) -> int:
        return self.log.total_delivered_requests

    def pending_requests(self) -> int:
        return self.buckets.total_pending()

    def invalid_signatures_rejected(self) -> int:
        """Total forged signatures this node rejected, across every layer:
        client request signatures (validator), checkpoint votes, and SB
        protocol votes (e.g. HotStuff partial signatures)."""
        return (
            self.validator.stats.bad_signature
            + self.checkpoints.invalid_signatures_rejected
            + self.invalid_votes_rejected
        )
