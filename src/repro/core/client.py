"""SMR clients (Section 4.3).

A client signs each request, targets it at the node currently leading the
bucket the request maps to (plus the nodes projected to lead that bucket in
the next two epochs), and considers the request delivered once it has
collected ``f+1`` matching responses.  On every epoch transition — learned
through quorum-confirmed bucket-assignment messages from the nodes — the
client re-submits all still-undelivered requests to the new leaders, which
guarantees that a correct leader eventually receives every request
(liveness, SMR4).

Epoch-driven resubmission alone cannot recover a request whose messages
were *dropped* (lossy link, partition) while the bucket assignment stays
put, so clients optionally run a retry loop (``ISSConfig.client_retry_*``):
each request arms a per-request timeout; on expiry the request is resent to
the current targets and the timeout backs off exponentially (deterministic
seeded jitter, capped).  Resubmissions reuse the original request id, so
they stay inside the client's watermark window by construction and are
absorbed by the nodes' idempotent bucket queues when the original did make
it through.  Retries are off by default (``client_retry_timeout = 0``
schedules nothing), keeping existing schedules bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..crypto.signatures import KeyStore
from ..runtime.api import Scheduler, Timer, Transport
from .buckets import assignment_for_epoch, bucket_of
from .config import ISSConfig
from .messages import (
    BucketAssignmentMsg,
    ClientRequestMsg,
    ClientResponseBatchMsg,
    ClientResponseMsg,
    client_endpoint,
)
from .types import BucketId, ClientId, EpochNr, NodeId, Request, RequestId
from .validation import sign_request

#: Callback fired when the client has collected f+1 responses for a request:
#: ``fn(client_id, request, submit_time, completion_time)``.
CompletionListener = Callable[[ClientId, Request, float, float], None]


@dataclass
class _PendingRequest:
    request: Request
    submitted_at: float
    responders: Set[NodeId] = field(default_factory=set)
    completed: bool = False


class Client:
    """One client process submitting requests to the ISS deployment."""

    def __init__(
        self,
        client_id: ClientId,
        config: ISSConfig,
        sim: Scheduler,
        network: Transport,
        key_store: KeyStore,
        on_complete: Optional[CompletionListener] = None,
        sign_requests: Optional[bool] = None,
        tracer=None,
        first_timestamp: int = 0,
    ):
        self.client_id = client_id
        self.config = config
        self.sim = sim
        self.network = network
        self.key_store = key_store
        self.on_complete = on_complete
        #: Observability hook (``repro.obs.RequestTracer``); ``None`` keeps
        #: every instrumentation site a single attribute test.
        self.tracer = tracer
        self.sign_requests = (
            config.client_signatures if sign_requests is None else sign_requests
        )
        self.endpoint = client_endpoint(client_id)
        #: ``first_timestamp`` lets a re-launched client (live CLI) resume
        #: after its own delivered prefix instead of reusing timestamps the
        #: node-side watermarks have already passed; it must equal the
        #: client's contiguous completed count or the window gate misfires.
        self._next_timestamp = first_timestamp
        self._pending: Dict[RequestId, _PendingRequest] = {}
        #: Lowest timestamp not yet completed — the client-side mirror of the
        #: node-side low watermark, which is anchored at the *contiguous*
        #: delivered prefix.  Gating submission on this (rather than the
        #: pending count) keeps every emitted timestamp inside the node-side
        #: window even when completions land out of order.
        self._lowest_uncompleted = first_timestamp
        #: Completed timestamps above :attr:`_lowest_uncompleted` (the
        #: out-of-order completion buffer; drained as the prefix advances).
        self._completed_ahead: Set[int] = set()
        #: Latest quorum-confirmed bucket assignment and its epoch.
        self._assignment_epoch: Optional[EpochNr] = None
        self._assignment: Dict[BucketId, NodeId] = {}
        #: Votes for not-yet-confirmed assignments: epoch -> assignment -> nodes.
        self._assignment_votes: Dict[Tuple[EpochNr, Tuple], Set[NodeId]] = {}
        #: Leaderset implied by the confirmed assignment (for projections).
        self._known_leaders: List[NodeId] = []
        #: Cached bucket→leader projections for future epochs.
        self._projections: Dict[EpochNr, Dict[BucketId, NodeId]] = {}
        self.requests_submitted = 0
        self.requests_completed = 0
        #: Resubmissions performed by the retry loop (0 with retries off).
        self.requests_retried = 0
        #: Per-request retry timers (empty with retries off).
        self._retry_timers: Dict[RequestId, Timer] = {}
        #: Deterministic per-client jitter source, created only when retries
        #: are enabled so a retry-free run draws no extra randomness.
        self._retry_rng: Optional[random.Random] = None
        if config.client_retry_timeout > 0:
            self._retry_rng = random.Random(
                (config.random_seed * 1_000_003) ^ (0xC11E47 + client_id * 7919)
            )
        network.register(self.endpoint, self.on_message)

    # ------------------------------------------------------------ submission
    def submit(self, payload: bytes) -> Request:
        """Create, sign and send a new request; returns the request object."""
        rid = RequestId(client=self.client_id, timestamp=self._next_timestamp)
        self._next_timestamp += 1
        request = Request(rid=rid, payload=payload)
        if self.sign_requests:
            request = sign_request(self.key_store, request)
        self._pending[rid] = _PendingRequest(request=request, submitted_at=self.sim.now)
        self.requests_submitted += 1
        if self.tracer is not None:
            self.tracer.on_submit(self.sim.now, self.client_id, rid)
        self._send_request(request)
        if self._retry_rng is not None:
            self._arm_retry(rid, attempt=0)
        return request

    def _track_pending(self, request: Request) -> None:
        """Register a request built outside :meth:`submit` as pending (used
        by misbehaving subclasses that craft their own request ids)."""
        self._pending[request.rid] = _PendingRequest(
            request=request, submitted_at=self.sim.now
        )
        self.requests_submitted += 1

    def _send_request(self, request: Request) -> None:
        targets = self._targets_for(request.rid)
        message = ClientRequestMsg(request=request)
        for node in targets:
            self.network.send(self.endpoint, node, message)

    # ----------------------------------------------------------- retry loop
    def _arm_retry(self, rid: RequestId, attempt: int) -> None:
        """Schedule the next per-request timeout (jittered exponential
        backoff, capped at ``client_retry_max_timeout``)."""
        delay = self._retry_delay(attempt)
        self._retry_timers[rid] = self.sim.schedule(
            delay, lambda: self._on_retry_timeout(rid, attempt)
        )

    def _retry_delay(self, attempt: int) -> float:
        config = self.config
        delay = min(
            config.client_retry_max_timeout,
            config.client_retry_timeout * (config.client_retry_backoff ** attempt),
        )
        if config.client_retry_jitter > 0:
            delay *= 1.0 + config.client_retry_jitter * self._retry_rng.random()
        return delay

    def _on_retry_timeout(self, rid: RequestId, attempt: int) -> None:
        """The request outlived its timeout: resend it and back off.

        Resending reuses the original request id, so the resubmission is
        inside the watermark window by construction (the window gates
        *new* timestamps) and idempotent at the nodes if the original
        arrived after all.  The loop runs until the request completes —
        the backoff cap bounds the resend rate, not the attempt count
        (giving up would abandon SMR liveness for that request).
        """
        pending = self._pending.get(rid)
        if pending is None or pending.completed:
            self._retry_timers.pop(rid, None)
            return
        self.requests_retried += 1
        if self.tracer is not None:
            self.tracer.on_retry(self.sim.now, self.client_id, rid, attempt + 1)
        self._send_request(pending.request)
        self._arm_retry(rid, attempt + 1)

    def _cancel_retry(self, rid: RequestId) -> None:
        timer = self._retry_timers.pop(rid, None)
        if timer is not None:
            timer.cancel()

    def _targets_for(self, rid: RequestId) -> List[NodeId]:
        """Current leader of the request's bucket plus the two projected next
        leaders (Section 4.3); all nodes when no assignment is known yet."""
        if self._assignment_epoch is None or not self._known_leaders:
            return list(range(self.config.num_nodes))
        bucket = bucket_of(rid, self.config.num_buckets)
        targets: List[NodeId] = []
        current = self._assignment.get(bucket)
        if current is not None:
            targets.append(current)
        for offset in (1, 2):
            projected = self._project_leader(bucket, self._assignment_epoch + offset)
            if projected is not None and projected not in targets:
                targets.append(projected)
        return targets or list(range(self.config.num_nodes))

    def _project_leader(self, bucket: BucketId, epoch: EpochNr) -> Optional[NodeId]:
        """Project the bucket's leader in a future epoch, assuming the
        leaderset stays what the last confirmed assignment implied."""
        if not self._known_leaders:
            return None
        projection = self._projections.get(epoch)
        if projection is None:
            assignment = assignment_for_epoch(
                epoch, self._known_leaders, self.config.num_nodes, self.config.num_buckets
            )
            projection = {
                b: leader for leader, buckets in assignment.items() for b in buckets
            }
            self._projections[epoch] = projection
        return projection.get(bucket)

    # -------------------------------------------------------------- messages
    def on_message(self, src: NodeId, message: object) -> None:
        if isinstance(message, ClientResponseBatchMsg):
            # Aggregated acknowledgements: each entry counts exactly as an
            # individually received response for its request.
            for rid, _sn in message.entries:
                self._note_response(src, rid)
        elif isinstance(message, ClientResponseMsg):
            self._note_response(src, message.rid)
        elif isinstance(message, BucketAssignmentMsg):
            self._on_assignment(src, message)

    def _note_response(self, src: NodeId, rid: RequestId) -> None:
        pending = self._pending.get(rid)
        if pending is None or pending.completed:
            return
        pending.responders.add(src)
        if len(pending.responders) >= self.config.weak_quorum:
            pending.completed = True
            self.requests_completed += 1
            if self.tracer is not None:
                self.tracer.on_quorum(self.sim.now, self.client_id, rid)
            self._note_completed(rid.timestamp)
            if self.on_complete is not None:
                self.on_complete(
                    self.client_id, pending.request, pending.submitted_at, self.sim.now
                )
            del self._pending[rid]
            if self._retry_timers:
                self._cancel_retry(rid)
            self._on_request_completed(pending.request)

    def _note_completed(self, timestamp: int) -> None:
        """Advance the contiguous-completion prefix over ``timestamp``."""
        self._completed_ahead.add(timestamp)
        lowest = self._lowest_uncompleted
        completed = self._completed_ahead
        while lowest in completed:
            completed.discard(lowest)
            lowest += 1
        self._lowest_uncompleted = lowest

    def _on_request_completed(self, request: Request) -> None:
        """Hook fired after a request completes (subclass extension point)."""

    def _on_assignment(self, src: NodeId, message: BucketAssignmentMsg) -> None:
        if self._assignment_epoch is not None and message.epoch <= self._assignment_epoch:
            return
        key = (message.epoch, message.assignment)
        votes = self._assignment_votes.setdefault(key, set())
        votes.add(src)
        if len(votes) < self.config.weak_quorum:
            return
        # Quorum-confirmed: adopt the new assignment and re-submit everything
        # still pending so the new leaders are guaranteed to have it.
        self._assignment_epoch = message.epoch
        self._assignment = dict(message.assignment)
        self._known_leaders = sorted(set(self._assignment.values()))
        self._projections = {}
        self._assignment_votes = {
            k: v for k, v in self._assignment_votes.items() if k[0] > message.epoch
        }
        tracer = self.tracer
        for pending in self._pending.values():
            if not pending.completed:
                if tracer is not None:
                    tracer.on_resubmit(self.sim.now, self.client_id, pending.request.rid)
                self._send_request(pending.request)

    # -------------------------------------------------------------- queries
    def pending_count(self) -> int:
        return len(self._pending)

    def outstanding_within_watermarks(self) -> bool:
        """Whether the client may submit another request without leaving its
        watermark window.

        The node-side window is ``[low, low + window)`` with ``low`` anchored
        at the *contiguous* delivered prefix of the client's timestamps, so
        the client gates on its own contiguous-completion prefix: the next
        timestamp must stay below ``lowest_uncompleted + window``.  Gating on
        the pending count instead (the previous approximation) undercounts
        the outstanding *span* when completions land out of order — one stuck
        request plus a stream of newer completions let the client emit
        timestamps beyond every node's window, and with no resubmission path
        on rejection those requests wedge until the next epoch's bucket
        reassignment (or forever, if the assignment never changes).

        The gate is an approximation in one direction only: the node-side
        ``low`` trails this client-side prefix by at most the completions of
        the current epoch (it advances only at epoch transitions), so the
        overshoot is bounded by one epoch of progress and healed by the
        epoch-driven resubmission — unlike the pending-count gate, whose
        overshoot was unbounded.
        """
        return (
            self._next_timestamp
            < self._lowest_uncompleted + self.config.client_watermark_window
        )
