"""The Manager module (Section 4.1): epochs, leadersets and segments.

The Manager owns the high-level log-partitioning logic: it evaluates the
leader-selection policy at every epoch transition, caps the leaderset so
that each segment keeps at least ``min_segment_size`` sequence numbers
(Table 1), rotates which nodes get dropped by that cap for fairness, and
builds the epoch's segment descriptors (sequence-number interleave plus
bucket assignment).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .config import ISSConfig
from .leader_policy import FailureHistory, LeaderSelectionPolicy, make_policy
from .log import Log
from .segment import (
    LAYOUT_ROUND_ROBIN,
    build_segments,
    epoch_seq_nrs,
    validate_epoch_partition,
)
from .types import EpochNr, NodeId, SegmentDescriptor


class EpochManager:
    """Computes, for every epoch, the leaderset and segment descriptors."""

    def __init__(
        self,
        config: ISSConfig,
        policy: Optional[LeaderSelectionPolicy] = None,
        layout: str = LAYOUT_ROUND_ROBIN,
        paranoid_checks: bool = True,
        membership=None,
    ):
        self.config = config
        self.policy = policy if policy is not None else make_policy(config)
        self.layout = layout
        self.paranoid_checks = paranoid_checks
        self.history = FailureHistory()
        #: Optional ``repro.core.membership.MembershipTracker``; when set,
        #: leadersets and segments are computed from the epoch's committed
        #: membership view instead of the static genesis configuration.
        self.membership = membership
        #: Segment descriptors of every epoch started so far.
        self._segments: Dict[EpochNr, List[SegmentDescriptor]] = {}
        self._leaders: Dict[EpochNr, List[NodeId]] = {}

    # --------------------------------------------------------------- leaders
    def leaders_for(self, epoch: EpochNr) -> List[NodeId]:
        """The (possibly capped) leaderset of ``epoch``.

        The policy's leaderset is capped at ``epoch_length / min_segment_size``
        leaders; when the cap bites, the window of retained leaders rotates
        with the epoch number so that every policy-selected node still leads
        infinitely often (preserving the liveness argument of Section 3.4).
        """
        if epoch in self._leaders:
            return self._leaders[epoch]
        if self.membership is not None:
            view = self.membership.view_for(epoch)
            self.policy.set_membership(view.nodes, view.max_faulty)
            fallback = list(view.nodes)
        else:
            fallback = sorted(range(self.config.num_nodes))
        selected = self.policy.leaders(epoch, self.history)
        if not selected:
            selected = fallback
        cap = self.config.max_leaders()
        if len(selected) > cap:
            start = (epoch * cap) % len(selected)
            rotated = selected[start:] + selected[:start]
            selected = sorted(rotated[:cap])
        self._leaders[epoch] = selected
        return selected

    # -------------------------------------------------------------- segments
    def segments_for(self, epoch: EpochNr) -> List[SegmentDescriptor]:
        """Build (or return the cached) segment descriptors of ``epoch``."""
        if epoch in self._segments:
            return self._segments[epoch]
        leaders = self.leaders_for(epoch)
        active_nodes = (
            self.membership.view_for(epoch).nodes if self.membership is not None else None
        )
        segments = build_segments(
            epoch=epoch,
            leaders=leaders,
            num_nodes=self.config.num_nodes,
            epoch_length=self.config.epoch_length,
            num_buckets=self.config.num_buckets,
            layout=self.layout,
            active_nodes=active_nodes,
        )
        if self.paranoid_checks:
            validate_epoch_partition(
                segments, epoch, self.config.epoch_length, self.config.num_buckets
            )
        self._segments[epoch] = segments
        return segments

    def segments_of_started_epoch(self, epoch: EpochNr) -> Optional[List[SegmentDescriptor]]:
        return self._segments.get(epoch)

    # ---------------------------------------------------------- epoch close
    def epoch_complete(self, epoch: EpochNr, log: Log) -> bool:
        """True when the log holds an entry for every position of ``epoch``."""
        return log.is_complete(epoch_seq_nrs(epoch, self.config.epoch_length))

    def finish_epoch(self, epoch: EpochNr, log: Log):
        """Fold the finished epoch into the failure history and the policy.

        Under dynamic membership this also *seals* the epoch: its committed
        ConfigTxs are folded into the next epoch's view.  Returns the
        ``(added, removed)`` node tuples of that activation (both empty when
        nothing changed), or ``None`` without a membership tracker.
        """
        segments = self.segments_for(epoch)
        self.history.record_epoch(epoch, segments, log)
        self.policy.epoch_finished(epoch, self.history)
        if self.membership is not None:
            return self.membership.seal_epoch(epoch)
        return None

    # ------------------------------------------------------------- reporting
    def proposal_interval(self, epoch: EpochNr) -> float:
        """Per-leader spacing implied by the deployment-wide batch rate."""
        if self.config.batch_rate is None:
            return 0.0
        leaders = self.leaders_for(epoch)
        return len(leaders) / self.config.batch_rate

    def leaderset_sizes(self) -> Dict[EpochNr, int]:
        return {epoch: len(leaders) for epoch, leaders in self._leaders.items()}
