"""Hashing helpers used across the reproduction."""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

Bytes = Union[bytes, bytearray, memoryview]


def sha256(*parts: Bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def hash_int(value: int, width: int = 8) -> bytes:
    """Hash-friendly little-endian encoding of a non-negative integer."""
    return value.to_bytes(width, "little", signed=False)


def combine_digests(digests: Iterable[bytes]) -> bytes:
    """Combine an ordered sequence of digests into a single digest."""
    h = hashlib.sha256()
    for digest in digests:
        h.update(digest)
    return h.digest()
