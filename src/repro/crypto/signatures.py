"""Simulated public-key signatures.

The paper uses 256-bit ECDSA for client request signatures and signed
protocol messages (checkpoints, view changes).  Real elliptic-curve
cryptography is irrelevant to reproducing the *protocol* behaviour, so this
module provides deterministic hash-based stand-ins with the same interface
and failure modes:

* a signature produced by key ``k`` over message ``m`` verifies only against
  ``k`` and ``m`` (no forgery inside the simulation),
* signatures have a realistic wire size (64 bytes, matching ECDSA P-256),
* an optional CPU cost model lets experiments charge virtual time per
  signing / verification operation.

This is a substitution documented in DESIGN.md §4.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Wire size of a simulated signature (matches ECDSA P-256).
SIGNATURE_SIZE = 64


class SignatureError(ValueError):
    """Raised when signature verification fails in strict contexts."""


@dataclass(frozen=True)
class KeyPair:
    """A simulated key pair.

    The "private key" is a random-looking secret derived from the identity
    and a deployment seed; the "public key" is its hash.  Only the KeyStore
    can sign for an identity, so unforgeability holds within a simulation.
    """

    identity: int
    secret: bytes
    public: bytes


class KeyStore:
    """Deployment-wide registry of key pairs, indexed by process identity.

    Nodes and clients share one key store per deployment (standing in for the
    PKI assumed in Section 2.1).  Verification only needs the public half, so
    adversarial code paths cannot mint signatures for identities they do not
    own as long as they only call :meth:`verify`.
    """

    def __init__(self, deployment_seed: int = 0):
        self._seed = deployment_seed
        self._keys: Dict[int, KeyPair] = {}
        #: Expected signature per (identity, message), populated by
        #: :meth:`verify` (protocol messages such as checkpoints, which every
        #: node re-verifies): the HMAC is computed once and re-verifications
        #: reduce to a dict hit + constant-time comparison.  Sound because
        #: signing here is deterministic.  The request path goes through
        #: :meth:`verify_digest` instead, which memoizes only the outcome and
        #: never retains message bytes.
        self._expected: Dict[Tuple[int, bytes], bytes] = {}
        #: Memoized verification outcomes keyed by (identity, digest,
        #: signature) — the O(1) re-verification path used by
        #: :class:`repro.core.validation.RequestValidator`.
        self._verified: Dict[Tuple[int, bytes, bytes], bool] = {}

    def _derive(self, identity: int) -> KeyPair:
        seed_material = self._seed.to_bytes(8, "little", signed=True) + identity.to_bytes(
            8, "little", signed=True
        )
        secret = hashlib.sha256(b"secret:" + seed_material).digest()
        public = hashlib.sha256(b"public:" + secret).digest()
        return KeyPair(identity=identity, secret=secret, public=public)

    def key_for(self, identity: int) -> KeyPair:
        if identity not in self._keys:
            self._keys[identity] = self._derive(identity)
        return self._keys[identity]

    def public_key(self, identity: int) -> bytes:
        return self.key_for(identity).public

    # ------------------------------------------------------------------ api
    def sign(self, identity: int, message: bytes) -> bytes:
        """Sign ``message`` with ``identity``'s key; returns a 64-byte tag."""
        key = self.key_for(identity)
        mac = hmac.new(key.secret, message, hashlib.sha256).digest()
        # Pad to the ECDSA-like wire size so bandwidth accounting is honest.
        return mac + hashlib.sha256(mac).digest()

    def verify(self, identity: int, message: bytes, signature: bytes) -> bool:
        """Check that ``signature`` was produced by ``identity`` over ``message``."""
        if len(signature) != SIGNATURE_SIZE:
            return False
        key = (identity, message)
        expected = self._expected.get(key)
        if expected is None:
            expected = self.sign(identity, message)
            self._expected[key] = expected
        return hmac.compare_digest(expected, signature)

    def verify_digest(
        self,
        identity: int,
        digest: bytes,
        signature: bytes,
        message_fn: Callable[[], bytes],
    ) -> bool:
        """Memoized verification keyed by ``(identity, digest, signature)``.

        ``digest`` must be a collision-resistant digest of the signed message
        (e.g. :meth:`repro.core.types.Request.digest`); ``message_fn`` builds
        the full message bytes and is only invoked on a cache miss.  Repeated
        verification of the same request — on reception, inside proposals,
        and again at commit, across all validators sharing this key store —
        costs one dictionary lookup.
        """
        key = (identity, digest, signature)
        outcome = self._verified.get(key)
        if outcome is None:
            # Compute directly instead of going through :meth:`verify`: the
            # outcome memo makes an (identity, message) entry unreachable, so
            # caching the full message bytes there would be pure retention.
            if len(signature) != SIGNATURE_SIZE:
                outcome = False
            else:
                outcome = hmac.compare_digest(
                    self.sign(identity, message_fn()), signature
                )
            self._verified[key] = outcome
        return outcome

    def verify_or_raise(self, identity: int, message: bytes, signature: bytes) -> None:
        if not self.verify(identity, message, signature):
            raise SignatureError(f"bad signature for identity {identity}")


@dataclass
class CryptoCostModel:
    """Optional CPU cost (virtual seconds) of cryptographic operations.

    The evaluation in the paper is bandwidth-bound, so the default model is
    free; experiments studying CPU-bound setups can charge per-operation
    costs through the harness.
    """

    sign_cost: float = 0.0
    verify_cost: float = 0.0
    threshold_combine_cost: float = 0.0

    def total_verification_cost(self, count: int) -> float:
        return self.verify_cost * count
