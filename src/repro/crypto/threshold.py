"""Simulated BLS-style threshold signatures.

HotStuff quorum certificates aggregate ``2f+1`` partial signatures into one
constant-size certificate (the paper uses BLS via the DEDIS kyber library).
This module reproduces the interface and the properties the protocol relies
on — a certificate verifies only if at least ``threshold`` distinct,
registered signers contributed valid shares over the same message — with a
hash-based construction documented as a substitution in DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from .hashing import sha256
from .signatures import KeyStore

#: Wire size of a combined threshold signature (matches a BLS signature).
THRESHOLD_SIGNATURE_SIZE = 48
#: Wire size of one partial share.
PARTIAL_SIGNATURE_SIZE = 48


class ThresholdError(ValueError):
    """Raised when share combination is attempted with insufficient shares."""


@dataclass(frozen=True)
class PartialSignature:
    """A single signer's share over ``message_digest``."""

    signer: int
    message_digest: bytes
    share: bytes

    def wire_size(self) -> int:
        return PARTIAL_SIGNATURE_SIZE + 8


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined certificate proving ``threshold`` signers signed the digest."""

    message_digest: bytes
    signers: FrozenSet[int]
    proof: bytes

    def wire_size(self) -> int:
        return THRESHOLD_SIGNATURE_SIZE + 8

    def __len__(self) -> int:
        return len(self.signers)


class ThresholdScheme:
    """(t, n) threshold signature scheme over a fixed signer group."""

    def __init__(self, key_store: KeyStore, signers: Iterable[int], threshold: int):
        self.key_store = key_store
        self.signers: Tuple[int, ...] = tuple(sorted(set(signers)))
        if threshold < 1 or threshold > len(self.signers):
            raise ThresholdError(
                f"threshold {threshold} out of range for {len(self.signers)} signers"
            )
        self.threshold = threshold

    # -------------------------------------------------------------- signing
    def sign_share(self, signer: int, message_digest: bytes) -> PartialSignature:
        if signer not in self.signers:
            raise ThresholdError(f"{signer} is not a registered signer")
        share = self.key_store.sign(signer, b"threshold:" + message_digest)[:PARTIAL_SIGNATURE_SIZE]
        return PartialSignature(signer=signer, message_digest=message_digest, share=share)

    def verify_share(self, partial: PartialSignature) -> bool:
        if partial.signer not in self.signers:
            return False
        expected = self.key_store.sign(
            partial.signer, b"threshold:" + partial.message_digest
        )[:PARTIAL_SIGNATURE_SIZE]
        return expected == partial.share

    # ------------------------------------------------------------- combining
    def combine(self, shares: Iterable[PartialSignature]) -> ThresholdSignature:
        """Combine valid shares over the same digest into one certificate."""
        valid: Dict[int, PartialSignature] = {}
        digest = None
        for share in shares:
            if digest is None:
                digest = share.message_digest
            if share.message_digest != digest:
                continue
            if self.verify_share(share):
                valid[share.signer] = share
        if digest is None or len(valid) < self.threshold:
            raise ThresholdError(
                f"need {self.threshold} valid shares, got {len(valid)}"
            )
        signer_set = frozenset(valid.keys())
        proof = sha256(
            digest,
            b"|".join(str(s).encode() for s in sorted(signer_set)),
            b"combined",
        )
        return ThresholdSignature(message_digest=digest, signers=signer_set, proof=proof)

    def verify(self, signature: ThresholdSignature, message_digest: bytes) -> bool:
        """Verify a combined certificate against a message digest."""
        if signature.message_digest != message_digest:
            return False
        if len(signature.signers) < self.threshold:
            return False
        if not signature.signers.issubset(set(self.signers)):
            return False
        expected = sha256(
            message_digest,
            b"|".join(str(s).encode() for s in sorted(signature.signers)),
            b"combined",
        )
        return expected == signature.proof
