"""Simulated cryptography: signatures, Merkle trees, threshold signatures."""

from .hashing import sha256, hash_int, combine_digests
from .signatures import KeyStore, KeyPair, SignatureError, CryptoCostModel, SIGNATURE_SIZE
from .merkle import MerkleTree, MerkleProof, merkle_root
from .threshold import (
    ThresholdScheme,
    ThresholdSignature,
    PartialSignature,
    ThresholdError,
)

__all__ = [
    "sha256",
    "hash_int",
    "combine_digests",
    "KeyStore",
    "KeyPair",
    "SignatureError",
    "CryptoCostModel",
    "SIGNATURE_SIZE",
    "MerkleTree",
    "MerkleProof",
    "merkle_root",
    "ThresholdScheme",
    "ThresholdSignature",
    "PartialSignature",
    "ThresholdError",
]
