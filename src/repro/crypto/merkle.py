"""Merkle trees for checkpoint digests and state-transfer proofs.

ISS checkpoints (Section 3.5) carry ``D(e)``, the Merkle-tree root of the
digests of all batches committed in epoch ``e``.  State transfer uses the
same tree to prove that fetched log entries belong to a stable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .hashing import sha256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
_EMPTY_ROOT = sha256(b"empty-merkle-tree")


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf: the sibling hashes from leaf to root."""

    leaf_index: int
    leaf_count: int
    #: Sibling digests bottom-up, each tagged with whether it sits on the left.
    path: Tuple[Tuple[bytes, bool], ...]


class MerkleTree:
    """A static Merkle tree over an ordered sequence of leaf digests."""

    def __init__(self, leaves: Sequence[bytes]):
        self._leaves: List[bytes] = [sha256(_LEAF_PREFIX, leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = self._build_levels(self._leaves)

    @staticmethod
    def _build_levels(leaves: List[bytes]) -> List[List[bytes]]:
        if not leaves:
            return [[_EMPTY_ROOT]]
        levels = [list(leaves)]
        current = leaves
        while len(current) > 1:
            nxt: List[bytes] = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else current[i]
                nxt.append(sha256(_NODE_PREFIX, left, right))
            levels.append(nxt)
            current = nxt
        return levels

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path: List[Tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index >= len(level):
                sibling_index = position  # odd node duplicated
            sibling_is_left = sibling_index < position
            path.append((level[sibling_index], sibling_is_left))
            position //= 2
        return MerkleProof(leaf_index=index, leaf_count=len(self._leaves), path=tuple(path))

    @staticmethod
    def verify(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
        """Verify that ``leaf`` (raw digest, pre-hash) is included under ``root``."""
        if proof.leaf_count == 0:
            return False
        current = sha256(_LEAF_PREFIX, leaf)
        for sibling, sibling_is_left in proof.path:
            if sibling_is_left:
                current = sha256(_NODE_PREFIX, sibling, current)
            else:
                current = sha256(_NODE_PREFIX, current, sibling)
        return current == root


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience wrapper: the Merkle root of an ordered digest sequence."""
    return MerkleTree(leaves).root
