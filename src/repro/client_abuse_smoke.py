"""Malicious-client smoke test (``python -m repro.client_abuse_smoke``).

Runs the pinned client-abuse scenario — 4 PBFT nodes over the scaled WAN
with wire batching on, 8 clients of which three attack from the start
(client 7 abuses watermarks, client 6 floods duplicates, client 5 forges
client 0's identity) — and checks the Section 3.7 defences end to end:

* **correct clients are unharmed**: every request of every correct client
  completes,
* **safety**: all nodes deliver identical request sequences over every
  shared position, with no request delivered twice,
* **containment**: every abusive submission class is rejected and counted
  in ``RunReport.client_abuse`` — far-out timestamps at the watermark
  window, forgeries at the signature check (attributed to the claimed
  victim), flood copies at the idempotent bucket queues — and per-client
  node state stays bounded (watermark out-of-order buffers capped by the
  window, delivered filters garbage collected below advanced watermarks),
* **determinism**: the delivered-sequence digest, the rejection counters
  and the simulator/network totals must match the golden trace in
  ``tests/data/golden_trace_client_abuse.json`` bit for bit — an abusive
  schedule is still a seeded schedule.

Exit code 1 on any violation; wired into ``make client-abuse-smoke`` and
the CI driver (``benchmarks/run_perf_smoke.py``).  On success the figures
are also written to ``BENCH_client_abuse.json`` in the repository root so
the abuse-resilience trajectory is tracked across PRs.  Pass
``--update-golden`` after an intentional schedule-affecting change.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Dict, Optional

from . import golden, smokelib
from .core.config import NetworkConfig, WorkloadConfig, PROTOCOL_PBFT
from .core.state_transfer import DEFAULT_PROBE_STAGGER
from .core.types import Batch
from .harness.runner import Deployment
from .harness.scenarios import (
    CLIENT_ABUSE_WINDOW,
    DEFAULT_FLUSH_INTERVAL,
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    iss_config,
    prefixes_identical,
)
from .obs import ObsConfig
from .sim.faults import (
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    MaliciousClientSpec,
)

#: The pinned abusive scenario (keep in sync with the golden trace).
SCENARIO = dict(
    protocol=PROTOCOL_PBFT,
    num_nodes=4,
    random_seed=17,
    num_clients=8,
    total_rate=400.0,
    duration=12.0,
    window=CLIENT_ABUSE_WINDOW,
    watermark_abuser=7,
    duplicate_flooder=6,
    forger=5,
    forgery_victim=0,
)


def golden_path() -> Path:
    """Location of the client-abuse-determinism golden trace."""
    return smokelib.golden_data_path("golden_trace_client_abuse.json")


def bench_output_path() -> Path:
    """Location of the ``BENCH_client_abuse.json`` artefact (repo root)."""
    return smokelib.bench_output_path("BENCH_client_abuse.json")


def build_deployment() -> Deployment:
    """Build the pinned scenario (all env-movable knobs set explicitly)."""
    config = iss_config(
        SCENARIO["protocol"],
        SCENARIO["num_nodes"],
        random_seed=SCENARIO["random_seed"],
        client_watermark_window=SCENARIO["window"],
        send_client_responses=True,
    )
    network_config = NetworkConfig(
        bandwidth_bps=SCALED_BANDWIDTH_BPS,
        batch_flush_interval=DEFAULT_FLUSH_INTERVAL,
    )
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
        payload_size=PAYLOAD_BYTES,
    )
    return Deployment(
        config,
        network_config=network_config,
        workload=workload,
        malicious_client_specs=[
            MaliciousClientSpec(
                client=SCENARIO["watermark_abuser"], behaviour=CLIENT_WATERMARK_ABUSE
            ),
            MaliciousClientSpec(
                client=SCENARIO["duplicate_flooder"], behaviour=CLIENT_DUPLICATE_FLOOD
            ),
            MaliciousClientSpec(
                client=SCENARIO["forger"],
                behaviour=CLIENT_FORGED_SIGNATURE,
                victim=SCENARIO["forgery_victim"],
            ),
        ],
        probe_stagger=DEFAULT_PROBE_STAGGER,
        obs=ObsConfig.disabled(),
    )


def run_smoke() -> Dict[str, object]:
    """Run the scenario once and return the figures the golden trace pins."""
    deployment = build_deployment()
    result = deployment.run()
    report = result.report
    abusive_ids = {spec.client for spec in deployment.malicious_client_specs}
    correct_clients = [c for c in result.clients if c.client_id not in abusive_ids]
    sample = result.nodes[0]
    trace = golden.delivered_trace(sample)
    delivered_rids = [
        request.rid
        for sn in range(sample.log.first_undelivered)
        for entry in [sample.log.entry(sn)]
        if isinstance(entry, Batch)
        for request in entry.requests
    ]
    abuse = report.client_abuse
    per_client = abuse["per_client"]
    abusers = abuse["abusers"]

    def rejected(client: int, reason: str) -> int:
        return per_client.get(client, {}).get(reason, 0)

    return {
        "scenario": dict(SCENARIO),
        "engine": report.engine,
        "completed": report.completed,
        "correct_all_complete": all(
            c.requests_completed == c.requests_submitted for c in correct_clients
        ),
        "prefixes_identical": prefixes_identical(result.nodes),
        "no_double_delivery": len(delivered_rids) == len(set(delivered_rids)),
        "out_of_window_sent": abusers[SCENARIO["watermark_abuser"]][
            "out_of_window_sent"
        ],
        "watermark_rejections": rejected(
            SCENARIO["watermark_abuser"], "outside_watermarks"
        ),
        "duplicates_sent": abusers[SCENARIO["duplicate_flooder"]]["duplicates_sent"],
        "duplicates_absorbed": rejected(SCENARIO["duplicate_flooder"], "duplicates"),
        "forged_sent": abusers[SCENARIO["forger"]]["forged_sent"],
        "forgeries_rejected": rejected(SCENARIO["forgery_victim"], "bad_signature"),
        "gc_entries_total": int(
            report.extra.get("client_state_gc_entries_total", 0.0)
        ),
        "out_of_order_max": max(
            node.watermarks.out_of_order_entries() for node in result.nodes
        ),
        "trace_len": len(trace),
        "trace_sha256": hashlib.sha256(repr(trace).encode()).hexdigest(),
        "events_executed": deployment.sim.events_executed,
        "messages_sent": deployment.network.stats.messages_sent,
    }


#: Figure keys that must match the golden trace exactly.
PINNED_KEYS = (
    "completed",
    "out_of_window_sent",
    "watermark_rejections",
    "duplicates_sent",
    "duplicates_absorbed",
    "forged_sent",
    "forgeries_rejected",
    "gc_entries_total",
    "trace_len",
    "trace_sha256",
    "events_executed",
    "messages_sent",
)


def check_against_golden(figures: Dict[str, object], path: Path) -> Optional[str]:
    """Return an error string when the run diverges from the golden trace."""
    return golden.check_against_golden(
        figures, path, PINNED_KEYS, "CLIENT-ABUSE DETERMINISM REGRESSION"
    )


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The defence claims that must hold regardless of the golden trace."""
    if not figures["correct_all_complete"]:
        return (
            "CLIENT-ABUSE LIVENESS VIOLATION: a correct client's requests "
            "did not all complete under abuse"
        )
    if not figures["prefixes_identical"]:
        return (
            "CLIENT-ABUSE SAFETY VIOLATION: nodes' delivered sequences "
            "diverged under abusive clients"
        )
    if not figures["no_double_delivery"]:
        return (
            "CLIENT-ABUSE IDEMPOTENCE VIOLATION: a duplicate-flooded "
            "request was delivered twice"
        )
    if not figures["out_of_window_sent"] or (
        figures["watermark_rejections"] < figures["out_of_window_sent"]
    ):
        return (
            "CLIENT-ABUSE CONTAINMENT REGRESSION: far-out timestamps were "
            "not all rejected at the watermark window"
        )
    if not figures["forged_sent"] or (
        figures["forgeries_rejected"] < figures["forged_sent"]
    ):
        return (
            "CLIENT-ABUSE CONTAINMENT REGRESSION: forged-identity requests "
            "were not all rejected at the signature check"
        )
    if not figures["duplicates_sent"] or figures["duplicates_absorbed"] <= 0:
        return (
            "CLIENT-ABUSE CONTAINMENT REGRESSION: the duplicate flood was "
            "not absorbed and counted"
        )
    if figures["gc_entries_total"] <= 0:
        return (
            "CLIENT-ABUSE MEMORY REGRESSION: no per-client state was "
            "garbage collected below the advanced watermarks"
        )
    if figures["out_of_order_max"] > SCENARIO["window"] * SCENARIO["num_clients"]:
        return (
            "CLIENT-ABUSE MEMORY REGRESSION: a node's out-of-order "
            "watermark buffer exceeded the window bound"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the smoke scenario and apply the checks."""
    scenario = SCENARIO
    return smokelib.run_gate(
        argv,
        name="client-abuse",
        description=__doc__.splitlines()[0],
        banner=(
            f"client-abuse smoke: {scenario['num_nodes']} {scenario['protocol']} nodes, "
            f"{scenario['num_clients']} clients "
            f"(abusers: {scenario['watermark_abuser']} watermark, "
            f"{scenario['duplicate_flooder']} flood, {scenario['forger']} forging "
            f"client {scenario['forgery_victim']}), "
            f"{scenario['duration']:.0f}s virtual ..."
        ),
        run_smoke=run_smoke,
        golden_path=golden_path(),
        pinned_keys=PINNED_KEYS,
        regression_label="CLIENT-ABUSE DETERMINISM REGRESSION",
        semantic_violations=semantic_violations,
        bench_path=bench_output_path(),
        bench_source="client_abuse_smoke",
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
