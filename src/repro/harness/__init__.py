"""Experiment harness: deployments and per-figure scenarios."""

from .runner import Deployment, DeploymentResult, run_experiment, find_peak_throughput
from . import invariants
from . import scenarios

__all__ = [
    "Deployment",
    "DeploymentResult",
    "run_experiment",
    "find_peak_throughput",
    "invariants",
    "scenarios",
]
