"""Prebuilt experiment scenarios, one per table/figure of the evaluation.

Every function returns plain dictionaries/lists so benchmarks can both print
the paper-style rows and attach them to pytest-benchmark ``extra_info``.

Scaling: the simulated deployments are necessarily smaller than the paper's
(node counts, epoch length, NIC bandwidth and experiment duration are scaled
down so a figure regenerates in seconds-to-minutes of wall clock).  The
``scale`` parameter of :func:`default_scale` multiplies the node counts and
durations; EXPERIMENTS.md records the exact settings used for the recorded
results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.mirbft import MirBFTNode
from ..baselines.single_leader import single_leader_config, single_leader_policy
from ..core.config import (
    ISSConfig,
    NetworkConfig,
    WorkloadConfig,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_PBFT,
    PROTOCOL_RAFT,
    POLICY_BACKOFF,
    POLICY_BLACKLIST,
    POLICY_SIMPLE,
)
from ..core.segment import LAYOUT_CONTIGUOUS, LAYOUT_ROUND_ROBIN
from ..metrics.collector import RunReport
from ..obs.config import ObsConfig
from ..sim.client_adversary import bias_capacity
from ..sim.faults import (
    BYZ_CENSOR,
    BYZ_EQUIVOCATE,
    BYZ_INVALID_VOTES,
    BYZ_REPLAY,
    CLIENT_BUCKET_BIAS,
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    MALICIOUS_CLIENT_BEHAVIOURS,
    ByzantineSpec,
    CrashSpec,
    MaliciousClientSpec,
    RestartSpec,
    StragglerSpec,
)
from ..sim.chaos import LinkFaultSpec, PartitionSpec
from ..sim.faults import MembershipSpec
from ..workload.faults import (
    abusive_clients,
    bridge_partition,
    byzantine_leaders,
    censorship_targets,
    epoch_end_crashes,
    epoch_start_crashes,
    eviction_watch,
    flapping_links,
    membership_additions,
    membership_removals,
    minority_partition,
    one_way_blocks,
    rolling_upgrade_specs,
    stragglers,
)
from .invariants import check_invariants
from .runner import Deployment


# ---------------------------------------------------------------------------
# Scaled-down experiment parameters
# ---------------------------------------------------------------------------

#: NIC bandwidth used by the scaled-down experiments.  The paper rate-limits
#: real NICs to 1 Gbps; the simulation scales this down (together with the
#: offered load) so saturation happens at a few thousand requests per second,
#: which keeps event counts tractable.  The throughput *shape* across
#: configurations is preserved because every configuration shares the scale.
#: Revisit: this models sender-NIC contention only.  Now that the network
#: also supports per-link serialisation (``NetworkConfig.link_bandwidth_bps``,
#: off by default), the WAN scenarios could split the budget between NIC and
#: link to model shared-backbone saturation; the figure benchmarks keep the
#: single NIC knob until a paper figure needs the distinction.
SCALED_BANDWIDTH_BPS = 20e6

#: Paper request payload (average Bitcoin transaction size).
PAYLOAD_BYTES = 500


#: Default benchmark scale.  Raised from 1.0 after the hot-path overhaul
#: (PR 1, ~2.8× faster) and the wire-batching layer (PR 2, ~35–40 % fewer
#: events at 8–16 nodes) made larger figure runs affordable.
DEFAULT_BENCH_SCALE = 2.0

#: Default wire-batching flush tick for benchmark scenarios (seconds);
#: imported by :mod:`repro.perf_smoke` so its batched scenario can never
#: drift from the figure benchmarks.  See PERF.md.
DEFAULT_FLUSH_INTERVAL = 0.02


def bench_scale() -> float:
    """Global scale factor for benchmark sizes (env var ``REPRO_BENCH_SCALE``).

    Unparseable values fall back to :data:`DEFAULT_BENCH_SCALE`; anything
    below 0.25 is clamped so scenarios keep enough nodes to be meaningful.
    """
    try:
        return max(
            0.25, float(os.environ.get("REPRO_BENCH_SCALE", str(DEFAULT_BENCH_SCALE)))
        )
    except ValueError:
        return DEFAULT_BENCH_SCALE


def bench_flush_interval() -> float:
    """Wire-batching flush tick used by the figure benchmarks (seconds).

    Controlled by the env var ``REPRO_FLUSH_INTERVAL``; ``0`` disables
    batching (the pre-batching behaviour).  Unparseable values fall back to
    :data:`DEFAULT_FLUSH_INTERVAL`.
    """
    try:
        value = float(os.environ.get("REPRO_FLUSH_INTERVAL", str(DEFAULT_FLUSH_INTERVAL)))
    except ValueError:
        return DEFAULT_FLUSH_INTERVAL
    return max(0.0, value)


#: Default maximum abusive-client count swept by the client-abuse figure
#: benchmark (``REPRO_ABUSE_CLIENTS`` raises/lowers it).
DEFAULT_ABUSE_CLIENTS = 2


def abuse_client_count() -> int:
    """Largest abusive-client count swept by ``bench_client_abuse.py`` (env
    var ``REPRO_ABUSE_CLIENTS``).

    Clamped to ≥ 1 so the benchmark always exercises at least one attacker;
    unparseable values fall back to :data:`DEFAULT_ABUSE_CLIENTS`.
    """
    try:
        return max(
            1, int(os.environ.get("REPRO_ABUSE_CLIENTS", str(DEFAULT_ABUSE_CLIENTS)))
        )
    except ValueError:
        return DEFAULT_ABUSE_CLIENTS


def scaled_network() -> NetworkConfig:
    """Scaled-down WAN shared by all figure benchmarks (wire batching on)."""
    return NetworkConfig(
        bandwidth_bps=SCALED_BANDWIDTH_BPS,
        batch_flush_interval=bench_flush_interval(),
    )


#: Cloud regions available to :func:`wan_regions`, ordered so a prefix of
#: any length is a sensible deployment (two US coasts, two European sites,
#: then Asia-Pacific and South America).
WAN_REGIONS: Tuple[str, ...] = (
    "us-east", "us-west", "eu-west", "eu-central",
    "ap-northeast", "ap-southeast", "sa-east", "ap-south",
)

#: One-way inter-region latencies in seconds (half the public-cloud RTT
#: tables, rounded).  Row/column order follows :data:`WAN_REGIONS`; the
#: diagonal is unused (intra-region hops take the configured intra-DC
#: latency).
WAN_ONE_WAY_LATENCY: Tuple[Tuple[float, ...], ...] = (
    # us-east us-west eu-west eu-cent ap-ne   ap-se   sa-east ap-south
    (0.0,    0.033,  0.038,  0.045,  0.080,  0.108,  0.058,  0.093),   # us-east
    (0.033,  0.0,    0.065,  0.073,  0.053,  0.083,  0.088,  0.110),   # us-west
    (0.038,  0.065,  0.0,    0.013,  0.105,  0.088,  0.093,  0.060),   # eu-west
    (0.045,  0.073,  0.013,  0.0,    0.113,  0.080,  0.103,  0.055),   # eu-central
    (0.080,  0.053,  0.105,  0.113,  0.0,    0.035,  0.128,  0.063),   # ap-northeast
    (0.108,  0.083,  0.088,  0.080,  0.035,  0.0,    0.163,  0.030),   # ap-southeast
    (0.058,  0.088,  0.093,  0.103,  0.128,  0.163,  0.0,    0.150),   # sa-east
    (0.093,  0.110,  0.060,  0.055,  0.063,  0.030,  0.150,  0.0),     # ap-south
)


def wan_regions(
    num_regions: int = 4,
    bandwidth_bps: float = SCALED_BANDWIDTH_BPS,
    batch_flush_interval: Optional[float] = None,
    jitter: Optional[float] = None,
) -> NetworkConfig:
    """Geo-realistic WAN: the first ``num_regions`` of :data:`WAN_REGIONS`.

    Unlike :func:`scaled_network`'s synthetic ring matrix, this installs
    measured one-way latencies between named cloud regions
    (:data:`WAN_ONE_WAY_LATENCY`), which is what the Figure 5 scalability
    sweeps use: nodes spread round-robin over regions, so growing ``n``
    adds replicas without changing the latency geometry.  The asymmetric
    spread between region pairs (13 ms Dublin–Frankfurt vs 163 ms
    Singapore–São Paulo) also gives the sharded engine a realistic
    minimum cross-shard latency to derive its lookahead from.

    ``batch_flush_interval`` defaults to the benchmark flush tick
    (:func:`bench_flush_interval`); pass ``0.0`` to disable wire batching.
    ``jitter`` defaults to the NetworkConfig default.
    """
    if not 1 <= num_regions <= len(WAN_REGIONS):
        raise ValueError(
            f"num_regions must be in 1..{len(WAN_REGIONS)}, got {num_regions}"
        )
    matrix = [
        [WAN_ONE_WAY_LATENCY[a][b] for b in range(num_regions)]
        for a in range(num_regions)
    ]
    kwargs: Dict[str, object] = dict(
        bandwidth_bps=bandwidth_bps,
        num_datacenters=num_regions,
        dc_latency_matrix=matrix,
        batch_flush_interval=(
            bench_flush_interval()
            if batch_flush_interval is None
            else batch_flush_interval
        ),
    )
    if jitter is not None:
        kwargs["jitter"] = jitter
    return NetworkConfig(**kwargs)


def iss_config(protocol: str, num_nodes: int, **overrides) -> ISSConfig:
    """Scaled-down ISS configuration following the structure of Table 1."""
    defaults = dict(
        epoch_length=32,
        max_batch_size=128,
        batch_rate=16.0,
        min_batch_timeout=0.0,
        max_batch_timeout=1.0,
        min_segment_size=2,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
        buckets_per_leader=16,
        client_watermark_window=1 << 16,
        send_client_responses=False,
        client_signatures=True,
        byzantine=True,
    )
    if protocol == PROTOCOL_HOTSTUFF:
        defaults.update(batch_rate=None, min_batch_timeout=0.1, max_batch_timeout=0.0, min_segment_size=4)
    if protocol == PROTOCOL_RAFT:
        defaults.update(byzantine=False, client_signatures=False, min_segment_size=4,
                        election_timeout=(5.0, 10.0))
    defaults.update(overrides)
    return ISSConfig(num_nodes=num_nodes, protocol=protocol, **defaults)


def baseline_config(protocol: str, num_nodes: int, **overrides) -> ISSConfig:
    """Scaled-down single-leader baseline configuration."""
    defaults = dict(
        epoch_length=32,
        max_batch_size=128,
        max_batch_timeout=1.0,
        min_batch_timeout=0.0,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
        client_watermark_window=1 << 16,
        send_client_responses=False,
        client_signatures=True,
    )
    if protocol == PROTOCOL_HOTSTUFF:
        defaults.update(min_batch_timeout=0.1, max_batch_timeout=0.0)
    if protocol == PROTOCOL_RAFT:
        defaults.update(client_signatures=False, election_timeout=(5.0, 10.0))
    defaults.update(overrides)
    return single_leader_config(protocol, num_nodes, **defaults)


def _workload(rate: float, duration: float, clients: int = 8) -> WorkloadConfig:
    return WorkloadConfig(
        num_clients=clients,
        total_rate=rate,
        duration=duration,
        payload_size=PAYLOAD_BYTES,
    )


def _run(
    config: ISSConfig,
    rate: float,
    duration: float,
    crash_specs: Sequence[CrashSpec] = (),
    straggler_specs: Sequence[StragglerSpec] = (),
    restart_specs: Sequence[RestartSpec] = (),
    node_class=None,
    policy_factory=None,
    layout: str = LAYOUT_ROUND_ROBIN,
    drain_time: float = 5.0,
    obs=None,
) -> RunReport:
    kwargs = dict(
        network_config=scaled_network(),
        workload=_workload(rate, duration),
        crash_specs=crash_specs,
        straggler_specs=straggler_specs,
        restart_specs=restart_specs,
        layout=layout,
        drain_time=drain_time,
    )
    if node_class is not None:
        kwargs["node_class"] = node_class
    if policy_factory is not None:
        kwargs["policy_factory"] = policy_factory
    if obs is not None:
        kwargs["obs"] = obs
    return Deployment(config, **kwargs).run().report


# ---------------------------------------------------------------------------
# Figure 5 — throughput scalability
# ---------------------------------------------------------------------------

def scalability_point(
    system: str,
    protocol: str,
    num_nodes: int,
    offered_loads: Sequence[float],
    duration: float = 5.0,
) -> Dict[str, object]:
    """Peak throughput of one (system, protocol, n) point of Figure 5.

    ``system`` is ``"iss"``, ``"single"`` or ``"mirbft"``.
    """
    best = {"throughput": 0.0, "offered": 0.0, "latency": 0.0}
    for rate in offered_loads:
        if system == "iss":
            report = _run(iss_config(protocol, num_nodes), rate, duration)
        elif system == "single":
            config = baseline_config(protocol, num_nodes)
            report = _run(
                config, rate, duration, policy_factory=lambda c: single_leader_policy(c)
            )
        elif system == "mirbft":
            report = _run(iss_config(protocol, num_nodes), rate, duration, node_class=MirBFTNode)
        else:
            raise ValueError(f"unknown system {system!r}")
        if report.throughput > best["throughput"]:
            best = {
                "throughput": report.throughput,
                "offered": rate,
                "latency": report.latency.mean,
            }
    return {
        "system": system,
        "protocol": protocol,
        "nodes": num_nodes,
        "peak_throughput": best["throughput"],
        "at_offered_load": best["offered"],
        "latency_at_peak": best["latency"],
    }


def scalability_sweep(
    node_counts: Sequence[int] = (4, 8, 16),
    protocols: Sequence[str] = (PROTOCOL_PBFT, PROTOCOL_HOTSTUFF, PROTOCOL_RAFT),
    offered_loads: Sequence[float] = (1000.0, 2000.0),
    duration: float = 5.0,
    include_mirbft: bool = True,
) -> List[Dict[str, object]]:
    """Full Figure 5 sweep: ISS vs single-leader (vs Mir-BFT for PBFT)."""
    rows: List[Dict[str, object]] = []
    for protocol in protocols:
        for n in node_counts:
            rows.append(scalability_point("iss", protocol, n, offered_loads, duration))
            rows.append(scalability_point("single", protocol, n, offered_loads, duration))
        if include_mirbft and protocol == PROTOCOL_PBFT:
            for n in node_counts:
                rows.append(scalability_point("mirbft", protocol, n, offered_loads, duration))
    return rows


# ---------------------------------------------------------------------------
# Figure 6 — latency vs throughput under increasing load
# ---------------------------------------------------------------------------

def latency_throughput_sweep(
    protocol: str,
    num_nodes: int,
    offered_loads: Sequence[float],
    duration: float = 5.0,
    single_leader: bool = False,
) -> List[Dict[str, object]]:
    """One latency-over-throughput curve of Figure 6."""
    rows = []
    for rate in offered_loads:
        if single_leader:
            config = baseline_config(protocol, num_nodes)
            report = _run(config, rate, duration, policy_factory=lambda c: single_leader_policy(c))
        else:
            report = _run(iss_config(protocol, num_nodes), rate, duration)
        rows.append(
            {
                "system": "single" if single_leader else "iss",
                "protocol": protocol,
                "nodes": num_nodes,
                "offered_load": rate,
                "throughput": report.throughput,
                "latency_mean": report.latency.mean,
                "latency_p95": report.latency.p95,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — leader-selection policies under crash faults
# ---------------------------------------------------------------------------

def leader_policy_comparison(
    num_nodes: int = 8,
    rate: float = 800.0,
    duration: float = 30.0,
    crash_kind: str = "epoch-start",
    policies: Sequence[str] = (POLICY_SIMPLE, POLICY_BACKOFF, POLICY_BLACKLIST),
) -> List[Dict[str, object]]:
    """Mean / tail latency per leader-selection policy with one crash."""
    rows = []
    for policy in policies:
        config = iss_config(PROTOCOL_PBFT, num_nodes, leader_policy=policy)
        if crash_kind == "epoch-start":
            crashes = epoch_start_crashes(1, num_nodes, epoch=0)
        else:
            crashes = epoch_end_crashes(1, num_nodes, epoch=0)
        report = _run(config, rate, duration, crash_specs=crashes)
        rows.append(
            {
                "policy": policy,
                "crash": crash_kind,
                "latency_mean": report.latency.mean,
                "latency_p95": report.latency.p95,
                "throughput": report.throughput,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — crash-fault latency over experiment duration
# ---------------------------------------------------------------------------

def crash_latency_over_duration(
    num_nodes: int = 8,
    rate: float = 800.0,
    durations: Sequence[float] = (20.0, 40.0, 60.0),
    fault_counts: Sequence[int] = (0, 1, 2),
    crash_kind: str = "epoch-start",
) -> List[Dict[str, object]]:
    """Mean/p95 latency as the experiment duration grows (Blacklist policy)."""
    rows = []
    for count in fault_counts:
        for duration in durations:
            if count == 0:
                crashes: Sequence[CrashSpec] = ()
            elif crash_kind == "epoch-start":
                crashes = epoch_start_crashes(count, num_nodes, epoch=0)
            else:
                crashes = epoch_end_crashes(count, num_nodes, epoch=0)
            config = iss_config(PROTOCOL_PBFT, num_nodes, leader_policy=POLICY_BLACKLIST)
            report = _run(config, rate, duration, crash_specs=crashes)
            rows.append(
                {
                    "faults": count,
                    "crash": crash_kind if count else "none",
                    "duration": duration,
                    "latency_mean": report.latency.mean,
                    "latency_p95": report.latency.p95,
                    "throughput": report.throughput,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 9, 10, 12 — throughput over time
# ---------------------------------------------------------------------------

def throughput_timeline(
    num_nodes: int = 8,
    rate: float = 800.0,
    duration: float = 40.0,
    crash_kind: Optional[str] = None,
    straggler_count: int = 0,
    straggler_delay: float = 2.5,
    mirbft: bool = False,
) -> Dict[str, object]:
    """Per-second delivered throughput, optionally under a crash or straggler.

    The per-second series comes from the observability sampler
    (``repro.obs.MetricsSampler``): the run enables a 1 s metrics interval
    and the report's ``throughput_timeline`` is its rate-probed completion
    series — the bespoke per-bucket accounting the timeline benchmarks used
    to carry lives nowhere else anymore.
    """
    crashes: Sequence[CrashSpec] = ()
    if crash_kind == "epoch-start":
        crashes = epoch_start_crashes(1, num_nodes, epoch=0)
    elif crash_kind == "epoch-end":
        crashes = epoch_end_crashes(1, num_nodes, epoch=0)
    straggler_specs = stragglers(straggler_count, num_nodes, delay=straggler_delay) if straggler_count else ()
    config = iss_config(PROTOCOL_PBFT, num_nodes)
    report = _run(
        config,
        rate,
        duration,
        crash_specs=crashes,
        straggler_specs=straggler_specs,
        node_class=MirBFTNode if mirbft else None,
        obs=ObsConfig(metrics_interval=1.0),
    )
    return {
        "system": "mirbft" if mirbft else "iss",
        "crash": crash_kind or "none",
        "stragglers": straggler_count,
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "timeline": report.throughput_timeline,
        "extra": report.extra,
    }


# ---------------------------------------------------------------------------
# Figure 11 — latency/throughput with Byzantine stragglers
# ---------------------------------------------------------------------------

def straggler_sweep(
    num_nodes: int = 8,
    straggler_counts: Sequence[int] = (0, 1, 2),
    rate: float = 800.0,
    duration: float = 30.0,
    straggler_delay: float = 2.5,
) -> List[Dict[str, object]]:
    """Throughput and latency as the number of stragglers grows."""
    rows = []
    for count in straggler_counts:
        specs = stragglers(count, num_nodes, delay=straggler_delay) if count else ()
        config = iss_config(PROTOCOL_PBFT, num_nodes)
        report = _run(config, rate, duration, straggler_specs=specs)
        rows.append(
            {
                "stragglers": count,
                "throughput": report.throughput,
                "latency_mean": report.latency.mean,
                "latency_p95": report.latency.p95,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §6)
# ---------------------------------------------------------------------------

def layout_ablation(
    num_nodes: int = 8, rate: float = 800.0, duration: float = 10.0
) -> List[Dict[str, object]]:
    """Round-robin vs contiguous sequence-number interleaving."""
    rows = []
    for layout in (LAYOUT_ROUND_ROBIN, LAYOUT_CONTIGUOUS):
        config = iss_config(PROTOCOL_PBFT, num_nodes)
        report = _run(config, rate, duration, layout=layout)
        rows.append(
            {
                "layout": layout,
                "throughput": report.throughput,
                "latency_mean": report.latency.mean,
                "latency_p95": report.latency.p95,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Crash-recovery scenarios — crash → restart → WAL replay + state transfer
# ---------------------------------------------------------------------------

def delivered_prefix_matches(reference, restarted) -> bool:
    """Do two nodes agree on every position both have delivered?

    The SMR safety property the recovery path must preserve: a restarted
    node's delivered sequence is a prefix-compatible copy of a never-crashed
    peer's (same entry digest at every shared position).
    """
    shared = min(reference.log.first_undelivered, restarted.log.first_undelivered)
    for sn in range(shared):
        a = reference.log.entry(sn)
        b = restarted.log.entry(sn)
        if a is b:
            continue
        if a is None or b is None or a.digest() != b.digest():
            return False
    return True


def crash_restart_point(
    protocol: str,
    num_nodes: int = 4,
    rate: float = 800.0,
    duration: float = 30.0,
    crash_time: float = 3.0,
    downtime: float = 12.0,
    victim: int = 1,
    seed: int = 11,
) -> Dict[str, object]:
    """One crash→restart experiment: crash ``victim`` mid-run, restart it
    ``downtime`` seconds later, and report how recovery went.

    The returned row combines the harness's recovery record (downtime, WAL
    entries replayed, state-transfer bytes, time-to-caught-up — see
    :meth:`repro.harness.runner.Deployment._on_node_restart`) with the
    delivered-prefix equivalence check and the run's throughput figures.
    """
    config = iss_config(protocol, num_nodes, random_seed=seed)
    deployment = Deployment(
        config,
        network_config=scaled_network(),
        workload=_workload(rate, duration),
        crash_specs=[CrashSpec(node=victim, trigger="at-time", time=crash_time)],
        restart_specs=[RestartSpec(node=victim, time=crash_time + downtime)],
    )
    result = deployment.run()
    report = result.report
    recovery = dict(report.recoveries[0]) if report.recoveries else {}
    reference = next(
        node for node in result.nodes if node.node_id != victim and not node.crashed
    )
    return {
        "protocol": protocol,
        "nodes": num_nodes,
        "victim": victim,
        "crash_time": crash_time,
        "downtime": downtime,
        "recovery": recovery,
        "prefix_matches": delivered_prefix_matches(reference, result.nodes[victim]),
        "caught_up": recovery.get("time_to_caught_up", -1.0) >= 0.0,
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "wal_appended_total": report.extra.get("wal_appended_total", 0.0),
        "snapshots_installed_total": report.extra.get("snapshots_installed_total", 0.0),
    }


def crash_restart_sweep(
    protocols: Sequence[str] = (PROTOCOL_PBFT, PROTOCOL_HOTSTUFF, PROTOCOL_RAFT),
    num_nodes: int = 4,
    rate: float = 800.0,
    duration: float = 30.0,
    crash_time: float = 3.0,
    downtime: float = 12.0,
) -> List[Dict[str, object]]:
    """Crash→restart→catch-up across SB protocols (one row per protocol)."""
    return [
        crash_restart_point(
            protocol,
            num_nodes=num_nodes,
            rate=rate,
            duration=duration,
            crash_time=crash_time,
            downtime=downtime,
        )
        for protocol in protocols
    ]


def recovery_time_over_downtime(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    rate: float = 800.0,
    downtimes: Sequence[float] = (5.0, 10.0, 15.0),
    crash_time: float = 3.0,
    tail_time: float = 15.0,
) -> List[Dict[str, object]]:
    """Recovery-time curve: how catch-up cost grows with time spent down.

    Longer downtime ⇒ more epochs ordered without the victim ⇒ more state
    transfer on restart.  Each run extends the experiment so the node always
    gets ``tail_time`` seconds of post-restart run time to catch up in.
    """
    rows: List[Dict[str, object]] = []
    for downtime in downtimes:
        duration = crash_time + downtime + tail_time
        point = crash_restart_point(
            protocol,
            num_nodes=num_nodes,
            rate=rate,
            duration=duration,
            crash_time=crash_time,
            downtime=downtime,
        )
        recovery = point["recovery"]
        rows.append(
            {
                "protocol": protocol,
                "downtime": downtime,
                "time_to_caught_up": recovery.get("time_to_caught_up", -1.0),
                "wal_entries_replayed": recovery.get("wal_entries_replayed", 0.0),
                "snapshot_entries": recovery.get("snapshot_entries", 0.0),
                "state_transfer_bytes": recovery.get("state_transfer_bytes", 0.0),
                "state_transfer_entries": recovery.get("state_transfer_entries", 0.0),
                "prefix_matches": point["prefix_matches"],
                "caught_up": point["caught_up"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure-13-style scenarios — active Byzantine adversaries
# ---------------------------------------------------------------------------

def correct_nodes(result, byzantine_specs: Sequence[ByzantineSpec]) -> List[object]:
    """The live, non-adversarial nodes of a finished deployment result."""
    adversarial = {spec.node for spec in byzantine_specs}
    return [
        node
        for node in result.nodes
        if node.node_id not in adversarial and not node.crashed
    ]


def prefixes_identical(nodes: Sequence[object]) -> bool:
    """SMR safety across a node set: every pair agrees on every position
    both have delivered (see :func:`delivered_prefix_matches`)."""
    for index, reference in enumerate(nodes):
        for other in nodes[index + 1 :]:
            if not delivered_prefix_matches(reference, other):
                return False
    return True


def byzantine_point(
    protocol: str,
    behaviour: str = BYZ_EQUIVOCATE,
    num_adversaries: int = 1,
    num_nodes: int = 4,
    rate: float = 600.0,
    duration: float = 20.0,
    censored_bucket_count: int = 4,
    seed: int = 42,
    drain_time: float = 10.0,
) -> Dict[str, object]:
    """One run under ``num_adversaries`` actively Byzantine nodes.

    The row combines the run's throughput/latency with the safety check
    (identical delivered prefixes across correct nodes), the detection
    counters from ``RunReport.byzantine`` and whether the leader-selection
    policy (Blacklist by default) evicted the adversaries from the final
    epoch's leaderset.  ``behaviour`` is one of the
    :data:`~repro.sim.faults.BYZANTINE_BEHAVIOURS`.
    """
    config = iss_config(protocol, num_nodes, random_seed=seed)
    buckets: Sequence[int] = ()
    if behaviour == BYZ_CENSOR:
        buckets = censorship_targets(config.num_buckets, censored_bucket_count)
    specs = byzantine_leaders(
        num_adversaries, num_nodes, behaviour=behaviour, buckets=buckets
    )
    deployment = Deployment(
        config,
        network_config=scaled_network(),
        workload=_workload(rate, duration),
        byzantine_specs=specs,
        drain_time=drain_time,
    )
    result = deployment.run()
    report = result.report
    correct = correct_nodes(result, specs)
    sample = correct[0]
    final_leaders = sample.manager.leaders_for(sample.current_epoch)
    adversaries = [spec.node for spec in specs]
    per_node = report.byzantine.get("per_node", {})
    row: Dict[str, object] = {
        "protocol": protocol,
        "behaviour": behaviour,
        "adversaries": num_adversaries,
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "latency_p95": report.latency.p95,
        "prefixes_identical": prefixes_identical(correct),
        "nil_committed": sample.nil_committed,
        "equivocations_detected": sum(
            per_node.get(n.node_id, {}).get("equivocations_detected", 0) for n in correct
        ),
        "invalid_sigs_rejected": sum(
            per_node.get(n.node_id, {}).get("invalid_sigs_rejected", 0) for n in correct
        ),
        "adversaries_evicted": all(a not in final_leaders for a in adversaries),
        "final_leaderset_size": len(final_leaders),
    }
    censored = report.byzantine.get("censored")
    if censored is not None:
        row["censored_submitted"] = censored["submitted"]
        row["censored_completed"] = censored["completed"]
        row["censored_latency_mean"] = censored["latency"].mean
        row["censored_latency_p95"] = censored["latency"].p95
    return row


def byzantine_leader_sweep(
    protocols: Sequence[str] = (PROTOCOL_PBFT, PROTOCOL_HOTSTUFF),
    behaviours: Sequence[str] = (BYZ_EQUIVOCATE, BYZ_CENSOR),
    adversary_counts: Sequence[int] = (0, 1),
    num_nodes: int = 4,
    rate: float = 600.0,
    duration: float = 20.0,
) -> List[Dict[str, object]]:
    """Throughput/latency with up to ``f`` active adversaries (Fig. 13 style).

    A single zero-adversary row per protocol (``behaviour="none"``) gives
    the clean baseline every behaviour's curve is measured against — the
    baseline deployment is behaviour-independent, so it runs once instead
    of once per behaviour.  Equivocation and forged votes target the BFT
    protocols; Raft (CFT) only appears when paired with behaviours inside
    its fault model (censorship, replay).
    """
    rows: List[Dict[str, object]] = []
    attacked_counts = [count for count in adversary_counts if count > 0]
    for protocol in protocols:
        if 0 in adversary_counts:
            baseline = byzantine_point(
                protocol,
                behaviour=BYZ_EQUIVOCATE,  # irrelevant: zero adversaries
                num_adversaries=0,
                num_nodes=num_nodes,
                rate=rate,
                duration=duration,
            )
            baseline["behaviour"] = "none"
            rows.append(baseline)
        for behaviour in behaviours:
            if protocol == PROTOCOL_RAFT and behaviour in (
                BYZ_EQUIVOCATE,
                BYZ_INVALID_VOTES,
            ):
                continue
            for count in attacked_counts:
                rows.append(
                    byzantine_point(
                        protocol,
                        behaviour=behaviour,
                        num_adversaries=count,
                        num_nodes=num_nodes,
                        rate=rate,
                        duration=duration,
                    )
                )
    return rows


def censorship_rotation(
    num_nodes: int = 4,
    rate: float = 600.0,
    duration: float = 16.0,
    censored_bucket_count: int = 4,
    drain_time: float = 15.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Bucket rotation vs a censoring leader (the Section 3.2 defence).

    One Byzantine leader censors a fixed bucket set for the whole run; the
    row reports how much of the censored traffic still completed and the
    latency penalty it paid waiting for its buckets to rotate to honest
    leaders.  The generous ``drain_time`` lets requests submitted right
    before the workload ends complete, so ``censored_completed`` can reach
    ``censored_submitted``.
    """
    row = byzantine_point(
        PROTOCOL_PBFT,
        behaviour=BYZ_CENSOR,
        num_adversaries=1,
        num_nodes=num_nodes,
        rate=rate,
        duration=duration,
        censored_bucket_count=censored_bucket_count,
        seed=seed,
        drain_time=drain_time,
    )
    submitted = row.get("censored_submitted", 0)
    completed = row.get("censored_completed", 0)
    row["censored_completion_ratio"] = (completed / submitted) if submitted else 1.0
    row["latency_penalty"] = (
        row["censored_latency_mean"] / row["latency_mean"] if row["latency_mean"] else 1.0
    )
    return row


# ---------------------------------------------------------------------------
# Malicious-client scenarios — the Section 3.7 defences under actual attack
# ---------------------------------------------------------------------------

#: Watermark window used by the client-abuse scenarios: small enough that
#: watermark dynamics (gap stalls, bias wedging) bite within seconds of
#: virtual time, large enough that correct clients never brush against it.
CLIENT_ABUSE_WINDOW = 4096


def client_abuse_point(
    protocol: str,
    behaviour: str = CLIENT_WATERMARK_ABUSE,
    num_abusive: int = 1,
    num_nodes: int = 4,
    num_clients: int = 8,
    rate: float = 400.0,
    duration: float = 10.0,
    window: int = CLIENT_ABUSE_WINDOW,
    flood_factor: int = 3,
    seed: int = 42,
    drain_time: float = 10.0,
    flush_interval: Optional[float] = None,
) -> Dict[str, object]:
    """One run under ``num_abusive`` malicious clients.

    The row combines throughput/latency with the defence checks: every
    correct client's requests complete, delivered prefixes stay identical
    across all nodes, each abusive submission class is rejected-and-counted
    (``RunReport.client_abuse``), and node memory stays bounded (watermark
    out-of-order buffers, delivered filter after GC).  ``behaviour`` is one
    of :data:`~repro.sim.faults.MALICIOUS_CLIENT_BEHAVIOURS`.
    """
    config = iss_config(
        protocol,
        num_nodes,
        random_seed=seed,
        client_watermark_window=window,
        send_client_responses=True,
    )
    if behaviour == CLIENT_FORGED_SIGNATURE and not config.client_signatures:
        # Without client signatures (Raft's CFT configuration) identity
        # forgery is trivially possible and outside the fault model — the
        # "attack" would be accepted and prove nothing about the defence.
        raise ValueError(
            f"forged-signature abuse needs client signatures, which the "
            f"{protocol!r} configuration disables"
        )
    specs = abusive_clients(
        num_abusive, num_clients, behaviour=behaviour, flood_factor=flood_factor
    )
    network = scaled_network()
    if flush_interval is not None:
        network.batch_flush_interval = flush_interval
    deployment = Deployment(
        config,
        network_config=network,
        workload=_workload(rate, duration, clients=num_clients),
        malicious_client_specs=specs,
        drain_time=drain_time,
    )
    result = deployment.run()
    report = result.report
    abusive_ids = {spec.client for spec in specs}
    correct_clients = [c for c in result.clients if c.client_id not in abusive_ids]
    abuse = report.client_abuse
    per_client = abuse.get("per_client", {})
    abusers = abuse.get("abusers", {})

    def rejections(client_id: int, reason: str) -> int:
        return per_client.get(client_id, {}).get(reason, 0)

    # Every protocol-violating submission class must be rejected and counted
    # at the nodes: far-out timestamps and post-wedge bias as watermark
    # rejections, forgeries as signature rejections (attributed to the
    # claimed victim), flood copies as absorbed duplicates.
    abuse_contained = True
    for spec in specs:
        stats = abusers.get(spec.client, {})
        if spec.behaviour == CLIENT_WATERMARK_ABUSE:
            abuse_contained &= rejections(
                spec.client, "outside_watermarks"
            ) >= stats.get("out_of_window_sent", 0) > 0
        elif spec.behaviour == CLIENT_DUPLICATE_FLOOD:
            abuse_contained &= (
                0 < stats.get("duplicates_sent", 0)
                and rejections(spec.client, "duplicates") > 0
            )
        elif spec.behaviour == CLIENT_FORGED_SIGNATURE:
            abuse_contained &= rejections(
                spec.victim, "bad_signature"
            ) >= stats.get("forged_sent", 0) > 0
        elif spec.behaviour == CLIENT_BUCKET_BIAS:
            # The c||t hash leaves timestamp-skipping as the only lever, and
            # the window wedges that after ~window/|B| accepted ids (the
            # exact per-(client, target) figure from bias_capacity).
            abuse_contained &= 0 < stats.get("biased_sent", 0) and stats.get(
                "requests_completed", 0
            ) <= bias_capacity(
                spec.client, spec.target_bucket, window, config.num_buckets
            )
    return {
        "protocol": protocol,
        "behaviour": behaviour if num_abusive else "none",
        "abusive": num_abusive,
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "latency_p95": report.latency.p95,
        "correct_submitted": sum(c.requests_submitted for c in correct_clients),
        "correct_completed": sum(c.requests_completed for c in correct_clients),
        "correct_all_complete": all(
            c.requests_completed == c.requests_submitted for c in correct_clients
        ),
        "prefixes_identical": prefixes_identical(result.nodes),
        "abuse_contained": abuse_contained,
        "rejections_total": report.extra.get("client_rejections_total", 0.0),
        "duplicates_total": report.extra.get("client_duplicates_total", 0.0),
        "gc_entries_total": report.extra.get("client_state_gc_entries_total", 0.0),
        "out_of_order_max": max(
            node.watermarks.out_of_order_entries() for node in result.nodes
        ),
        "delivered_filter_max": max(
            len(node.buckets.delivered) for node in result.nodes
        ),
        "client_abuse": abuse,
    }


def client_abuse_sweep(
    protocol: str = PROTOCOL_PBFT,
    behaviours: Sequence[str] = MALICIOUS_CLIENT_BEHAVIOURS,
    abusive_counts: Sequence[int] = (0, 1, 2),
    num_nodes: int = 4,
    num_clients: int = 8,
    rate: float = 400.0,
    duration: float = 10.0,
    flush_interval: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Correct-client throughput/latency as the abusive-client count grows.

    A single zero-abuser row gives the clean baseline (behaviour-independent,
    so it runs once); each behaviour then sweeps the attacked counts.  The
    malicious-client analogue of :func:`byzantine_leader_sweep` — and like
    it, behaviours outside a configuration's fault model are skipped:
    forged signatures are only meaningful when the protocol's clients sign
    (Raft's CFT configuration does not).
    """
    rows: List[Dict[str, object]] = []
    signatures_on = iss_config(protocol, num_nodes).client_signatures
    behaviours = [
        behaviour
        for behaviour in behaviours
        if signatures_on or behaviour != CLIENT_FORGED_SIGNATURE
    ]
    attacked_counts = [count for count in abusive_counts if count > 0]
    if 0 in abusive_counts:
        rows.append(
            client_abuse_point(
                protocol,
                behaviour=CLIENT_WATERMARK_ABUSE,  # irrelevant: zero abusers
                num_abusive=0,
                num_nodes=num_nodes,
                num_clients=num_clients,
                rate=rate,
                duration=duration,
                flush_interval=flush_interval,
            )
        )
    for behaviour in behaviours:
        for count in attacked_counts:
            rows.append(
                client_abuse_point(
                    protocol,
                    behaviour=behaviour,
                    num_abusive=count,
                    num_nodes=num_nodes,
                    num_clients=num_clients,
                    rate=rate,
                    duration=duration,
                    flush_interval=flush_interval,
                )
            )
    return rows


def watermark_stall(
    num_nodes: int = 4,
    num_clients: int = 6,
    rate: float = 300.0,
    duration: float = 10.0,
    window: int = 256,
    seed: int = 42,
    drain_time: float = 10.0,
) -> Dict[str, object]:
    """A gap-leaving client tries to wedge the watermark machinery.

    One abusive client alternates far-out timestamps with deliberate gaps,
    so its contiguous-prefix low watermark can never advance.  The row shows
    the defence working end to end: the abuser's window stalls (bounding its
    in-flight requests by ``window``), correct clients' watermarks keep
    advancing and their requests all complete, and node memory stays bounded
    (out-of-order buffers capped by the window, delivered filters garbage
    collected below the advanced watermarks).
    """
    config = iss_config(
        PROTOCOL_PBFT,
        num_nodes,
        random_seed=seed,
        client_watermark_window=window,
        send_client_responses=True,
    )
    abuser = num_clients - 1
    specs = [MaliciousClientSpec(client=abuser, behaviour=CLIENT_WATERMARK_ABUSE)]
    deployment = Deployment(
        config,
        network_config=scaled_network(),
        workload=_workload(rate, duration, clients=num_clients),
        malicious_client_specs=specs,
        drain_time=drain_time,
    )
    result = deployment.run()
    report = result.report
    correct_clients = [c for c in result.clients if c.client_id != abuser]
    sample = result.nodes[0]
    abusive_stats = report.client_abuse["abusers"][abuser]
    return {
        "abuser": abuser,
        "window": window,
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "correct_all_complete": all(
            c.requests_completed == c.requests_submitted for c in correct_clients
        ),
        "prefixes_identical": prefixes_identical(result.nodes),
        #: The gap pins the abuser's low watermark at (or before) the first
        #: skipped timestamp — it must never clear the window.
        "abuser_low_watermark": sample.watermarks.low_watermark(abuser),
        "abuser_stalled": sample.watermarks.low_watermark(abuser) < window,
        "correct_lows_advanced": all(
            sample.watermarks.low_watermark(c.client_id) > 0 for c in correct_clients
        ),
        "gaps_left": abusive_stats["gaps_left"],
        "out_of_window_sent": abusive_stats["out_of_window_sent"],
        "out_of_order_max": max(
            node.watermarks.out_of_order_entries() for node in result.nodes
        ),
        "out_of_order_bounded": all(
            node.watermarks.out_of_order_entries() <= window * len(result.clients)
            for node in result.nodes
        ),
        "gc_entries_total": report.extra.get("client_state_gc_entries_total", 0.0),
        "delivered_filter_max": max(
            len(node.buckets.delivered) for node in result.nodes
        ),
    }


# ---------------------------------------------------------------------------
# Network-chaos scenarios — partitions, degraded links, client retry/backoff
# ---------------------------------------------------------------------------

#: Default flap periods swept by ``link_flap_sweep`` (``REPRO_FLAP_PERIODS``).
DEFAULT_FLAP_PERIODS = (1.0, 2.0, 4.0)

#: Default partition durations swept by ``bench_partition_heal.py``
#: (``REPRO_PARTITION_DURATIONS``).
DEFAULT_PARTITION_DURATIONS = (2.0, 5.0, 8.0)


def partition_durations() -> Tuple[float, ...]:
    """Partition durations swept by ``bench_partition_heal.py`` (env var
    ``REPRO_PARTITION_DURATIONS``, comma-separated seconds).

    Unparseable or empty values fall back to
    :data:`DEFAULT_PARTITION_DURATIONS`.
    """
    raw = os.environ.get("REPRO_PARTITION_DURATIONS")
    if raw is None:
        return DEFAULT_PARTITION_DURATIONS
    try:
        durations = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        return DEFAULT_PARTITION_DURATIONS
    return tuple(d for d in durations if d > 0) or DEFAULT_PARTITION_DURATIONS


def flap_periods() -> Tuple[float, ...]:
    """Flap periods swept by :func:`link_flap_sweep` (env var
    ``REPRO_FLAP_PERIODS``, comma-separated seconds).

    Unparseable or empty values fall back to :data:`DEFAULT_FLAP_PERIODS`.
    """
    raw = os.environ.get("REPRO_FLAP_PERIODS")
    if raw is None:
        return DEFAULT_FLAP_PERIODS
    try:
        periods = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        return DEFAULT_FLAP_PERIODS
    return tuple(p for p in periods if p > 0) or DEFAULT_FLAP_PERIODS


def chaos_config(protocol: str, num_nodes: int, **overrides) -> ISSConfig:
    """Scenario configuration with graceful degradation armed.

    On top of :func:`iss_config`: client responses on (retry completion is
    the point), the client retry loop enabled (2 s initial timeout, ×2
    backoff capped at 8 s, 10 % jitter), deterministic view-change
    jitter so simultaneous partition stalls don't fire every instance's
    timer in the same tick, and the stalled-epoch catch-up grace so a
    node wedged by persistent message loss state-transfers out of it.
    """
    defaults = dict(
        send_client_responses=True,
        client_retry_timeout=2.0,
        client_retry_backoff=2.0,
        client_retry_max_timeout=8.0,
        client_retry_jitter=0.1,
        view_change_jitter=0.1,
        stalled_catchup_grace=2.0,
        vc_recovery=True,
    )
    defaults.update(overrides)
    return iss_config(protocol, num_nodes, **defaults)


def _chaos_row(result, duration: float) -> Dict[str, object]:
    """Figures every chaos scenario reports, from one finished deployment."""
    report = result.report
    partitions = report.partitions
    records = partitions.get("partitions", [])
    live = [node for node in result.nodes if not node.crashed]
    return {
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "latency_p95": report.latency.p95,
        "submitted": sum(c.requests_submitted for c in result.clients),
        "completed": sum(c.requests_completed for c in result.clients),
        "all_complete": all(
            c.requests_completed == c.requests_submitted for c in result.clients
        ),
        "prefixes_identical": prefixes_identical(live),
        "reconverged": all(r.get("time_to_reconverge", -1.0) >= 0.0 for r in records),
        "time_to_reconverge": max(
            (r.get("time_to_reconverge", -1.0) for r in records), default=0.0
        ),
        "view_changes_during": sum(r.get("view_changes_during", 0) for r in records),
        "client_retries": partitions.get("client_retries_total", 0),
        "drops_by_cause": partitions.get("drops_by_cause", {}),
        "partition_records": records,
        "link_faults": partitions.get("link_faults", []),
    }


def partition_point(
    protocol: str,
    num_nodes: int,
    partition_specs: Sequence[PartitionSpec] = (),
    link_fault_specs: Sequence[LinkFaultSpec] = (),
    rate: float = 400.0,
    duration: float = 15.0,
    num_clients: int = 8,
    seed: int = 42,
    drain_time: float = 15.0,
    **config_overrides,
) -> Dict[str, object]:
    """One run under a partition / link-fault schedule (shared harness of
    every chaos scenario).

    The generous ``drain_time`` gives the retry loop room to finish
    requests that were in flight when the fault landed — 100 % completion
    *through* retries is exactly what the scenarios assert.
    """
    config = chaos_config(protocol, num_nodes, random_seed=seed, **config_overrides)
    deployment = Deployment(
        config,
        network_config=scaled_network(),
        workload=_workload(rate, duration, clients=num_clients),
        partition_specs=partition_specs,
        link_fault_specs=link_fault_specs,
        drain_time=drain_time,
    )
    result = deployment.run()
    row = _chaos_row(result, duration)
    row["protocol"] = protocol
    row["nodes"] = num_nodes
    return row


def partition_minority(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    rate: float = 400.0,
    duration: float = 15.0,
    partition_start: float = 3.0,
    partition_duration: float = 6.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Isolate one node (a minority) mid-run, then heal (the canonical
    partition experiment).

    While split, the majority side keeps ordering (the minority node's
    segment is filled with ⊥ after a view change) and clients ride out the
    unreachable leader via retry/backoff; the minority node's jittered,
    backed-off timers keep it from storming view changes it can't win.  On
    heal the harness triggers state-transfer catch-up immediately, so
    ``time_to_reconverge`` measures the state-transfer path, not an epoch
    timer.
    """
    specs = minority_partition(
        1, num_nodes, partition_start, partition_start + partition_duration
    )
    row = partition_point(
        protocol, num_nodes, partition_specs=specs, rate=rate,
        duration=duration, seed=seed,
    )
    row["scenario"] = "partition_minority"
    row["partition_duration"] = partition_duration
    return row


def partition_bridge(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 5,
    bridge: int = 2,
    rate: float = 400.0,
    duration: float = 15.0,
    partition_start: float = 3.0,
    partition_duration: float = 6.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Split the cluster into two halves connected only through ``bridge``.

    Neither half alone has a strong quorum, so ordering stalls for the
    partition window (graceful degradation: no equivocation, no divergence,
    jittered timers); the bridge node keeps both sides' failure detectors
    and checkpoints partially informed.  After heal everything reconverges
    and every request completes through the retry loop.
    """
    specs = bridge_partition(
        num_nodes, bridge, partition_start, partition_start + partition_duration
    )
    row = partition_point(
        protocol, num_nodes, partition_specs=specs, rate=rate,
        duration=duration, seed=seed,
    )
    row["scenario"] = "partition_bridge"
    row["bridge"] = bridge
    return row


def asymmetric_link(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    src: int = 0,
    dst: int = 3,
    rate: float = 400.0,
    duration: float = 15.0,
    block_start: float = 3.0,
    block_duration: float = 6.0,
    seed: int = 42,
) -> Dict[str, object]:
    """One-way link failure: ``src`` cannot reach ``dst`` but ``dst`` still
    reaches ``src`` — the asymmetric-connectivity case a symmetric
    partition cannot express.

    The cluster keeps a full quorum (only one direction of one link is
    down), so ordering continues; the scenario shows protocol-level
    redundancy (broadcasts, retransmissions, client retries) absorbing a
    degraded mesh without any reconvergence machinery.
    """
    specs = one_way_blocks(
        [(src, dst)], block_start, block_start + block_duration
    )
    row = partition_point(
        protocol, num_nodes, link_fault_specs=specs, rate=rate,
        duration=duration, seed=seed,
    )
    row["scenario"] = "asymmetric_link"
    row["blocked_link"] = (src, dst)
    return row


def link_flap_sweep(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    periods: Optional[Sequence[float]] = None,
    flap_up: float = 0.5,
    retransmit: float = 0.5,
    rate: float = 400.0,
    duration: float = 12.0,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Throughput/latency as one link flaps faster and faster.

    Both directions of the (0, top) link oscillate (up for ``flap_up`` of
    each period); one row per period of ``periods`` (default
    :func:`flap_periods`, env-overridable).  The flapping link rides a
    reliable transport (payloads dropped in a down-window are re-offered
    after ``retransmit`` seconds), so flapping costs latency rather than
    correctness.  Without it a slow flap wedges the two endpoints: each
    misses the other's pre-prepares, neither can be rescued by a view
    change (a lone laggard never musters a view-change quorum), and with
    two of four nodes stuck in epoch 0 no checkpoint quorum ever forms —
    BFT message channels between correct nodes are assumed reliable.
    """
    if periods is None:
        periods = flap_periods()
    top = num_nodes - 1
    rows: List[Dict[str, object]] = []
    for period in periods:
        specs = flapping_links(
            [(0, top), (top, 0)], flap_period=period, flap_up=flap_up,
            retransmit=retransmit, seed=seed,
        )
        row = partition_point(
            protocol, num_nodes, link_fault_specs=specs, rate=rate,
            duration=duration, seed=seed,
        )
        row["scenario"] = "link_flap_sweep"
        row["flap_period"] = period
        row["flap_up"] = flap_up
        rows.append(row)
    return rows


def partition_heal_retry_storm(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    rate: float = 400.0,
    duration: float = 15.0,
    partition_start: float = 3.0,
    partition_duration: float = 6.0,
    retry_timeout: float = 0.5,
    seed: int = 42,
) -> Dict[str, object]:
    """Aggressive client retries against a partition: does backoff keep the
    post-heal resubmission burst bounded?

    Clients run a deliberately hot retry loop (0.5 s initial timeout).
    Exponential backoff with a cap plus jitter keeps the total retry count
    bounded — each stuck request resends at most ``log2(cap/timeout)``
    times before settling at the capped rate — and the nodes' idempotent
    bucket queues absorb the duplicates that race the heal.  The row
    reports the retry total and the duplicate count so regressions in
    either direction (retry storms, lost liveness) are visible.
    """
    specs = minority_partition(
        1, num_nodes, partition_start, partition_start + partition_duration
    )
    config = chaos_config(
        protocol, num_nodes, random_seed=seed, client_retry_timeout=retry_timeout
    )
    deployment = Deployment(
        config,
        network_config=scaled_network(),
        workload=_workload(rate, duration),
        partition_specs=specs,
        drain_time=15.0,
    )
    result = deployment.run()
    row = _chaos_row(result, duration)
    row["scenario"] = "partition_heal_retry_storm"
    row["protocol"] = protocol
    row["nodes"] = num_nodes
    row["retry_timeout"] = retry_timeout
    row["duplicates_absorbed"] = sum(
        sum(node.duplicate_requests.values()) for node in result.nodes
    )
    return row


def epoch_length_ablation(
    num_nodes: int = 8,
    epoch_lengths: Sequence[int] = (16, 32, 64),
    rate: float = 800.0,
    duration: float = 10.0,
) -> List[Dict[str, object]]:
    """Throughput/latency sensitivity to the epoch length."""
    rows = []
    for epoch_length in epoch_lengths:
        config = iss_config(PROTOCOL_PBFT, num_nodes, epoch_length=epoch_length)
        report = _run(config, rate, duration)
        rows.append(
            {
                "epoch_length": epoch_length,
                "throughput": report.throughput,
                "latency_mean": report.latency.mean,
                "epochs_completed": report.extra.get("epochs_completed", 0.0),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Dynamic membership — reconfiguration at epoch boundaries
# ---------------------------------------------------------------------------

#: Epoch length for the membership scenarios.  Reconfigurations activate at
#: epoch boundaries, so shorter epochs make joins/removals land (and the
#: scenarios finish) sooner without changing what is being proven.
#: Override with ``REPRO_MEMBERSHIP_EPOCH_LENGTH``.
DEFAULT_MEMBERSHIP_EPOCH_LENGTH = 16

#: Spacing between a rolling upgrade's remove and re-add (and between
#: per-node cycles).  Must exceed the epoch duration at the scenario's
#: request rate, or both ConfigTxs commit in one epoch and cancel out.
#: Override with ``REPRO_MEMBERSHIP_PERIOD``.
DEFAULT_MEMBERSHIP_PERIOD = 6.0


def membership_epoch_length() -> int:
    """Epoch length for membership scenarios (REPRO_MEMBERSHIP_EPOCH_LENGTH).

    Non-positive or unparseable values fall back to
    :data:`DEFAULT_MEMBERSHIP_EPOCH_LENGTH`.
    """
    try:
        length = int(os.environ.get(
            "REPRO_MEMBERSHIP_EPOCH_LENGTH", DEFAULT_MEMBERSHIP_EPOCH_LENGTH
        ))
    except ValueError:
        return DEFAULT_MEMBERSHIP_EPOCH_LENGTH
    return length if length > 0 else DEFAULT_MEMBERSHIP_EPOCH_LENGTH


def membership_period() -> float:
    """Rolling-upgrade cycle spacing in seconds (REPRO_MEMBERSHIP_PERIOD).

    Non-positive or unparseable values fall back to
    :data:`DEFAULT_MEMBERSHIP_PERIOD`.
    """
    try:
        period = float(
            os.environ.get("REPRO_MEMBERSHIP_PERIOD", DEFAULT_MEMBERSHIP_PERIOD)
        )
    except ValueError:
        return DEFAULT_MEMBERSHIP_PERIOD
    return period if period > 0 else DEFAULT_MEMBERSHIP_PERIOD


def membership_config(protocol: str, num_nodes: int, **overrides) -> ISSConfig:
    """Scenario configuration for dynamic-membership runs.

    :func:`chaos_config`'s graceful degradation (client responses, the
    retry loop, jittered timers, stalled-epoch catch-up) plus the shorter
    membership epoch: clients ride out a reconfiguration the same way they
    ride out a partition, which is what lets the scenarios gate on 100 %
    correct-client completion *through* joins, removals and upgrades.
    """
    defaults = dict(epoch_length=membership_epoch_length())
    defaults.update(overrides)
    return chaos_config(protocol, num_nodes, **defaults)


def _membership_row(result) -> Dict[str, object]:
    """Figures every membership scenario reports, from one finished run."""
    report = result.report
    membership = report.membership
    live = [node for node in result.nodes if not node.crashed]
    joins = membership.get("joins", [])
    return {
        "throughput": report.throughput,
        "latency_mean": report.latency.mean,
        "latency_p95": report.latency.p95,
        "submitted": sum(c.requests_submitted for c in result.clients),
        "completed": sum(c.requests_completed for c in result.clients),
        "all_complete": all(
            c.requests_completed == c.requests_submitted for c in result.clients
        ),
        "prefixes_identical": prefixes_identical(live),
        "violations": check_invariants(result),
        "activations": membership.get("activations", []),
        "final_view": membership.get("final_view", []),
        "joins": joins,
        "all_joined": all(j["time_to_join"] >= 0.0 for j in joins),
        "time_to_join_max": max((j["time_to_join"] for j in joins), default=0.0),
        "removed": membership.get("removed", []),
        "evictions": membership.get("evictions", []),
        "config_txs_committed": len(membership.get("config_txs_committed", [])),
    }


def run_membership_point(
    protocol: str,
    num_nodes: int = 4,
    membership_specs: Sequence[MembershipSpec] = (),
    rate: float = 400.0,
    duration: float = 20.0,
    num_clients: int = 8,
    seed: int = 42,
    drain_time: float = 12.0,
    byzantine_specs=(),
    malicious_client_specs=(),
    **config_overrides,
):
    """One run under a membership-change schedule (shared harness of every
    dynamic-membership scenario); returns ``(result, row)`` so callers can
    inspect nodes/clients beyond the row's figures.

    ``drain_time`` gives in-flight joins and the retry loop room to finish
    after the workload stops — 100 % completion *through* reconfiguration
    is what the scenarios assert.
    """
    config = membership_config(
        protocol, num_nodes, random_seed=seed, **config_overrides
    )
    deployment = Deployment(
        config,
        network_config=scaled_network(),
        workload=_workload(rate, duration, clients=num_clients),
        membership_specs=membership_specs,
        byzantine_specs=byzantine_specs,
        malicious_client_specs=malicious_client_specs,
        drain_time=drain_time,
    )
    result = deployment.run()
    row = _membership_row(result)
    row["protocol"] = protocol
    row["nodes"] = num_nodes
    return result, row


def membership_point(protocol: str, num_nodes: int = 4, **kwargs) -> Dict[str, object]:
    """Row-only wrapper over :func:`run_membership_point`."""
    _, row = run_membership_point(protocol, num_nodes, **kwargs)
    return row


def membership_join(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    joiners: int = 1,
    join_time: float = 3.0,
    rate: float = 400.0,
    duration: float = 20.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Grow the cluster by ``joiners`` replicas mid-run.

    Each add-ConfigTx is ordered like any client request and activates at
    the next epoch boundary; the new replica boots empty, state-transfers
    the committed prefix and joins ordering.  The row's ``all_joined`` /
    ``time_to_join_max`` are the figures of merit; the quorum sizes grow
    with the view (n → n + joiners) with no interruption to ordering.
    """
    specs = membership_additions(joiners, num_nodes, start=join_time)
    row = membership_point(
        protocol, num_nodes, membership_specs=specs, rate=rate,
        duration=duration, seed=seed,
    )
    row["scenario"] = "membership_join"
    row["joiners"] = joiners
    return row


def membership_leave(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 5,
    leavers: int = 1,
    leave_time: float = 3.0,
    rate: float = 400.0,
    duration: float = 20.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Shrink the cluster by ``leavers`` replicas mid-run.

    Victims are the highest-numbered nodes (node 0 stays inspectable).
    The remove-ConfigTx commits in some epoch *e*, the view without the
    victim takes effect at epoch *e+1*, and the victim retires itself
    after sealing *e* — its delivered prefix ends exactly at the epoch
    boundary, which :func:`~repro.harness.invariants.check_membership`
    verifies.
    """
    victims = [num_nodes - 1 - i for i in range(leavers)]
    if len(victims) >= num_nodes:
        raise ValueError("cannot remove every node")
    specs = membership_removals(victims, start=leave_time)
    row = membership_point(
        protocol, num_nodes, membership_specs=specs, rate=rate,
        duration=duration, seed=seed,
    )
    row["scenario"] = "membership_leave"
    row["leavers"] = leavers
    return row


def rolling_upgrade(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    period: Optional[float] = None,
    rate: float = 300.0,
    seed: int = 42,
    tail: float = 6.0,
) -> Dict[str, object]:
    """Upgrade every replica in turn: remove it, then re-add it one
    ``period`` later — the paper's reconfiguration story applied n times.

    One node is out at a time, so the remaining replicas keep a strong
    quorum and ordering never stops; each re-added node recovers via
    snapshot + WAL replay + state transfer like a restarted replica.  The
    run's duration is derived from the schedule so the last re-add has an
    epoch boundary plus catch-up time to land.  Row fields of merit:
    ``upgraded`` (how many replicas completed the remove+re-add cycle),
    ``all_complete`` and ``prefixes_identical`` (the acceptance gate),
    and ``final_view`` (back to the genesis set).
    """
    if period is None:
        period = membership_period()
    specs = rolling_upgrade_specs(num_nodes, start=3.0, period=period)
    duration = 3.0 + 2 * period * num_nodes + tail
    row = membership_point(
        protocol, num_nodes, membership_specs=specs, rate=rate,
        duration=duration, seed=seed, drain_time=15.0,
    )
    row["scenario"] = "rolling_upgrade"
    row["period"] = period
    row["upgraded"] = sum(
        1
        for j in row["joins"]
        if j.get("rejoined") and j["time_to_join"] >= 0.0
    )
    row["upgrade_complete"] = (
        row["upgraded"] == num_nodes
        and sorted(row["final_view"]) == list(range(num_nodes))
    )
    return row


def byzantine_eviction(
    protocol: str = PROTOCOL_PBFT,
    behaviour: str = BYZ_EQUIVOCATE,
    num_nodes: int = 4,
    rate: float = 400.0,
    duration: float = 25.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Close the detection loop: a Byzantine replica is evicted *from
    membership*, not just blacklisted from the leaderset.

    The adversary (highest-numbered node) misbehaves, its segment's view
    change fills the slots with ⊥ and records it in the shared failure
    history; the harness's eviction watch then submits a remove-ConfigTx,
    and the next epoch boundary activates a view without it.  The
    blacklist policy kept it out of the *leaderset* within epochs; the
    membership eviction removes it from quorums and checkpoints too.
    """
    adversary = num_nodes - 1
    byz = byzantine_leaders(1, num_nodes, behaviour=behaviour)
    specs = eviction_watch([adversary])
    result, row = run_membership_point(
        protocol, num_nodes, membership_specs=specs, byzantine_specs=byz,
        rate=rate, duration=duration, seed=seed,
    )
    row["prefixes_identical"] = prefixes_identical(
        [node for node in correct_nodes(result, byz) if not node.crashed]
    )
    row["scenario"] = "byzantine_eviction"
    row["behaviour"] = behaviour
    row["adversary"] = adversary
    row["evicted_from_membership"] = (
        adversary in row["removed"] and adversary not in row["final_view"]
    )
    row["detection_time"] = max(
        (e["detected_at"] for e in row["evictions"]), default=-1.0
    )
    return row


def combined_adversary(
    protocol: str = PROTOCOL_PBFT,
    num_nodes: int = 4,
    num_abusive: int = 1,
    client_behaviour: str = CLIENT_DUPLICATE_FLOOD,
    byz_behaviour: str = BYZ_EQUIVOCATE,
    num_clients: int = 8,
    rate: float = 400.0,
    duration: float = 25.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Abusive clients and a Byzantine replica in one run.

    The regression the membership battery pins: client-side defences
    (watermarks, duplicate absorption) and replica-side eviction must
    compose — the Byzantine replica ends up evicted from membership while
    every *correct* client's requests still complete.
    """
    adversary = num_nodes - 1
    byz = byzantine_leaders(1, num_nodes, behaviour=byz_behaviour)
    client_specs = abusive_clients(
        num_abusive, num_clients, behaviour=client_behaviour
    )
    result, row = run_membership_point(
        protocol, num_nodes,
        membership_specs=eviction_watch([adversary]),
        byzantine_specs=byz,
        malicious_client_specs=client_specs,
        rate=rate, duration=duration, num_clients=num_clients, seed=seed,
    )
    abusive_ids = {spec.client for spec in client_specs}
    correct_clients = [c for c in result.clients if c.client_id not in abusive_ids]
    correct = correct_nodes(result, byz)
    row["scenario"] = "combined_adversary"
    row["client_behaviour"] = client_behaviour
    row["byz_behaviour"] = byz_behaviour
    row["correct_submitted"] = sum(c.requests_submitted for c in correct_clients)
    row["correct_completed"] = sum(c.requests_completed for c in correct_clients)
    row["correct_all_complete"] = all(
        c.requests_completed == c.requests_submitted for c in correct_clients
    )
    row["prefixes_identical"] = prefixes_identical(
        [node for node in correct if not node.crashed]
    )
    row["evicted_from_membership"] = (
        adversary in row["removed"] and adversary not in row["final_view"]
    )
    return row
