"""Standing invariants every run must satisfy, engine and scenario aside.

The smoke gates, the scenario fuzzer and the cross-engine differential
tests all assert the same safety properties — delivered prefixes agree,
no request is delivered twice, forged signatures never outnumber the
rejections that caught them.  This module owns those checks once, so a
new gate cannot quietly redefine what (say) "no double delivery" means.

Two layers:

* per-run checks (:func:`check_invariants`) — safety properties of one
  :class:`~repro.harness.runner.DeploymentResult`;
* cross-run equivalence (:func:`assert_runs_equivalent`) — the bit-identity
  contract between the single-queue and sharded engines: identical
  delivered traces per node, identical event/message counters, identical
  completion figures.

All checkers return a list of human-readable violation strings (empty =
clean); the ``assert_*`` wrappers raise ``AssertionError`` with the full
list, which is the form the tests and ``python -m repro.fuzz_smoke`` use.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.types import Batch
from ..golden import delivered_trace


def delivered_rids(node) -> List[object]:
    """Request ids in the node's delivered prefix, in delivery order.

    Nil entries contribute nothing; a request id appearing twice in this
    list is a double delivery (total-order violation).
    """
    return [
        request.rid
        for sn in range(node.log.first_undelivered)
        for entry in [node.log.entry(sn)]
        if isinstance(entry, Batch)
        for request in entry.requests
    ]


def check_no_double_delivery(nodes) -> List[str]:
    """No node's delivered prefix may contain the same request twice."""
    violations = []
    for node in nodes:
        rids = delivered_rids(node)
        if len(rids) != len(set(rids)):
            dupes = len(rids) - len(set(rids))
            violations.append(
                f"node {node.node_id}: {dupes} duplicate request(s) in the "
                f"delivered prefix"
            )
    return violations


def check_prefix_identity(nodes) -> List[str]:
    """Live nodes must agree on the common prefix of their delivered logs.

    Crashed nodes are skipped (their incarnation stopped mid-prefix); for
    every live pair the shorter delivered trace must be a prefix of the
    longer one, entry digests included.
    """
    live = [node for node in nodes if not node.crashed]
    if len(live) < 2:
        return []
    violations = []
    reference = max(live, key=lambda node: node.log.first_undelivered)
    ref_trace = delivered_trace(reference)
    for node in live:
        if node is reference:
            continue
        trace = delivered_trace(node)
        if trace != ref_trace[: len(trace)]:
            violations.append(
                f"node {node.node_id}: delivered prefix diverges from node "
                f"{reference.node_id} within the first {len(trace)} entries"
            )
    return violations


def check_completed_within_submitted(report) -> List[str]:
    """A run can never complete more requests than were submitted."""
    if report.completed > report.submitted:
        return [
            f"completed {report.completed} requests but only "
            f"{report.submitted} were submitted"
        ]
    return []


def check_rejections_cover_forgeries(result) -> List[str]:
    """Forged signatures must be caught: rejections ≥ forged submissions.

    Every forged-signature request an abusive client managed to send must
    show up as at least one invalid-signature rejection somewhere in the
    cluster (nodes validate independently, so rejections typically exceed
    forgeries).  Runs without abusive clients trivially satisfy this with
    0 ≥ 0.
    """
    abuse = result.report.client_abuse
    forged = sum(
        int(stats.get("forged_sent", 0))
        for stats in (abuse.get("abusers") or {}).values()
    )
    if forged == 0:
        return []
    rejected = sum(node.invalid_signatures_rejected() for node in result.nodes)
    if rejected < forged:
        return [
            f"abusive clients sent {forged} forged signatures but the "
            f"cluster only rejected {rejected}"
        ]
    return []


def check_membership_views(result) -> List[str]:
    """Dynamic-membership safety: every replica derives the same view
    sequence from the committed log.

    For each epoch two replicas have both sealed, their activated views
    must hold the identical replica set — views are a deterministic
    function of the ordered ConfigTxs, so divergence here means the
    reconfiguration machinery forked the configuration.  The harness's
    reported ``final_view`` must match what the freshest replica computed,
    and quorum arithmetic must agree node-for-node (same view ⇒ same n,
    f, strong and weak quorums — the "keyset consistency" the checkpoint
    and SB layers rely on).  Static-configuration runs return clean.
    """
    membership = result.report.membership
    if not membership:
        return []
    violations = []
    trackers = [
        (node, node.membership)
        for node in result.nodes
        if getattr(node, "membership", None) is not None
    ]
    sealed = [(n, t) for n, t in trackers if t.sealed_through >= 0]
    if not sealed:
        return []
    ref_node, ref = max(sealed, key=lambda pair: pair[1].sealed_through)
    for node, tracker in sealed:
        if tracker is ref:
            continue
        limit = min(tracker.sealed_through, ref.sealed_through) + 1
        for epoch in range(limit + 1):
            mine = tracker.view_for(epoch)
            theirs = ref.view_for(epoch)
            if mine.nodes != theirs.nodes:
                violations.append(
                    f"node {node.node_id}: view for epoch {epoch} is "
                    f"{list(mine.nodes)} but node {ref_node.node_id} "
                    f"activated {list(theirs.nodes)}"
                )
                break
            if (mine.strong_quorum, mine.weak_quorum, mine.max_faulty) != (
                theirs.strong_quorum, theirs.weak_quorum, theirs.max_faulty
            ):
                violations.append(
                    f"node {node.node_id}: quorum arithmetic for epoch "
                    f"{epoch} disagrees with node {ref_node.node_id}"
                )
                break
    final_view = membership.get("final_view")
    if final_view is not None and list(ref.current_view().nodes) != list(final_view):
        violations.append(
            f"reported final view {list(final_view)} but node "
            f"{ref_node.node_id} computed {list(ref.current_view().nodes)}"
        )
    return violations


def check_removed_nodes_quiesced(result) -> List[str]:
    """A replica removed from membership stops delivering at the boundary.

    Each activation record names the epoch its view takes effect; a
    removed replica seals the preceding epoch, retires, and must never
    deliver a position of the new epoch — a delivery past the boundary
    would be a node acting under a configuration it is no longer part of.
    Replicas that were later re-added (rolling upgrade) are represented by
    their new incarnation and are exempt; so are replicas that were
    simply crashed (not retired) when the removal activated.
    """
    membership = result.report.membership
    if not membership:
        return []
    violations = []
    epoch_length = result.nodes[0].config.epoch_length
    for record in membership.get("activations", ()):
        boundary = record["epoch"] * epoch_length
        for node_id in record.get("removed", ()):
            if node_id >= len(result.nodes):
                continue
            node = result.nodes[node_id]
            if not getattr(node, "retired", False):
                continue
            if node.log.first_undelivered > boundary:
                violations.append(
                    f"node {node_id}: removed effective epoch "
                    f"{record['epoch']} but delivered through position "
                    f"{node.log.first_undelivered} (> boundary {boundary})"
                )
    return violations


def check_retired_prefix_identity(result) -> List[str]:
    """Retired replicas' delivered prefixes stay on the agreed order.

    :func:`check_prefix_identity` skips crashed nodes, and retirement
    tears a replica down through the crash path — but unlike a crash, a
    clean removal guarantees the full delivered prefix is valid.  So the
    membership runs additionally pin every retired replica's trace to be
    a prefix of the freshest live replica's.
    """
    if not result.report.membership:
        return []
    live = [node for node in result.nodes if not node.crashed]
    retired = [node for node in result.nodes if getattr(node, "retired", False)]
    if not live or not retired:
        return []
    reference = max(live, key=lambda node: node.log.first_undelivered)
    ref_trace = delivered_trace(reference)
    violations = []
    for node in retired:
        trace = delivered_trace(node)
        if trace != ref_trace[: len(trace)]:
            violations.append(
                f"node {node.node_id}: retired with a delivered prefix that "
                f"diverges from live node {reference.node_id}"
            )
    return violations


def check_membership(result) -> List[str]:
    """All dynamic-membership invariants (no-ops on static runs)."""
    return (
        check_membership_views(result)
        + check_removed_nodes_quiesced(result)
        + check_retired_prefix_identity(result)
    )


def check_invariants(result) -> List[str]:
    """All per-run safety checks over one DeploymentResult (empty = clean)."""
    return (
        check_prefix_identity(result.nodes)
        + check_no_double_delivery(result.nodes)
        + check_completed_within_submitted(result.report)
        + check_rejections_cover_forgeries(result)
        + check_membership(result)
    )


def assert_invariants(result, context: str = "") -> None:
    """Raise ``AssertionError`` listing every violated per-run invariant."""
    violations = check_invariants(result)
    if violations:
        prefix = f"{context}: " if context else ""
        raise AssertionError(prefix + "; ".join(violations))


def check_runs_equivalent(a, b) -> List[str]:
    """Bit-identity contract between two runs of the same scenario.

    ``a`` and ``b`` are DeploymentResults from different engines (or the
    same engine twice, for determinism checks).  Equivalence means: the
    same per-node delivered trace — sequence numbers and entry digests —
    plus identical submitted/completed counts and identical simulator and
    network totals (``events_executed``, ``messages_sent``, payload
    counters).  The counters are included deliberately: the sharded engine
    claims the *same schedule*, not just the same outcome.
    """
    violations = []
    if len(a.nodes) != len(b.nodes):
        return [f"node counts differ: {len(a.nodes)} vs {len(b.nodes)}"]
    for node_a, node_b in zip(a.nodes, b.nodes):
        if delivered_trace(node_a) != delivered_trace(node_b):
            violations.append(
                f"node {node_a.node_id}: delivered traces differ between runs"
            )
    for key in ("submitted", "completed"):
        va, vb = getattr(a.report, key), getattr(b.report, key)
        if va != vb:
            violations.append(f"{key} differs: {va} vs {vb}")
    for key in ("sim_events", "messages_sent", "bytes_sent", "messages_dropped"):
        va, vb = a.report.extra.get(key), b.report.extra.get(key)
        if va != vb:
            violations.append(f"extra[{key!r}] differs: {va} vs {vb}")
    stats_a, stats_b = a.network.stats, b.network.stats
    for key in ("messages_delivered", "batches_sent", "payloads_batched"):
        va, vb = getattr(stats_a, key), getattr(stats_b, key)
        if va != vb:
            violations.append(f"network stats {key} differs: {va} vs {vb}")
    return violations


def assert_runs_equivalent(a, b, context: str = "") -> None:
    """Raise ``AssertionError`` listing every cross-run divergence."""
    violations = check_runs_equivalent(a, b)
    if violations:
        prefix = f"{context}: " if context else ""
        raise AssertionError(prefix + "; ".join(violations))
