"""Experiment harness: build and run one complete simulated deployment.

A :class:`Deployment` wires together everything one experiment needs —
simulator, WAN network, key store, ISS (or baseline) nodes, clients, the
open-loop workload generator, fault injection and metrics — runs it for the
configured virtual duration, and returns a :class:`~repro.metrics.RunReport`.
This is the programmatic equivalent of the paper's cloud-deployment tooling
(Section 4.4.3), minus the cloud bill.

Crash recovery: when restart specs are given (or ``durable_storage=True``),
every node owns a :class:`~repro.storage.node_storage.NodeStorage` that
outlives it.  A scheduled :class:`~repro.sim.faults.RestartSpec` tears the
crashed incarnation down and the deployment rebuilds the node from that
storage — WAL replay plus snapshot via
:class:`~repro.storage.recovery.RecoveryManager`, then state transfer for
everything ordered while the node was down.  A poll watcher (tick
``REPRO_RECOVERY_POLL_INTERVAL``) detects when the node is back at the
cluster frontier and attaches one recovery record (downtime, WAL entries
replayed, state-transfer bytes, time-to-caught-up) to the run's report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from ..baselines.mirbft import MirBFTNode
from ..core.client import Client
from ..core.config import (
    ENGINE_SHARDED,
    ISSConfig,
    NetworkConfig,
    SimConfig,
    WorkloadConfig,
)
from ..core.iss import ISSNode
from ..core.leader_policy import LeaderSelectionPolicy
from ..core.membership import ACTION_REMOVE, ConfigTx, encode_config_tx
from ..core.segment import LAYOUT_ROUND_ROBIN
from ..core.validation import REJECTION_REASONS
from ..crypto.signatures import KeyStore
from ..core.state_transfer import probe_stagger_interval
from ..metrics.collector import MetricsCollector, RunReport
from ..obs.config import ObsConfig
from ..obs.export import write_run_artifacts
from ..obs.metrics import MetricsSampler
from ..obs.tracer import RequestTracer
from ..sim.chaos import DROP_CAUSES, LinkFaultSpec, PartitionSpec
from ..sim.client_adversary import AbusiveClient
from ..sim.faults import (
    BYZ_CENSOR,
    MEMBER_ADD,
    MEMBER_EVICT_DETECTED,
    ByzantineSpec,
    CrashSpec,
    FaultInjector,
    MaliciousClientSpec,
    MembershipSpec,
    RestartSpec,
    StragglerSpec,
)
from ..sim.latency import LatencyModel
from ..sim.network import Network
from ..sim.sharded import ShardedSimulator
from ..sim.simulator import Simulator
from ..storage.node_storage import NodeStorage
from ..storage.recovery import RecoveryInfo, RecoveryManager
from ..workload.generator import WorkloadGenerator

#: Factory returning a fresh leader-selection policy for one node.
PolicyFactory = Callable[[ISSConfig], LeaderSelectionPolicy]

#: Default virtual-time tick of the post-restart catch-up watcher (seconds).
DEFAULT_RECOVERY_POLL_INTERVAL = 0.25

#: Shard-count cap when ``SimConfig.num_shards`` is 0 (auto): one shard per
#: datacenter up to this many.  More shards shrink per-queue sort batches
#: without shrinking the active heap, so returns diminish quickly.
DEFAULT_MAX_SHARDS = 8


def recovery_poll_interval() -> float:
    """Catch-up watcher tick (env var ``REPRO_RECOVERY_POLL_INTERVAL``).

    Unparseable or non-positive values fall back to
    :data:`DEFAULT_RECOVERY_POLL_INTERVAL`.  The tick is virtual time, so it
    changes *when* a recovery is declared caught-up (quantisation) but not
    what the protocol does.
    """
    raw = os.environ.get("REPRO_RECOVERY_POLL_INTERVAL")
    if raw is None:
        return DEFAULT_RECOVERY_POLL_INTERVAL
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_RECOVERY_POLL_INTERVAL
    return value if value > 0 else DEFAULT_RECOVERY_POLL_INTERVAL


@dataclass
class DeploymentResult:
    """Report plus the raw objects, for tests that want to inspect internals."""

    report: RunReport
    nodes: List[ISSNode] = field(default_factory=list)
    clients: List[Client] = field(default_factory=list)
    network: Optional[Network] = None
    collector: Optional[MetricsCollector] = None
    #: Per-node durable storage (empty unless the deployment enables it).
    storages: Dict[int, NodeStorage] = field(default_factory=dict)


class Deployment:
    """One fully wired simulated ISS (or baseline) deployment."""

    def __init__(
        self,
        config: ISSConfig,
        network_config: Optional[NetworkConfig] = None,
        workload: Optional[WorkloadConfig] = None,
        crash_specs: Sequence[CrashSpec] = (),
        straggler_specs: Sequence[StragglerSpec] = (),
        restart_specs: Sequence[RestartSpec] = (),
        byzantine_specs: Sequence[ByzantineSpec] = (),
        malicious_client_specs: Sequence[MaliciousClientSpec] = (),
        partition_specs: Sequence[PartitionSpec] = (),
        link_fault_specs: Sequence[LinkFaultSpec] = (),
        membership_specs: Sequence[MembershipSpec] = (),
        membership_enabled: Optional[bool] = None,
        durable_storage: Optional[bool] = None,
        recovery_poll: Optional[float] = None,
        probe_stagger: Optional[float] = None,
        policy_factory: Optional[PolicyFactory] = None,
        node_class: Type[ISSNode] = ISSNode,
        layout: str = LAYOUT_ROUND_ROBIN,
        drain_time: float = 5.0,
        sim_config: Optional[SimConfig] = None,
        obs: Optional[ObsConfig] = None,
    ):
        self.config = config
        self.network_config = network_config or NetworkConfig()
        self.workload = workload or WorkloadConfig()
        self.crash_specs = list(crash_specs)
        self.straggler_specs = list(straggler_specs)
        self.restart_specs = list(restart_specs)
        self.byzantine_specs = list(byzantine_specs)
        self.malicious_client_specs = list(malicious_client_specs)
        self.partition_specs = list(partition_specs)
        self.link_fault_specs = list(link_fault_specs)
        self.membership_specs = list(membership_specs)
        # Membership machinery defaults on exactly when a reconfiguration is
        # scheduled, so static deployments keep their (golden-traced)
        # schedules bit-identical; tests that submit ConfigTxs by hand can
        # force it on without scheduling any spec.
        if membership_enabled is None:
            membership_enabled = bool(self.membership_specs)
        self.membership_enabled = membership_enabled
        #: Node ids joining beyond the genesis set, in ascending order.
        self._joining_ids = sorted(
            {
                spec.node
                for spec in self.membership_specs
                if spec.action == MEMBER_ADD and spec.node >= config.num_nodes
            }
        )
        # The nodes list is indexed by node id everywhere, so brand-new ids
        # must extend it contiguously from the genesis count.
        expected = list(
            range(config.num_nodes, config.num_nodes + len(self._joining_ids))
        )
        if self._joining_ids != expected:
            raise ValueError(
                f"joining node ids must be contiguous from {config.num_nodes}, "
                f"got {self._joining_ids}"
            )
        self.policy_factory = policy_factory
        self.node_class = node_class
        self.layout = layout
        self.drain_time = drain_time
        # Restarts need durable state to recover from; storage defaults on
        # exactly when a restart is scheduled so crash-only and fault-free
        # deployments keep their persistence-free hot path (and their golden
        # traces) unchanged.
        if durable_storage is None:
            durable_storage = bool(self.restart_specs)
        self.durable_storage = durable_storage
        #: Catch-up watcher tick, resolved once per deployment (pass an
        #: explicit value to pin it against the env var, e.g. for golden
        #: traces).
        self.recovery_poll = (
            recovery_poll if recovery_poll and recovery_poll > 0 else recovery_poll_interval()
        )
        #: Open-ended state-transfer probe stagger (pass explicitly to pin
        #: against the ``REPRO_PROBE_STAGGER`` env var, e.g. golden traces).
        self.probe_stagger = (
            probe_stagger if probe_stagger is not None else probe_stagger_interval()
        )

        #: Engine selection: an explicit SimConfig wins; otherwise the
        #: ``REPRO_ENGINE`` env var (default: the single-queue engine).
        self.sim_config = sim_config if sim_config is not None else SimConfig.from_env()
        self.sim_config.validate()
        self.engine = self.sim_config.engine
        # The latency model is built first so the sharded engine can derive
        # its shard map and lookahead from datacenter placement; the two
        # objects have independent RNGs, so construction order changes no
        # schedule (golden traces pin this).
        self.latency = LatencyModel(self.network_config, config.num_nodes)
        # Joining replicas get their datacenter placement up front (same
        # deterministic rule as genesis nodes), so the sharded engine can
        # assign their endpoints before the run starts.
        if self._joining_ids:
            self.latency.register_extra_nodes(self._joining_ids)
        #: Datacenter → shard map (empty on the single engine).
        self._shard_of_dc: Dict[int, int] = {}
        if self.engine == ENGINE_SHARDED:
            self.sim = self._build_sharded_sim()
            for node in self._joining_ids:
                self.sim.assign_endpoint(
                    node, self._shard_of_dc[self.latency.datacenter_of(node)]
                )
        else:
            self.sim = Simulator(seed=config.random_seed)
        self.network = Network(self.sim, self.network_config, self.latency)
        self.key_store = KeyStore(deployment_seed=config.random_seed)
        self.injector = FaultInjector(self.sim, self.network)
        self.collector = MetricsCollector(
            completion_quorum=config.weak_quorum, warmup=self.workload.warmup
        )

        #: Observability: an explicit ObsConfig wins; otherwise the
        #: ``REPRO_TRACE*`` env vars (default: everything off).  Golden-trace
        #: smokes pin ``ObsConfig.disabled()`` explicitly.
        self.obs = obs if obs is not None else ObsConfig.from_env()
        self.tracer: Optional[RequestTracer] = None
        #: Delivery listener handed to every node.  Deliver *span* events are
        #: not recorded here but at the delivery-advance sites (one batched
        #: event per advance, see ``RequestTracer.on_deliver_batch``) — the
        #: per-item listener stays untouched whether tracing or not.
        self._on_deliver = self.collector.record_delivery
        if self.obs.trace:
            self.tracer = RequestTracer(sample=self.obs.sample)
            self.collector.tracer = self.tracer
            self.network.tracer = self.tracer
        self.sampler: Optional[MetricsSampler] = None
        if self.obs.metrics_interval > 0:
            self.sampler = MetricsSampler(
                self.sim, self.obs.metrics_interval, warmup=self.workload.warmup
            )
            self._register_probes(self.sampler)

        self.client_ids = list(range(self.workload.num_clients))
        #: Admin pseudo-client identity submitting ConfigTxs (the id just
        #: past the workload's clients); None in static deployments.  It is
        #: part of ``client_ids`` so every node's validator and watermark
        #: tracker knows it, but never part of the workload generator.
        self.admin_client_id: Optional[int] = None
        if self.membership_enabled:
            self.admin_client_id = self.workload.num_clients
            self.client_ids.append(self.admin_client_id)
        client_ids = self.client_ids
        self._stragglers_by_node: Dict[int, StragglerSpec] = {
            spec.node: spec for spec in self.straggler_specs
        }
        self._byzantine_by_node: Dict[int, ByzantineSpec] = {
            spec.node: spec for spec in self.byzantine_specs
        }
        censored = sorted(
            {
                bucket
                for spec in self.byzantine_specs
                if spec.behaviour == BYZ_CENSOR
                for bucket in spec.buckets
            }
        )
        if censored:
            self.collector.watch_buckets(censored, config.num_buckets)
        self.storages: Dict[int, NodeStorage] = {}
        if self.durable_storage:
            self.storages = {
                node_id: NodeStorage(node_id) for node_id in range(config.num_nodes)
            }
        #: Crash time per node (for the downtime figure of recovery records).
        self._crash_times: Dict[int, float] = {}
        #: Recovery records of restarted nodes still catching up.
        self._pending_recoveries: List[Dict[str, float]] = []

        # --- dynamic-membership runtime state (inert in static runs) ------
        self.admin_client: Optional[Client] = None
        #: Activation epochs already handled once deployment-wide (the
        #: listener fires per node; joins/removals are processed on the
        #: first firing only).
        self._activated_epochs: set = set()
        #: One record per view-changing activation (epoch, added, removed).
        self._membership_activations: List[Dict[str, object]] = []
        #: One record per booted joiner (time-to-join filled by the poll
        #: watcher; -1 when the run ends first).
        self._join_records: List[Dict[str, object]] = []
        #: Nodes removed from membership (activated, not merely scheduled).
        self._removed_nodes: set = set()
        #: One record per detection-driven eviction submitted.
        self._eviction_records: List[Dict[str, object]] = []
        self._evictions_submitted: set = set()

        self.nodes: List[ISSNode] = [
            self._build_node(node_id) for node_id in range(config.num_nodes)
        ]
        self.injector.on_crash = self._on_node_crash
        self.injector.on_restart = self._on_node_restart
        self.injector.on_partition_start = self._on_partition_start
        self.injector.on_partition_heal = self._on_partition_heal
        self.injector.schedule_all(self.crash_specs)
        self.injector.schedule_restarts(self.restart_specs)
        self.injector.schedule_byzantines(self.byzantine_specs)
        self.injector.schedule_malicious_clients(self.malicious_client_specs)
        self.injector.schedule_partitions(self.partition_specs)
        self.injector.schedule_link_faults(self.link_fault_specs)

        malicious_by_client: Dict[int, MaliciousClientSpec] = {}
        for spec in self.malicious_client_specs:
            if spec.client not in client_ids:
                raise ValueError(
                    f"malicious client {spec.client} outside the workload's "
                    f"{len(client_ids)} clients"
                )
            if spec.client in malicious_by_client:
                raise ValueError(
                    f"client {spec.client} has more than one malicious spec; "
                    f"a client process mounts exactly one behaviour"
                )
            malicious_by_client[spec.client] = spec
        self.clients: List[Client] = []
        for client_id in range(self.workload.num_clients):
            common = dict(
                client_id=client_id,
                config=config,
                sim=self.sim,
                network=self.network,
                key_store=self.key_store,
                on_complete=self.collector.record_client_completion,
                tracer=self.tracer,
            )
            spec = malicious_by_client.get(client_id)
            if spec is not None:
                client = AbusiveClient(spec=spec, **common)
                self.injector.register_abusive_client(client)
            else:
                client = Client(**common)
            self.clients.append(client)
        endpoint_clients = list(self.clients)
        if self.membership_enabled:
            # The admin client rides the ordinary request path (signed,
            # bucketed, watermarked) but is driven by membership specs, not
            # the workload generator, and reports no completions.
            self.admin_client = Client(
                client_id=self.admin_client_id,
                config=config,
                sim=self.sim,
                network=self.network,
                key_store=self.key_store,
                tracer=self.tracer,
            )
            endpoint_clients.append(self.admin_client)
        self.latency.register_extra_endpoints([c.endpoint for c in endpoint_clients])
        if self.engine == ENGINE_SHARDED:
            for client in endpoint_clients:
                self.sim.assign_endpoint(
                    client.endpoint,
                    self._shard_of_dc[self.latency.datacenter_of(client.endpoint)],
                )
        # Scheduled last: a spec at time 0 fires immediately and needs the
        # admin client (and every endpoint) in place.
        if self.membership_specs:
            self.injector.on_membership_change = self._on_membership_change_spec
            self.injector.schedule_memberships(self.membership_specs)
            for spec in self.membership_specs:
                if spec.action != MEMBER_EVICT_DETECTED:
                    continue
                if spec.time <= self.sim.now:
                    self.sim.schedule(
                        self.recovery_poll, lambda s=spec: self._poll_eviction(s)
                    )
                else:
                    self.sim.schedule_at(
                        spec.time, lambda s=spec: self._poll_eviction(s)
                    )

        self.generator = WorkloadGenerator(
            clients=self.clients,
            workload=self.workload,
            sim=self.sim,
            on_submit=lambda request, time: self.collector.record_submit(request.rid, time),
        )

    # -------------------------------------------------------- engine builds
    def _build_sharded_sim(self) -> ShardedSimulator:
        """Construct the sharded engine for this deployment's topology.

        Shards follow datacenter placement: every datacenter maps to one
        shard (``dc % num_shards``), so intra-DC traffic — the sub-
        millisecond deliveries that dominate event volume — stays within a
        shard's queue.  The conservative lookahead is the minimum one-way
        base latency between datacenters living in *different* shards:
        jitter is multiplicative and drops only remove events, so no
        cross-shard send can ever be delivered earlier than that bound.
        """
        num_dcs = self.network_config.num_datacenters
        num_shards = self.sim_config.num_shards
        if num_shards == 0:
            num_shards = min(num_dcs, DEFAULT_MAX_SHARDS, max(1, self.config.num_nodes))
        num_shards = max(1, min(num_shards, num_dcs))
        shard_of_dc = {dc: dc % num_shards for dc in range(num_dcs)}
        lookahead = None
        for dc_a in range(num_dcs):
            for dc_b in range(dc_a + 1, num_dcs):
                if shard_of_dc[dc_a] == shard_of_dc[dc_b]:
                    continue
                latency = self.latency.dc_latency(dc_a, dc_b)
                if lookahead is None or latency < lookahead:
                    lookahead = latency
        if lookahead is None:
            # Single shard: no cross-shard edge constrains the horizon, so
            # any positive window is conservative.
            lookahead = self.network_config.inter_dc_latency or 0.02
        sim = ShardedSimulator(
            seed=self.config.random_seed,
            num_shards=num_shards,
            lookahead=lookahead,
            min_window=self.sim_config.min_window,
        )
        self._shard_of_dc = shard_of_dc
        for node in range(self.config.num_nodes):
            sim.assign_endpoint(node, shard_of_dc[self.latency.datacenter_of(node)])
        return sim

    # ----------------------------------------------------------- node builds
    def _build_node(self, node_id: int) -> ISSNode:
        """Instantiate (or re-instantiate, after a restart) one node.

        The constructor registers the node's network handler, so building a
        replacement incarnation atomically takes over the endpoint from the
        crashed one.  The node's :class:`NodeStorage` — if the deployment has
        one — is shared across incarnations; everything else is fresh.
        """
        policy = self.policy_factory(self.config) if self.policy_factory else None
        node = self.node_class(
            node_id=node_id,
            config=self.config,
            sim=self.sim,
            network=self.network,
            key_store=self.key_store,
            client_ids=self.client_ids,
            on_deliver=self._on_deliver,
            fault_injector=self.injector,
            straggler=self._stragglers_by_node.get(node_id),
            byzantine=self._byzantine_by_node.get(node_id),
            policy=policy,
            layout=self.layout,
            storage=self.storages.get(node_id),
            probe_stagger=self.probe_stagger,
            tracer=self.tracer,
            membership_enabled=self.membership_enabled,
        )
        if self.membership_enabled:
            node.membership_listener = self._on_membership_activation
        return node

    def _register_probes(self, sampler: MetricsSampler) -> None:
        """Install the standard per-node and cluster time-series probes.

        Probes close over ``self`` and look nodes up by index on every tick:
        node objects are *rebuilt* on restart, so capturing an incarnation
        would silently sample a dead object.  None of the probes mutate any
        state, which is what makes the sampler non-perturbing.
        """
        sampler.add_rate_probe("throughput", self.collector.completed_count)
        num_nodes = self.config.num_nodes
        for node_id in range(num_nodes):
            sampler.add_probe(
                f"node{node_id}.delivered",
                lambda n=node_id: self.nodes[n].delivered_count(),
            )
            sampler.add_probe(
                f"node{node_id}.pending",
                lambda n=node_id: self.nodes[n].pending_requests(),
            )
            sampler.add_probe(
                f"node{node_id}.instances",
                lambda n=node_id: len(self.nodes[n].orderer.active_instances()),
            )
        if self.durable_storage:
            for node_id in range(num_nodes):
                sampler.add_probe(
                    f"node{node_id}.wal",
                    lambda n=node_id: self.storages[n].wal.appended_total,
                )
        for cause in DROP_CAUSES:
            sampler.add_probe(
                f"drops.{cause}",
                lambda c=cause: self.network.stats.dropped_by_cause.get(c, 0),
            )
        sampler.add_probe(
            "retransmissions", lambda: self.network.stats.retransmissions
        )
        sampler.add_probe(
            "client_retries",
            lambda: sum(c.requests_retried for c in self.clients),
        )

    # ------------------------------------------------------- crash / restart
    def _on_node_crash(self, node_id: int) -> None:
        self._crash_times[node_id] = self.sim.now
        self.nodes[node_id].crash()

    def _on_node_restart(self, node_id: int) -> None:
        """Rebuild a crashed node from its durable storage.

        Recovery mirrors a production replica restart: replay the
        checkpoint-anchored snapshot and the WAL tail into a fresh node
        (:class:`RecoveryManager`), boot it at the first epoch storage does
        not complete, then let the open-ended state-transfer probe fetch
        everything ordered while the node was down.  A watcher polls until
        the node is back at the cluster frontier and only then attaches the
        recovery record (so ``time_to_caught_up`` includes state transfer).
        """
        restarted_at = self.sim.now
        node = self._build_node(node_id)
        storage = self.storages.get(node_id)
        if storage is not None:
            info = RecoveryManager(storage, tracer=self.tracer).recover(
                node, now=restarted_at
            )
        else:
            # Diskless restart: nothing local to replay; state transfer
            # alone rebuilds the log from the peers' stable checkpoints.
            info = RecoveryInfo(node_id=node_id, resume_epoch=0)
        self.nodes[node_id] = node
        node.start_at(info.resume_epoch)
        node.begin_recovery_catchup()

        record = info.as_dict()
        record["restarted_at"] = restarted_at
        record["downtime"] = restarted_at - self._crash_times.get(node_id, restarted_at)
        #: -1 means "still catching up"; overwritten by the watcher.
        record["time_to_caught_up"] = -1.0
        record["state_transfer_bytes"] = 0.0
        record["state_transfer_entries"] = 0.0
        self._pending_recoveries.append(record)
        self.sim.schedule(
            self.recovery_poll, lambda: self._poll_catchup(node, record)
        )

    def _poll_catchup(self, node: ISSNode, record: Dict[str, float]) -> None:
        """Periodic check whether a restarted node reached the frontier.

        The watcher is bound to the exact incarnation it was started for: if
        that incarnation crashed — even if a newer one already took its
        place within the same poll tick — this record stays pending and is
        finalised as not-caught-up (time_to_caught_up = -1) at report time;
        the newer incarnation's restart started its own watcher.
        """
        if node.crashed or self.nodes[node.node_id] is not node:
            return
        if self._caught_up(node):
            record["time_to_caught_up"] = self.sim.now - record["restarted_at"]
            record["state_transfer_bytes"] = float(node.state_transfer.bytes_received)
            record["state_transfer_entries"] = float(node.state_transfer.entries_applied)
            node.end_recovery_catchup()
            self._pending_recoveries.remove(record)
            self.collector.record_recovery(record)
            return
        self.sim.schedule(
            self.recovery_poll, lambda: self._poll_catchup(node, record)
        )

    # -------------------------------------------------- partition lifecycle
    def _on_partition_start(self, spec: PartitionSpec, record: Dict[str, object]) -> None:
        """Snapshot the cluster-wide view-change count when the split lands.

        The heal hook turns this into ``view_changes_during`` — the figure
        that shows whether jittered/backed-off timers kept the minority side
        from storming view changes while it was cut off.
        """
        record["_view_changes_at_start"] = sum(
            node.view_changes for node in self.nodes if not node.crashed
        )

    def _on_partition_heal(self, spec: PartitionSpec, record: Dict[str, object]) -> None:
        """Reconverge the cluster after a heal, without an epoch-timer wait.

        Any live node that fell behind the frontier while cut off (typically
        the minority side) gets the restart path's aggressive catch-up: an
        open-ended ``LATEST_STABLE`` state-transfer probe plus transfer on
        current-epoch stable checkpoints.  A poll watcher then records
        ``time_to_reconverge`` the tick every laggard is back at the
        frontier (it stays -1 if the run ends first).
        """
        start = record.pop("_view_changes_at_start", 0)
        record["view_changes_during"] = (
            sum(node.view_changes for node in self.nodes if not node.crashed) - start
        )
        # Detect laggards against the *most advanced* live peer, not
        # _caught_up's slowest-peer bound: after a heal several nodes can be
        # behind at once (both partition sides stalled, or a lossy link
        # wedged a majority-side node) and mutually-lagging nodes would
        # mask each other under the min-frontier rule.
        laggards = [
            node
            for node in self.nodes
            if not node.crashed and self._behind_frontier(node)
        ]
        record["laggards"] = [node.node_id for node in laggards]
        if not laggards:
            record["time_to_reconverge"] = 0.0
            return
        record["time_to_reconverge"] = -1.0
        for node in laggards:
            node.begin_recovery_catchup()
            # Checkpoint-less epochs (no side kept a quorum) can only
            # complete through the protocol's own view/round machinery.
            node.nudge_stalled_instances()
        self.sim.schedule(
            self.recovery_poll, lambda: self._poll_reconverge(laggards, record)
        )

    def _poll_reconverge(self, laggards: List[ISSNode], record: Dict[str, object]) -> None:
        """Periodic check whether every post-heal laggard reached the frontier.

        Bound to the exact incarnations that were lagging at heal time: a
        laggard that crashes (or is replaced by a restart, which starts its
        own recovery watcher) is dropped from the wait — reconvergence is
        declared over the remaining live laggards.
        """
        still_behind: List[ISSNode] = []
        for node in laggards:
            if node.crashed or self.nodes[node.node_id] is not node:
                continue
            # A fellow laggard must not serve as the frontier reference —
            # two equally-wedged nodes would declare each other caught up.
            others = [n for n in laggards if n is not node]
            if self._caught_up(node, exclude=others):
                node.end_recovery_catchup()
            else:
                still_behind.append(node)
        if not still_behind:
            record["time_to_reconverge"] = self.sim.now - float(record["healed_at"])
            return
        self.sim.schedule(
            self.recovery_poll, lambda: self._poll_reconverge(still_behind, record)
        )

    # ----------------------------------------------------- dynamic membership
    def _on_membership_change_spec(self, spec: MembershipSpec) -> None:
        """A scheduled add/remove fired: submit its ConfigTx.

        The ConfigTx rides the ordinary client path — signed by the admin
        client, validated and bucketed by the nodes, ordered in the log —
        and activates at the epoch boundary after the epoch that commits it.
        """
        self._submit_config_tx(ConfigTx(action=spec.action, node=spec.node))

    def _submit_config_tx(self, tx: ConfigTx) -> None:
        self.admin_client.submit(encode_config_tx(tx))

    def _on_membership_activation(
        self, node_id: int, epoch: int, view, added, removed
    ) -> None:
        """A node activated a committed membership change (node hook).

        Every node fires this as it seals the epoch; the deployment reacts
        once per activation epoch, on the first firing: boot joining
        replicas (they must be reachable before the activated nodes start
        broadcasting to the new view) and record removals.  Removed nodes
        quiesce themselves (:meth:`~repro.core.iss.ISSNode.retire`) when
        *they* reach the activation — their network endpoint stays
        registered so stragglers' messages are absorbed, not counted as
        drops.
        """
        if epoch in self._activated_epochs:
            return
        self._activated_epochs.add(epoch)
        self._membership_activations.append(
            {
                "epoch": int(epoch),
                "activated_at": self.sim.now,
                "added": [int(n) for n in added],
                "removed": [int(n) for n in removed],
                "view": [int(n) for n in view.nodes],
            }
        )
        for joiner in added:
            self._boot_joiner(joiner, epoch)
        for node in removed:
            self._removed_nodes.add(int(node))

    def _boot_joiner(self, node_id: int, epoch: int) -> None:
        """Bring a replica added at ``epoch`` into the running cluster.

        A brand-new id boots disklessly: fresh node, epoch 0, open-ended
        state-transfer catch-up (snapshot apply via the peers' stable
        checkpoints, then the log tail) — the restart path's machinery
        reused wholesale.  A re-added id (rolling upgrade) recovers from
        its durable storage first, exactly like a restart, so WAL replay
        reconstructs its membership views along with its log.
        """
        if self.durable_storage and node_id not in self.storages:
            self.storages[node_id] = NodeStorage(node_id)
        joined_at = self.sim.now
        rejoining = node_id < len(self.nodes)
        if rejoining:
            old = self.nodes[node_id]
            if not old.crashed:
                # Forcibly quiesce a lagging previous incarnation that has
                # not yet activated its own removal.
                old.retire()
        node = self._build_node(node_id)
        node.join_epoch = epoch
        storage = self.storages.get(node_id)
        if storage is not None and (
            storage.latest_snapshot() is not None or len(storage.wal)
        ):
            info = RecoveryManager(storage, tracer=self.tracer).recover(
                node, now=joined_at
            )
        else:
            info = RecoveryInfo(node_id=node_id, resume_epoch=0)
        if rejoining:
            self.nodes[node_id] = node
        else:
            self.nodes.append(node)
        node.start_at(info.resume_epoch)
        node.begin_recovery_catchup()
        peers = [n for n in self.nodes if n is not node and not n.crashed]
        record = {
            "node": int(node_id),
            "activation_epoch": int(epoch),
            "joined_at": joined_at,
            "rejoined": rejoining,
            #: Cluster frontier at boot — the log size the joiner must
            #: transfer (time-to-join vs log size is the bench figure).
            "log_size_at_join": float(
                max((p.log.first_undelivered for p in peers), default=0)
            ),
            "time_to_join": -1.0,
            "state_transfer_bytes": 0.0,
            "state_transfer_entries": 0.0,
        }
        self._join_records.append(record)
        self.sim.schedule(self.recovery_poll, lambda: self._poll_join(node, record))

    def _poll_join(self, node: ISSNode, record: Dict[str, object]) -> None:
        """Periodic check whether a joiner reached the cluster frontier.

        Same contract as :meth:`_poll_catchup`: bound to the exact
        incarnation it was started for; the record keeps ``time_to_join``
        = -1 when that incarnation dies or the run ends first.
        """
        if node.crashed or self.nodes[node.node_id] is not node:
            return
        if self._caught_up(node):
            record["time_to_join"] = self.sim.now - float(record["joined_at"])
            record["state_transfer_bytes"] = float(node.state_transfer.bytes_received)
            record["state_transfer_entries"] = float(node.state_transfer.entries_applied)
            node.end_recovery_catchup()
            return
        self.sim.schedule(self.recovery_poll, lambda: self._poll_join(node, record))

    def _poll_eviction(self, spec: MembershipSpec) -> None:
        """Detection watch of an ``evict-detected`` spec.

        Polls until some correct node's failure history implicates the
        suspect (its segment failed an epoch — the observable footprint of
        equivocation, censorship, or invalid votes once a view change
        fills its slots with ⊥), then submits one remove ConfigTx.  This
        closes the detection loop: a Byzantine replica is evicted *from
        membership*, not just excluded from leader sets.
        """
        if spec.node in self._evictions_submitted:
            return
        if self._eviction_detected(spec.node):
            self._evictions_submitted.add(spec.node)
            self._eviction_records.append(
                {"node": int(spec.node), "detected_at": self.sim.now}
            )
            self._submit_config_tx(ConfigTx(action=ACTION_REMOVE, node=spec.node))
            return
        self.sim.schedule(self.recovery_poll, lambda: self._poll_eviction(spec))

    def _eviction_detected(self, target: int) -> bool:
        """Has any live correct node recorded ``target`` as a failed leader?"""
        return any(
            node.manager.history.last_failure(target) >= 0
            for node in self.nodes
            if node.node_id != target and not node.crashed
        )

    def _membership_stats(self) -> Optional[Dict[str, object]]:
        """Reconfiguration diagnostics for membership runs (else None).

        ``activations`` carries one record per view-changing epoch
        boundary, ``joins`` one per booted replica (time-to-join,
        state-transfer figures, log size at boot), ``removed`` the
        activated removals, ``evictions`` the detection-driven ones, and
        ``config_txs_committed``/``final_view`` come from a live node's
        membership tracker — the committed-log-derived ground truth.
        """
        if not self.membership_enabled:
            return None
        sample = next(
            (
                n
                for n in self.nodes
                if not n.crashed and getattr(n, "membership", None) is not None
            ),
            None,
        )
        if sample is None:
            sample = next(
                (n for n in self.nodes if getattr(n, "membership", None) is not None),
                None,
            )
        tracker = sample.membership if sample is not None else None
        return {
            "specs": [
                {"node": spec.node, "action": spec.action, "time": spec.time}
                for spec in self.membership_specs
            ],
            "activations": [dict(r) for r in self._membership_activations],
            "joins": [dict(r) for r in self._join_records],
            "removed": sorted(self._removed_nodes),
            "evictions": [dict(r) for r in self._eviction_records],
            "config_txs_committed": [
                {"epoch": int(e), "action": tx.action, "node": int(tx.node)}
                for e, tx in (tracker.committed_txs if tracker is not None else [])
            ],
            "final_view": (
                [int(n) for n in tracker.current_view().nodes]
                if tracker is not None
                else []
            ),
            "admin_submitted": (
                self.admin_client.requests_submitted
                if self.admin_client is not None
                else 0
            ),
        }

    def _behind_frontier(self, node: ISSNode) -> bool:
        """Is the node behind the *most advanced* live peer?

        The strict complement question to :meth:`_caught_up`: used at heal
        time, where comparing against the slowest peer would let several
        simultaneously-lagging nodes mask each other.
        """
        peers = [n for n in self.nodes if n is not node and not n.crashed]
        if not peers:
            return False
        max_epoch = max(peer.current_epoch for peer in peers)
        max_frontier = max(peer.log.first_undelivered for peer in peers)
        return (
            node.current_epoch < max_epoch
            or node.log.first_undelivered < max_frontier
        )

    def _caught_up(self, node: ISSNode, exclude: Sequence[ISSNode] = ()) -> bool:
        """Is the restarted node back at the frontier of the live cluster?

        Caught up means: at least the epoch of the most advanced live peer,
        and a delivered prefix no shorter than the slowest live peer's.  Both
        bounds compare against *live* peers only — a cluster where everyone
        else is down has no frontier to chase.  ``exclude`` removes nodes
        from the reference set (the reconvergence poll passes the other
        still-lagging nodes so they cannot serve as the frontier).
        """
        peers = [
            n
            for n in self.nodes
            if n is not node and not n.crashed and n not in exclude
        ]
        if not peers:
            return True
        max_epoch = max(peer.current_epoch for peer in peers)
        min_frontier = min(peer.log.first_undelivered for peer in peers)
        return (
            node.current_epoch >= max_epoch
            and node.log.first_undelivered >= min_frontier
        )

    # ------------------------------------------------------------------ run
    def run(self) -> DeploymentResult:
        """Run the experiment and return its report."""
        for node in self.nodes:
            node.start()
        self.generator.start()
        if self.sampler is not None:
            self.sampler.start()
        total_time = self.workload.duration + self.drain_time
        self.sim.run(until=total_time)
        # Restarted nodes that never reached the frontier keep their record,
        # flagged by time_to_caught_up = -1 (set at restart time).
        for record in self._pending_recoveries:
            self.collector.record_recovery(record)
        self._pending_recoveries = []
        report = self.collector.report(
            duration=self.workload.duration,
            extra=self._extra_stats(),
            byzantine=self._byzantine_stats(),
            client_abuse=self._client_abuse_stats(),
            partitions=self._partition_stats(),
            membership=self._membership_stats(),
            engine=self.engine,
        )
        if self.sampler is not None:
            report.throughput_timeline = self.sampler.throughput_timeline(
                limit=self.workload.duration
            )
            report.timeseries = self.sampler.timeseries()
        if self.obs.out_dir and (self.tracer is not None or self.sampler is not None):
            write_run_artifacts(
                self.obs.out_dir,
                self.tracer,
                timeseries=report.timeseries,
                counters=self.obs_counters(),
            )
        return DeploymentResult(
            report=report,
            nodes=self.nodes,
            clients=self.clients,
            network=self.network,
            collector=self.collector,
            storages=self.storages,
        )

    def _byzantine_stats(self) -> Optional[Dict[str, object]]:
        """Per-node misbehaviour counters for adversarial runs (else None).

        ``per_node`` carries, for every *current incarnation*, the number of
        equivocations it detected (provable conflicting proposals) and the
        forged signatures it rejected across all layers (client requests,
        checkpoint votes, protocol votes); ``adversaries`` names the
        scheduled Byzantine nodes and behaviours.
        """
        if not self.byzantine_specs:
            return None
        return {
            "per_node": {
                node.node_id: {
                    "equivocations_detected": node.equivocations_detected,
                    "invalid_sigs_rejected": node.invalid_signatures_rejected(),
                }
                for node in self.nodes
            },
            "adversaries": {
                spec.node: spec.behaviour for spec in self.byzantine_specs
            },
        }

    def _client_abuse_stats(self) -> Optional[Dict[str, object]]:
        """Per-client abuse counters for runs with malicious clients (else
        None).

        ``per_client`` aggregates, across every *current node incarnation*,
        the rejections attributed to each claimed client identity (forged
        signatures count under the impersonated victim — the only identity a
        node can observe) plus the duplicate submissions absorbed for it;
        ``abusers`` carries each abusive client's own attack counters and
        ``adversaries`` maps client id → behaviour.
        """
        if not self.malicious_client_specs:
            return None
        per_client: Dict[int, Dict[str, int]] = {}

        def entry_for(client: int) -> Dict[str, int]:
            entry = per_client.get(client)
            if entry is None:
                entry = per_client[client] = dict.fromkeys(
                    (*REJECTION_REASONS, "duplicates"), 0
                )
            return entry

        for node in self.nodes:
            for client, reasons in node.validator.stats.by_client.items():
                entry = entry_for(client)
                for reason, count in reasons.items():
                    entry[reason] += count
            for client, count in node.duplicate_requests.items():
                entry_for(client)["duplicates"] += count
        abusers = {}
        for spec in self.malicious_client_specs:
            client = self.injector.abusive_client_for(spec.client)
            if client is not None:
                abusers[spec.client] = client.abuse_stats()
        return {
            "adversaries": {
                spec.client: spec.behaviour for spec in self.malicious_client_specs
            },
            "per_client": per_client,
            "abusers": abusers,
        }

    def _partition_stats(self) -> Optional[Dict[str, object]]:
        """Network-chaos diagnostics for runs with partitions or link faults
        (else None).

        ``partitions`` carries one record per scheduled partition — the
        injector's schedule figures (groups, bridges, started_at, healed_at)
        plus the harness's reconvergence data (laggards,
        time_to_reconverge, view_changes_during; -1 means the run ended
        before the event).  ``drops_by_cause`` splits the network's payload
        drops by cause, ``link_faults`` lists per-installed-fault runtime
        counters and ``client_retries_total`` sums the clients' retry loops
        (0 with retries disabled).
        """
        if not self.partition_specs and not self.link_fault_specs:
            return None
        return {
            "partitions": [dict(record) for record in self.injector.partition_records()],
            "drops_by_cause": {
                cause: int(self.network.stats.dropped_by_cause.get(cause, 0))
                for cause in DROP_CAUSES
            },
            "link_faults": self.injector.link_fault_stats(),
            "client_retries_total": sum(c.requests_retried for c in self.clients),
            "retransmissions_total": int(self.network.stats.retransmissions),
        }

    def obs_counters(self) -> Dict[str, object]:
        """End-of-run counters bundled into the ``metrics.json`` artifact.

        One place to debug a chaos run from: drops split by cause,
        per-source-node retransmissions, and per-client retry counts.
        """
        stats = self.network.stats
        return {
            "drops_by_cause": {
                cause: int(stats.dropped_by_cause.get(cause, 0))
                for cause in DROP_CAUSES
            },
            "retransmissions_total": int(stats.retransmissions),
            "retransmissions_by_node": {
                int(node): int(count)
                for node, count in sorted(stats.retransmissions_by_node.items())
            },
            "client_retries_total": sum(c.requests_retried for c in self.clients),
            "client_retries_by_client": {
                c.client_id: c.requests_retried
                for c in self.clients
                if c.requests_retried
            },
        }

    def _extra_stats(self) -> Dict[str, float]:
        alive = [n for n in self.nodes if not n.crashed]
        sample = alive[0] if alive else self.nodes[0]
        stats = {
            "messages_sent": float(self.network.stats.messages_sent),
            "bytes_sent": float(self.network.stats.bytes_sent),
            "messages_dropped": float(self.network.stats.messages_dropped),
            # The opaque total above, split by cause (every key always
            # present so determinism checks compare identical dicts).
            **{
                f"dropped_{cause}": float(self.network.stats.dropped_by_cause.get(cause, 0))
                for cause in DROP_CAUSES
            },
            "epochs_completed": float(sample.epochs_completed),
            "batches_committed": float(sample.batches_committed),
            "nil_committed": float(sample.nil_committed),
            "requests_submitted": float(self.generator.submitted),
            "requests_deferred": float(self.generator.deferred),
            "sim_events": float(self.sim.events_executed),
        }
        if self.restart_specs:
            stats["restarts_performed"] = float(len(self.injector.restarted_nodes()))
        if self.byzantine_specs:
            stats["equivocations_detected_total"] = float(
                sum(n.equivocations_detected for n in self.nodes)
            )
            stats["invalid_sigs_rejected_total"] = float(
                sum(n.invalid_signatures_rejected() for n in self.nodes)
            )
        if self.malicious_client_specs:
            stats["client_rejections_total"] = float(
                sum(n.validator.stats.rejected for n in self.nodes)
            )
            stats["client_duplicates_total"] = float(
                sum(sum(n.duplicate_requests.values()) for n in self.nodes)
            )
            stats["client_state_gc_entries_total"] = float(
                sum(n.client_state_gc_entries for n in self.nodes)
            )
        if self.config.client_retry_timeout > 0:
            stats["client_retries_total"] = float(
                sum(c.requests_retried for c in self.clients)
            )
        if self.membership_enabled:
            stats["membership_activations"] = float(len(self._membership_activations))
            stats["config_txs_submitted"] = float(
                self.admin_client.requests_submitted
                if self.admin_client is not None
                else 0
            )
            stats["nodes_retired"] = float(
                sum(1 for n in self.nodes if getattr(n, "retired", False))
            )
        if self.storages:
            stats["wal_appended_total"] = float(
                sum(s.wal.appended_total for s in self.storages.values())
            )
            stats["snapshots_installed_total"] = float(
                sum(s.snapshots.installed_total for s in self.storages.values())
            )
            stats["compactions_total"] = float(
                sum(s.compactions for s in self.storages.values())
            )
        return stats


def run_experiment(
    config: ISSConfig,
    workload: WorkloadConfig,
    network_config: Optional[NetworkConfig] = None,
    **kwargs,
) -> RunReport:
    """Convenience wrapper: build a deployment, run it, return the report."""
    deployment = Deployment(
        config=config, network_config=network_config, workload=workload, **kwargs
    )
    return deployment.run().report


def find_peak_throughput(
    make_report: Callable[[float], RunReport],
    offered_loads: Sequence[float],
) -> Dict[str, object]:
    """Sweep offered load and return the peak achieved throughput.

    Mirrors the paper's methodology: "we run experiments with increasing the
    client request submission rate until the throughput is saturated" and
    report the highest measured throughput before saturation.
    """
    best_throughput = 0.0
    best_load = 0.0
    points = []
    for load in offered_loads:
        report = make_report(load)
        points.append((load, report.throughput, report.latency.mean))
        if report.throughput > best_throughput:
            best_throughput = report.throughput
            best_load = load
    return {
        "peak_throughput": best_throughput,
        "at_offered_load": best_load,
        "points": points,
    }
