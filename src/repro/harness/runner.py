"""Experiment harness: build and run one complete simulated deployment.

A :class:`Deployment` wires together everything one experiment needs —
simulator, WAN network, key store, ISS (or baseline) nodes, clients, the
open-loop workload generator, fault injection and metrics — runs it for the
configured virtual duration, and returns a :class:`~repro.metrics.RunReport`.
This is the programmatic equivalent of the paper's cloud-deployment tooling
(Section 4.4.3), minus the cloud bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from ..baselines.mirbft import MirBFTNode
from ..core.client import Client
from ..core.config import ISSConfig, NetworkConfig, WorkloadConfig
from ..core.iss import ISSNode
from ..core.leader_policy import LeaderSelectionPolicy
from ..core.segment import LAYOUT_ROUND_ROBIN
from ..crypto.signatures import KeyStore
from ..metrics.collector import MetricsCollector, RunReport
from ..sim.faults import CrashSpec, FaultInjector, StragglerSpec
from ..sim.latency import LatencyModel
from ..sim.network import Network
from ..sim.simulator import Simulator
from ..workload.generator import WorkloadGenerator

#: Factory returning a fresh leader-selection policy for one node.
PolicyFactory = Callable[[ISSConfig], LeaderSelectionPolicy]


@dataclass
class DeploymentResult:
    """Report plus the raw objects, for tests that want to inspect internals."""

    report: RunReport
    nodes: List[ISSNode] = field(default_factory=list)
    clients: List[Client] = field(default_factory=list)
    network: Optional[Network] = None
    collector: Optional[MetricsCollector] = None


class Deployment:
    """One fully wired simulated ISS (or baseline) deployment."""

    def __init__(
        self,
        config: ISSConfig,
        network_config: Optional[NetworkConfig] = None,
        workload: Optional[WorkloadConfig] = None,
        crash_specs: Sequence[CrashSpec] = (),
        straggler_specs: Sequence[StragglerSpec] = (),
        policy_factory: Optional[PolicyFactory] = None,
        node_class: Type[ISSNode] = ISSNode,
        layout: str = LAYOUT_ROUND_ROBIN,
        drain_time: float = 5.0,
    ):
        self.config = config
        self.network_config = network_config or NetworkConfig()
        self.workload = workload or WorkloadConfig()
        self.crash_specs = list(crash_specs)
        self.straggler_specs = list(straggler_specs)
        self.policy_factory = policy_factory
        self.node_class = node_class
        self.layout = layout
        self.drain_time = drain_time

        self.sim = Simulator(seed=config.random_seed)
        self.latency = LatencyModel(self.network_config, config.num_nodes)
        self.network = Network(self.sim, self.network_config, self.latency)
        self.key_store = KeyStore(deployment_seed=config.random_seed)
        self.injector = FaultInjector(self.sim, self.network)
        self.collector = MetricsCollector(
            completion_quorum=config.weak_quorum, warmup=self.workload.warmup
        )

        client_ids = list(range(self.workload.num_clients))
        stragglers_by_node: Dict[int, StragglerSpec] = {
            spec.node: spec for spec in self.straggler_specs
        }

        self.nodes: List[ISSNode] = []
        for node_id in range(config.num_nodes):
            policy = self.policy_factory(config) if self.policy_factory else None
            node = self.node_class(
                node_id=node_id,
                config=config,
                sim=self.sim,
                network=self.network,
                key_store=self.key_store,
                client_ids=client_ids,
                on_deliver=self.collector.record_delivery,
                fault_injector=self.injector,
                straggler=stragglers_by_node.get(node_id),
                policy=policy,
                layout=layout,
            )
            self.nodes.append(node)
        self.injector.on_crash = self._on_node_crash
        self.injector.schedule_all(self.crash_specs)

        self.clients: List[Client] = []
        for client_id in client_ids:
            client = Client(
                client_id=client_id,
                config=config,
                sim=self.sim,
                network=self.network,
                key_store=self.key_store,
                on_complete=self.collector.record_client_completion,
            )
            self.clients.append(client)
        self.latency.register_extra_endpoints([c.endpoint for c in self.clients])

        self.generator = WorkloadGenerator(
            clients=self.clients,
            workload=self.workload,
            sim=self.sim,
            on_submit=lambda request, time: self.collector.record_submit(request.rid, time),
        )

    # ------------------------------------------------------------------ run
    def _on_node_crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    def run(self) -> DeploymentResult:
        """Run the experiment and return its report."""
        for node in self.nodes:
            node.start()
        self.generator.start()
        total_time = self.workload.duration + self.drain_time
        self.sim.run(until=total_time)
        report = self.collector.report(duration=self.workload.duration, extra=self._extra_stats())
        return DeploymentResult(
            report=report,
            nodes=self.nodes,
            clients=self.clients,
            network=self.network,
            collector=self.collector,
        )

    def _extra_stats(self) -> Dict[str, float]:
        alive = [n for n in self.nodes if not n.crashed]
        sample = alive[0] if alive else self.nodes[0]
        return {
            "messages_sent": float(self.network.stats.messages_sent),
            "bytes_sent": float(self.network.stats.bytes_sent),
            "messages_dropped": float(self.network.stats.messages_dropped),
            "epochs_completed": float(sample.epochs_completed),
            "batches_committed": float(sample.batches_committed),
            "nil_committed": float(sample.nil_committed),
            "requests_submitted": float(self.generator.submitted),
            "requests_deferred": float(self.generator.deferred),
            "sim_events": float(self.sim.events_executed),
        }


def run_experiment(
    config: ISSConfig,
    workload: WorkloadConfig,
    network_config: Optional[NetworkConfig] = None,
    **kwargs,
) -> RunReport:
    """Convenience wrapper: build a deployment, run it, return the report."""
    deployment = Deployment(
        config=config, network_config=network_config, workload=workload, **kwargs
    )
    return deployment.run().report


def find_peak_throughput(
    make_report: Callable[[float], RunReport],
    offered_loads: Sequence[float],
) -> Dict[str, object]:
    """Sweep offered load and return the peak achieved throughput.

    Mirrors the paper's methodology: "we run experiments with increasing the
    client request submission rate until the throughput is saturated" and
    report the highest measured throughput before saturation.
    """
    best_throughput = 0.0
    best_load = 0.0
    points = []
    for load in offered_loads:
        report = make_report(load)
        points.append((load, report.throughput, report.latency.mean))
        if report.throughput > best_throughput:
            best_throughput = report.throughput
            best_load = load
    return {
        "peak_throughput": best_throughput,
        "at_offered_load": best_load,
        "points": points,
    }
