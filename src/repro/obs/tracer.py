"""Request-lifecycle tracer: causal span events for sampled requests.

The tracer is an append-only in-memory event log.  Every instrumentation
hook in the pipeline (client submit/retry, bucket admission, SB proposal,
protocol votes, commit, delivery, checkpoint, client response quorum,
network drops/retransmits, crash recovery) is one method call recording one
small tuple — no I/O, no string formatting, no RNG.  Span assembly and
export happen *after* the run (:mod:`repro.obs.spans`,
:mod:`repro.obs.export`), so the per-event cost on the simulated hot path
stays a list append.

Zero overhead when disabled: components hold ``tracer = None`` and every
call site is guarded by ``if tracer is not None:``.  The tracer is never
consulted, never allocated, and schedules nothing in that case, which keeps
golden traces bit-identical.

Sampling is deterministic and engine-independent: a request is traced iff
the cached integer mix of its :class:`~repro.core.types.RequestId` falls
under the sampling threshold.  The same request is therefore traced (or
not) on every node, in every engine, and across crash/restart — no RNG
stream is consumed, so enabling tracing cannot perturb the simulation.

Event record layout (flat 5-tuples, ``(kind, time, actor, key, detail)``):

==============  ==========  ======================  =============================
kind            actor       key                     detail
==============  ==========  ======================  =============================
``submit``      client id   rid                     ``None``
``retry``       client id   rid                     attempt number
``resubmit``    client id   rid                     ``None`` (epoch-change resend)
``quorum``      client id   rid                     ``None`` (f+1 responses)
``admit``       node id     rid                     ``None`` (bucket admission)
``duplicate``   node id     rid                     ``None`` (re-ack path)
``reject``      node id     rid                     reason string
``propose``     node id     (instance, sn)          tuple of traced rids in batch
``sb``          node id     (instance, sn)          protocol phase string
``commit``      node id     (instance, sn)          ``True`` iff ⊥ was committed
``deliver``     node id     ``None``                tuple of traced rids delivered
``complete``    ``-1``      rid                     ``None`` (delivery quorum)
``checkpoint``  node id     epoch                   ``None`` (stable checkpoint)
``drop``        src node    (dst, rid-or-None)      drop cause string
``retransmit``  src node    (dst, rid-or-None)      ``None``
``recovery``    node id     phase string            count
==============  ==========  ======================  =============================
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..core.types import RequestId

#: Span-event kind tags (also the JSONL/Chrome export vocabulary).
EVT_SUBMIT = "submit"
EVT_RETRY = "retry"
EVT_RESUBMIT = "resubmit"
EVT_QUORUM = "quorum"
EVT_ADMIT = "admit"
EVT_DUPLICATE = "duplicate"
EVT_REJECT = "reject"
EVT_PROPOSE = "propose"
EVT_SB = "sb"
EVT_COMMIT = "commit"
EVT_DELIVER = "deliver"
EVT_COMPLETE = "complete"
EVT_CHECKPOINT = "checkpoint"
EVT_DROP = "drop"
EVT_RETRANSMIT = "retransmit"
EVT_RECOVERY = "recovery"
EVT_MEMBERSHIP = "membership"


class RequestTracer:
    """Append-only causal event log for sampled requests.

    One instance is shared by every component of a deployment (clients,
    nodes, protocols via :class:`~repro.core.sb.SBContext`, the network,
    the recovery manager, the metrics collector).  All methods are cheap
    enough for the simulated hot path; heavy lifting is deferred to
    :func:`repro.obs.spans.assemble_spans`.
    """

    __slots__ = ("sample", "events", "_sample_all", "_threshold", "_traced")

    def __init__(self, sample: float = 1.0):
        self.sample = sample
        #: Flat, append-only event tuples in emission order.
        self.events: List[Tuple] = []
        self._sample_all = sample >= 1.0
        # Compare against the low 32 bits of RequestId._mix: deterministic,
        # process-independent, identical across engines and restarts.
        self._threshold = int(min(1.0, max(0.0, sample)) * 2**32)
        self._traced: Set[RequestId] = set()

    def wants(self, rid: RequestId) -> bool:
        """True iff ``rid`` is in the traced sample (always true at 1.0)."""
        return self._sample_all or rid in self._traced

    # ------------------------------------------------------------- client
    def on_submit(self, time: float, client: int, rid: RequestId) -> None:
        """Client submitted a fresh request; decides the sampling verdict."""
        if not self._sample_all:
            if (rid._mix & 0xFFFFFFFF) >= self._threshold:
                return
            self._traced.add(rid)
        self.events.append((EVT_SUBMIT, time, client, rid, None))

    def on_retry(self, time: float, client: int, rid: RequestId, attempt: int) -> None:
        """Client retry timer fired and the request was re-sent."""
        if self.wants(rid):
            self.events.append((EVT_RETRY, time, client, rid, attempt))

    def on_resubmit(self, time: float, client: int, rid: RequestId) -> None:
        """Client re-sent a pending request after an epoch reassignment."""
        if self.wants(rid):
            self.events.append((EVT_RESUBMIT, time, client, rid, None))

    def on_quorum(self, time: float, client: int, rid: RequestId) -> None:
        """Client collected its ``f+1``-th response (weak quorum reached)."""
        if self.wants(rid):
            self.events.append((EVT_QUORUM, time, client, rid, None))

    # --------------------------------------------------------------- node
    def on_admit(self, time: float, node: int, rid: RequestId) -> None:
        """A node admitted the request into its bucket pool."""
        if self.wants(rid):
            self.events.append((EVT_ADMIT, time, node, rid, None))

    def on_duplicate(self, time: float, node: int, rid: RequestId) -> None:
        """A node saw the request again (already delivered/pending)."""
        if self.wants(rid):
            self.events.append((EVT_DUPLICATE, time, node, rid, None))

    def on_reject(self, time: float, node: int, rid: RequestId, reason: str) -> None:
        """A node's validator refused the request."""
        if self.wants(rid):
            self.events.append((EVT_REJECT, time, node, rid, reason))

    def on_propose(self, time: float, node: int, instance, sn: int, rids: Tuple[RequestId, ...]) -> None:
        """A segment leader cut a batch for ``sn``; ``rids`` are its traced requests."""
        self.events.append((EVT_PROPOSE, time, node, (instance, sn), rids))

    def on_sb(self, time: float, node: int, instance, sn: int, phase: str) -> None:
        """A protocol-level phase transition (prepare/commit vote, decided...)."""
        self.events.append((EVT_SB, time, node, (instance, sn), phase))

    def on_commit(self, time: float, node: int, instance, sn: int, nil: bool) -> None:
        """A node committed slot ``sn`` of ``instance`` into its log."""
        self.events.append((EVT_COMMIT, time, node, (instance, sn), nil))

    def on_deliver_batch(self, time: float, node: int, items) -> None:
        """A node's contiguous delivery advanced by ``items``.

        One event per advance, not per request: everything delivered in one
        advance shares the timestamp, so batching keeps the cost of the
        single hottest hook (every request × every node) to one tuple
        comprehension plus one append.
        """
        if self._sample_all:
            rids = tuple(item.request.rid for item in items)
        else:
            traced = self._traced
            rids = tuple(
                item.request.rid for item in items if item.request.rid in traced
            )
        if rids:
            self.events.append((EVT_DELIVER, time, node, None, rids))

    def on_complete(self, time: float, rid: RequestId) -> None:
        """The run-wide delivery quorum completed the request."""
        if self.wants(rid):
            self.events.append((EVT_COMPLETE, time, -1, rid, None))

    def on_checkpoint(self, time: float, node: int, epoch: int) -> None:
        """A node reached a stable checkpoint for ``epoch``."""
        self.events.append((EVT_CHECKPOINT, time, node, epoch, None))

    # ------------------------------------------------------------ network
    def on_drop(self, time: float, src: int, dst: int, cause: str, rid: Optional[RequestId]) -> None:
        """The network dropped a message (``rid`` when it carried a request)."""
        if rid is not None and not self.wants(rid):
            rid = None
        self.events.append((EVT_DROP, time, src, (dst, rid), cause))

    def on_retransmit(self, time: float, src: int, dst: int, rid: Optional[RequestId]) -> None:
        """A lossy-link transport retransmitted a dropped payload."""
        if rid is not None and not self.wants(rid):
            rid = None
        self.events.append((EVT_RETRANSMIT, time, src, (dst, rid), None))

    # ----------------------------------------------------------- recovery
    def on_recovery(self, time: float, node: int, phase: str, count: int) -> None:
        """A recovery phase (snapshot/wal/fast-forward/redeliver) finished."""
        self.events.append((EVT_RECOVERY, time, node, phase, count))

    # --------------------------------------------------------- membership
    def on_membership(self, time: float, node: int, epoch: int, added, removed) -> None:
        """A node activated a committed membership change for ``epoch``."""
        self.events.append((EVT_MEMBERSHIP, time, node, epoch, (added, removed)))
