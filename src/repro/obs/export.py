"""Exporters: JSONL span log, Chrome trace-event file, metrics dump.

Three artifacts, all written by :func:`write_run_artifacts` when a
deployment runs with ``ObsConfig.out_dir`` set:

* ``spans.jsonl`` — one JSON object per traced request (the rows of
  :func:`repro.obs.spans.assemble_spans`), grep- and ``jq``-friendly.
* ``trace.json`` — Chrome trace-event format (the JSON Object Format:
  ``{"traceEvents": [...]}``), loadable in Perfetto / ``chrome://tracing``.
  Each request becomes a track of complete (``ph: "X"``) slices, one per
  pipeline phase, with retries/drops/retransmits as instant events.
* ``metrics.json`` — the sampler time series plus the network/client
  counters (drops by cause, retransmits, retries), so chaos runs are
  debuggable from a single artifact.

Times are simulated seconds; the Chrome export scales them to the
microseconds the trace-event spec expects.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import PHASES, assemble_spans
from .tracer import EVT_DROP, EVT_RETRANSMIT

#: Filenames used inside an ``ObsConfig.out_dir`` artifact directory.
SPANS_FILE = "spans.jsonl"
CHROME_TRACE_FILE = "trace.json"
METRICS_FILE = "metrics.json"

_US = 1_000_000.0  # simulated seconds -> trace-event microseconds


def write_jsonl(path: str, rows: Iterable[Dict[str, object]]) -> int:
    """Write dict rows as one-JSON-object-per-line; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read back a JSONL file written by :func:`write_jsonl`."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def chrome_trace(rows: Sequence[Dict[str, object]], events: Sequence[Tuple] = ()) -> Dict[str, object]:
    """Build a Chrome trace-event object from span rows (+ raw tracer events).

    Layout: one *process* per client (named via ``M`` metadata events), one
    *thread* per request (its submit timestamp), one ``X`` slice per closed
    phase, and ``i`` instant events for retries, resubmits, drops, and
    retransmits.  Network events that cannot be attributed to a traced
    request land on a synthetic ``network`` process (pid ``-1``).
    """
    trace_events: List[Dict[str, object]] = []
    clients = sorted({row["client"] for row in rows})
    for client in clients:
        trace_events.append(
            {"ph": "M", "name": "process_name", "pid": client, "tid": 0,
             "args": {"name": f"client {client}"}}
        )
    tid_of: Dict[str, Tuple[int, int]] = {}
    for index, row in enumerate(rows):
        pid = row["client"]
        tid = index + 1
        tid_of[row["rid"]] = (pid, tid)
        trace_events.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
             "args": {"name": row["rid"]}}
        )
        for label, start, end in PHASES:
            if label == "total":
                continue
            t0, t1 = row.get(start), row.get(end)
            if t0 is None or t1 is None:
                continue
            trace_events.append(
                {"ph": "X", "name": label, "cat": "request", "pid": pid, "tid": tid,
                 "ts": t0 * _US, "dur": (t1 - t0) * _US, "args": {"rid": row["rid"]}}
            )
        for when in row.get("retries", ()):
            trace_events.append(
                {"ph": "i", "name": "retry", "cat": "client", "pid": pid, "tid": tid,
                 "ts": when * _US, "s": "t"}
            )
        for when in row.get("resubmits", ()):
            trace_events.append(
                {"ph": "i", "name": "resubmit", "cat": "client", "pid": pid, "tid": tid,
                 "ts": when * _US, "s": "t"}
            )
    if events:
        trace_events.append(
            {"ph": "M", "name": "process_name", "pid": -1, "tid": 0,
             "args": {"name": "network"}}
        )
        for kind, time, actor, key, detail in events:
            if kind == EVT_DROP:
                name, args = f"drop:{detail}", {"src": actor, "dst": key[0]}
            elif kind == EVT_RETRANSMIT:
                name, args = "retransmit", {"src": actor, "dst": key[0]}
            else:
                continue
            rid = key[1]
            pid, tid = tid_of.get(str(rid), (-1, 0)) if rid is not None else (-1, 0)
            if rid is not None:
                args["rid"] = str(rid)
            trace_events.append(
                {"ph": "i", "name": name, "cat": "network", "pid": pid, "tid": tid,
                 "ts": time * _US, "s": "t", "args": args}
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: object) -> List[str]:
    """Check a trace object against the trace-event schema; return problems.

    Covers the subset this exporter emits: the JSON Object Format envelope,
    required fields per phase type (``X``/``i``/``M``), numeric
    ``ts``/``dur``, non-negative durations, and valid instant scopes.  An
    empty list means the trace is loadable.
    """
    problems: List[str] = []
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' list"]
    for index, event in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if ph == "M":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
            continue
        for fieldname in ("pid", "tid"):
            if not isinstance(event.get(fieldname), int):
                problems.append(f"{where}: missing integer {fieldname}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: complete event without numeric dur")
            elif dur < 0:
                problems.append(f"{where}: negative dur")
        if ph == "i" and event.get("s", "t") not in ("g", "p", "t"):
            problems.append(f"{where}: invalid instant scope {event.get('s')!r}")
    return problems


def write_run_artifacts(
    out_dir: str,
    tracer,
    timeseries: Optional[Dict[str, object]] = None,
    counters: Optional[Dict[str, object]] = None,
) -> Dict[str, str]:
    """Write spans.jsonl / trace.json / metrics.json into ``out_dir``.

    ``tracer`` may be ``None`` (metrics-only runs write just
    ``metrics.json``).  Returns a ``{artifact-name: path}`` map of what was
    written.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: Dict[str, str] = {}
    if tracer is not None:
        rows = assemble_spans(tracer.events)
        spans_path = os.path.join(out_dir, SPANS_FILE)
        write_jsonl(spans_path, rows)
        written["spans"] = spans_path
        trace_path = os.path.join(out_dir, CHROME_TRACE_FILE)
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(rows, tracer.events), handle)
        written["chrome_trace"] = trace_path
    payload = {"timeseries": timeseries or {}, "counters": counters or {}}
    metrics_path = os.path.join(out_dir, METRICS_FILE)
    with open(metrics_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    written["metrics"] = metrics_path
    return written
