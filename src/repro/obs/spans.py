"""Span assembly: turn a tracer's flat event log into per-request spans.

A *span* is the causal lifecycle of one traced request::

    submit ──(retries/resubmits)──▶ admit ──▶ propose ──▶ commit
           ──▶ deliver ──▶ complete ──(quorum / checkpoint)

Assembly runs strictly after the simulation (it is the expensive half the
tracer defers), correlating request-keyed events with slot-keyed ones via
the ``propose`` event that names which traced requests each ``(instance,
sn)`` batch carried.  The output is plain dict *rows* — the same shape the
JSONL export writes — so report code works identically on an in-memory run
and on a ``spans.jsonl`` read back from disk.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..metrics.collector import LatencySummary
from .tracer import (
    EVT_ADMIT,
    EVT_CHECKPOINT,
    EVT_COMMIT,
    EVT_COMPLETE,
    EVT_DELIVER,
    EVT_DUPLICATE,
    EVT_PROPOSE,
    EVT_QUORUM,
    EVT_REJECT,
    EVT_RESUBMIT,
    EVT_RETRY,
    EVT_SUBMIT,
)

#: Ordered phase checkpoints of a span row; a *closed* chain has them all.
CHAIN_FIELDS = ("submit", "admit", "propose", "commit", "deliver", "complete")

#: Phase intervals reported by :func:`phase_breakdown` (label, start, end).
PHASES = (
    ("submit→admit", "submit", "admit"),
    ("admit→propose", "admit", "propose"),
    ("propose→commit", "propose", "commit"),
    ("commit→deliver", "commit", "deliver"),
    ("deliver→complete", "deliver", "complete"),
    ("total", "submit", "complete"),
)


def _new_row(rid, client: int) -> Dict[str, object]:
    return {
        "rid": str(rid),
        "client": client,
        "submit": None,
        "admit": None,
        "propose": None,
        "commit": None,
        "deliver": None,
        "complete": None,
        "quorum": None,
        "checkpoint": None,
        "instance": None,
        "slot": None,
        "retries": [],
        "resubmits": [],
        "deliver_nodes": 0,
        "duplicates": 0,
        "rejects": [],
    }


def assemble_spans(events: Sequence[Tuple]) -> List[Dict[str, object]]:
    """Fold a tracer event log into one span row per traced request.

    Rows come out in first-submit order.  Requests that never saw a
    ``submit`` event (e.g. forged requests crafted by abusive clients) are
    ignored — they have no client-side lifecycle to account for.
    """
    rows: Dict[object, Dict[str, object]] = {}
    commit_times: Dict[Tuple, float] = {}
    slot_of: Dict[object, Tuple] = {}
    checkpoints: List[Tuple[float, int]] = []  # (time, epoch), emission order

    for kind, time, actor, key, detail in events:
        if kind == EVT_SUBMIT:
            if key not in rows:
                rows[key] = _new_row(key, actor)
                rows[key]["submit"] = time
        elif kind == EVT_PROPOSE:
            for rid in detail:
                row = rows.get(rid)
                if row is not None and row["propose"] is None:
                    row["propose"] = time
                    row["instance"] = list(key[0])
                    row["slot"] = key[1]
                    slot_of[rid] = key
        elif kind == EVT_DELIVER:
            for rid in detail:
                row = rows.get(rid)
                if row is not None:
                    if row["deliver"] is None:
                        row["deliver"] = time
                    row["deliver_nodes"] += 1
        elif kind == EVT_COMMIT:
            commit_times.setdefault(key, time)
        elif kind == EVT_CHECKPOINT:
            checkpoints.append((time, key))
        else:
            row = rows.get(key)
            if row is None:
                continue
            if kind == EVT_ADMIT:
                if row["admit"] is None:
                    row["admit"] = time
            elif kind == EVT_COMPLETE:
                if row["complete"] is None:
                    row["complete"] = time
            elif kind == EVT_QUORUM:
                if row["quorum"] is None:
                    row["quorum"] = time
            elif kind == EVT_RETRY:
                row["retries"].append(time)
            elif kind == EVT_RESUBMIT:
                row["resubmits"].append(time)
            elif kind == EVT_DUPLICATE:
                row["duplicates"] += 1
            elif kind == EVT_REJECT:
                row["rejects"].append([time, actor, detail])

    # Second pass: commit time via the slot, checkpoint via the epoch.
    first_checkpoint: Dict[int, float] = {}
    for time, epoch in checkpoints:
        first_checkpoint.setdefault(epoch, time)
    for rid, row in rows.items():
        slot = slot_of.get(rid)
        if slot is not None:
            row["commit"] = commit_times.get(slot)
            epoch = slot[0][0]
            ckpt = first_checkpoint.get(epoch)
            if ckpt is not None and row["commit"] is not None and ckpt >= row["commit"]:
                row["checkpoint"] = ckpt
    return sorted(rows.values(), key=lambda r: (r["submit"], r["rid"]))


def chain_violation(row: Dict[str, object], require_complete: bool = True) -> Optional[str]:
    """Why this span's causal chain is not closed, or ``None`` if it is.

    A closed chain has every :data:`CHAIN_FIELDS` milestone present (the
    final ``complete`` only when ``require_complete``) with monotonically
    non-decreasing timestamps.
    """
    fields = CHAIN_FIELDS if require_complete else CHAIN_FIELDS[:-1]
    last_time, last_name = None, None
    for name in fields:
        value = row.get(name)
        if value is None:
            return f"missing {name}"
        if last_time is not None and value < last_time:
            return f"{name} ({value:.6f}) precedes {last_name} ({last_time:.6f})"
        last_time, last_name = value, name
    return None


def phase_breakdown(rows: Iterable[Dict[str, object]]) -> List[Tuple[str, LatencySummary]]:
    """Per-phase latency statistics over all spans that closed each phase."""
    samples: Dict[str, List[float]] = {label: [] for label, _s, _e in PHASES}
    for row in rows:
        for label, start, end in PHASES:
            t0, t1 = row.get(start), row.get(end)
            if t0 is not None and t1 is not None:
                samples[label].append(t1 - t0)
    return [(label, LatencySummary.from_samples(samples[label])) for label, _s, _e in PHASES]


def slowest_spans(rows: Iterable[Dict[str, object]], count: int = 5) -> List[Dict[str, object]]:
    """The ``count`` completed spans with the largest end-to-end latency."""
    completed = [r for r in rows if r.get("submit") is not None and r.get("complete") is not None]
    completed.sort(key=lambda r: r["complete"] - r["submit"], reverse=True)
    return completed[:count]
