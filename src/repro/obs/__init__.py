"""Observability layer: request-lifecycle tracing, metrics, exporters.

Off by default and zero-overhead when disabled: components hold
``tracer = None`` and every instrumentation hook is guarded by a single
``if tracer is not None:`` test, so the six pinned golden traces replay
bit-identically with this package imported.  Enable it per-deployment via
``Deployment(..., obs=ObsConfig(trace=True, metrics_interval=1.0))`` or
globally via the ``REPRO_TRACE*`` environment variables (see
:mod:`repro.obs.config`).

Modules: :mod:`~repro.obs.config` (knobs), :mod:`~repro.obs.tracer`
(event log + hooks), :mod:`~repro.obs.metrics` (registry + simulated-clock
sampler), :mod:`~repro.obs.spans` (post-run span assembly),
:mod:`~repro.obs.export` (JSONL / Chrome trace-event / metrics artifacts).
"""

from .config import ObsConfig
from .export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_jsonl,
    write_run_artifacts,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsSampler
from .spans import assemble_spans, chain_violation, phase_breakdown, slowest_spans
from .tracer import RequestTracer

__all__ = [
    "ObsConfig",
    "RequestTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "assemble_spans",
    "chain_violation",
    "phase_breakdown",
    "slowest_spans",
    "chrome_trace",
    "read_jsonl",
    "validate_chrome_trace",
    "write_jsonl",
    "write_run_artifacts",
]
