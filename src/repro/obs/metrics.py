"""Metrics registry and the simulated-clock periodic sampler.

Two layers:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments — the conventional vocabulary components
  use to expose state.
* :class:`MetricsSampler` — a periodic probe driven by the *simulated*
  clock.  Each tick it evaluates registered probe callables, records one
  point per series, and re-schedules itself.  It never sends messages,
  never draws randomness, and never mutates protocol state, so enabling it
  cannot change what the simulation delivers (only ``events_executed``
  grows by the tick count, which is why golden smokes pin it off).

The sampler's ``throughput`` series reproduces the bespoke per-bucket
accounting the timeline benchmarks used to carry: a *rate probe* over the
collector's completed count yields, for tick ``k``, the completions in
``(warmup + (k-1)·interval, warmup + k·interval]`` divided by the
interval — exactly the old ``MetricsCollector.throughput_timeline``
buckets, labelled with the bucket's right edge.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..metrics.collector import LatencySummary


class Counter:
    """A monotonically increasing count (events, drops, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, in-flight instances)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A distribution of observations (latencies, batch sizes)."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.samples.append(value)

    def summary(self) -> LatencySummary:
        """Percentile summary of everything observed so far."""
        return LatencySummary.from_samples(self.samples)


class MetricsRegistry:
    """Named instrument store; one per sampler (or per component)."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, Histogram)

    def _get(self, name, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"metric {name!r} already registered as {type(instrument).__name__}")
        return instrument

    def values(self) -> Dict[str, float]:
        """Snapshot of every counter/gauge value (histograms excluded)."""
        return {
            name: inst.value
            for name, inst in sorted(self._instruments.items())
            if isinstance(inst, (Counter, Gauge))
        }


class MetricsSampler:
    """Periodic time-series probe driven by the simulated clock.

    Probes are zero-argument callables returning a number; they are
    evaluated every ``interval`` simulated seconds starting at
    ``warmup + interval``.  Gauge probes record the value as-is; rate
    probes record the per-second delta since the previous tick (so a probe
    over a cumulative completion count becomes a throughput series).  The
    self-rescheduling tick chain is bounded by the harness's
    ``sim.run(until=...)`` horizon — the sampler needs no explicit stop.
    """

    def __init__(self, sim, interval: float, warmup: float = 0.0):
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.sim = sim
        self.interval = interval
        self.warmup = warmup
        self.registry = MetricsRegistry()
        #: Tick timestamps (simulated seconds), one per sample row.
        self.times: List[float] = []
        #: Per-series sampled values, aligned with :attr:`times`.
        self.series: Dict[str, List[float]] = {}
        self._probes: List[Tuple[str, Callable[[], float], Gauge]] = []
        self._rates: List[Tuple[str, Callable[[], float], Gauge, List[float]]] = []

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge probe: each tick records ``fn()`` directly."""
        self._probes.append((name, fn, self.registry.gauge(name)))
        self.series[name] = []

    def add_rate_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a rate probe: each tick records ``Δfn() / interval``."""
        self._rates.append((name, fn, self.registry.gauge(name), [0.0]))
        self.series[name] = []

    def start(self) -> None:
        """Baseline the rate probes and schedule the first tick."""
        for _name, fn, _gauge, prev in self._rates:
            prev[0] = float(fn())
        self.sim.schedule_callback(self.warmup + self.interval, self._tick)

    def _tick(self) -> None:
        self.times.append(self.sim.now)
        for name, fn, gauge, in self._probes:
            value = float(fn())
            gauge.set(value)
            self.series[name].append(value)
        for name, fn, gauge, prev in self._rates:
            current = float(fn())
            rate = (current - prev[0]) / self.interval
            prev[0] = current
            gauge.set(rate)
            self.series[name].append(rate)
        self.sim.schedule_callback(self.interval, self._tick)

    def timeseries(self) -> Dict[str, object]:
        """JSON-friendly dump: interval, warmup, tick times, and all series."""
        return {
            "interval": self.interval,
            "warmup": self.warmup,
            "times": list(self.times),
            "series": {name: list(values) for name, values in sorted(self.series.items())},
        }

    def throughput_timeline(
        self, limit: float, name: str = "throughput"
    ) -> List[Tuple[float, float]]:
        """The ``(time, req/s)`` points of one rate series up to ``limit``.

        Drops ticks past ``limit`` so drain-time completions are excluded,
        matching the semantics of the old bespoke bucket accounting.
        """
        values = self.series.get(name, ())
        return [
            (t, values[i])
            for i, t in enumerate(self.times)
            if t <= limit + 1e-9 and i < len(values)
        ]
