"""Configuration for the observability layer (tracing + metrics sampling).

The layer is **off by default**: a default :class:`ObsConfig` enables
nothing, the harness then installs no tracer and no sampler, and every
instrumentation hook stays a single ``if tracer is not None:`` test on an
attribute that is ``None`` — no allocation, no RNG draw, no extra simulator
event.  That is what keeps the six pinned golden traces bit-identical with
this module imported.

Environment knobs (all optional, read by :meth:`ObsConfig.from_env`):

========================================  =======================================
``REPRO_TRACE``                           truthy (``1``/``true``/``yes``/``on``)
                                          enables the request-lifecycle tracer
``REPRO_TRACE_SAMPLE``                    fraction of requests to trace (0..1,
                                          default 1.0; deterministic per-request
                                          hash sampling, not RNG)
``REPRO_TRACE_METRICS_INTERVAL``          period in simulated seconds of the
                                          time-series sampler (0 disables it)
``REPRO_TRACE_DIR``                       directory to write run artifacts
                                          (``spans.jsonl``, ``trace.json``,
                                          ``metrics.json``) into after the run
========================================  =======================================

Deterministic smokes pin ``ObsConfig.disabled()`` explicitly so a stray
``REPRO_TRACE=1`` in the environment cannot perturb a golden gate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

#: Default sampling fraction: trace every request once tracing is on.
DEFAULT_SAMPLE = 1.0
#: Default sampler period: 0 means "no time-series sampler".
DEFAULT_METRICS_INTERVAL = 0.0

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _env_float(name: str, default: float) -> float:
    """Read a float env var, falling back to ``default`` on absence/garbage."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class ObsConfig:
    """What the observability layer should record for one deployment.

    ``trace`` turns on the request-lifecycle tracer, ``sample`` is the
    deterministic fraction of requests it follows, ``metrics_interval``
    (simulated seconds) turns on the periodic time-series sampler when
    positive, and ``out_dir`` (optional) is where run artifacts are written
    after :meth:`repro.harness.runner.Deployment.run`.
    """

    trace: bool = False
    sample: float = DEFAULT_SAMPLE
    metrics_interval: float = DEFAULT_METRICS_INTERVAL
    out_dir: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """True when anything at all is recorded (tracer or sampler)."""
        return self.trace or self.metrics_interval > 0.0

    @staticmethod
    def disabled() -> "ObsConfig":
        """The canonical all-off configuration (pinned by golden smokes)."""
        return _DISABLED

    @staticmethod
    def from_env() -> "ObsConfig":
        """Build a configuration from the ``REPRO_TRACE*`` environment knobs."""
        raw = os.environ.get("REPRO_TRACE")
        trace = raw is not None and raw.strip().lower() in _TRUTHY
        sample = min(1.0, max(0.0, _env_float("REPRO_TRACE_SAMPLE", DEFAULT_SAMPLE)))
        interval = max(0.0, _env_float("REPRO_TRACE_METRICS_INTERVAL", DEFAULT_METRICS_INTERVAL))
        out_dir = os.environ.get("REPRO_TRACE_DIR") or None
        return ObsConfig(trace=trace, sample=sample, metrics_interval=interval, out_dir=out_dir)


_DISABLED = ObsConfig()
