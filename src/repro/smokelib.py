"""Shared skeleton of the seeded smoke-test CLIs.

Every golden-trace smoke gate (``repro.recovery_smoke``,
``repro.byzantine_smoke``, ``repro.partition_smoke``,
``repro.client_abuse_smoke``, ``repro.obs_smoke``) follows the same shape:

1. run the pinned scenario and collect a flat figure dict,
2. print the figures (nested sub-dicts indented),
3. apply the scenario's *semantic* checks — claims that must hold in every
   mode, so a golden trace of a broken run can never be recorded,
4. either record the figures as the new golden trace (``--update-golden``)
   or compare the pinned keys against the recorded one bit for bit,
5. on success, optionally refresh a ``BENCH_*.json`` artefact in the repo
   root so the trajectory is tracked across PRs.

This module owns that skeleton (:func:`run_gate`) plus the small shared
helpers (path construction, figure printing, bench writing).  The
scenario-specific parts — the deployment, the figures, the pinned keys and
the semantic claims — stay in each smoke module.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from . import golden


def repo_root() -> Path:
    """The repository root (parent of ``src/``), where artefacts live."""
    return Path(__file__).resolve().parents[2]


def golden_data_path(filename: str) -> Path:
    """Location of a golden-trace file under ``tests/data/``."""
    return repo_root() / "tests" / "data" / filename


def bench_output_path(filename: str) -> Path:
    """Location of a tracked ``BENCH_*.json`` artefact (repo root)."""
    return repo_root() / filename


def print_figures(figures: Dict[str, object]) -> None:
    """Print a figure dict one key per line, nested dicts indented."""
    for key, value in figures.items():
        if isinstance(value, dict):
            print(f"  {key}:")
            for sub_key, sub_value in value.items():
                print(f"    {sub_key}: {sub_value}")
        else:
            print(f"  {key}: {value}")


def write_bench(path: Path, source: str, figures: Dict[str, object]) -> None:
    """Write a tracked bench artefact: the figures tagged with their source."""
    path.write_text(json.dumps({"source": source, **figures}, indent=2) + "\n")


def run_gate(
    argv: Optional[Sequence[str]],
    *,
    name: str,
    banner: str,
    run_smoke: Callable[[], Dict[str, object]],
    golden_path: Path,
    pinned_keys: Sequence[str],
    regression_label: str,
    description: Optional[str] = None,
    semantic_violations: Optional[
        Callable[[Dict[str, object]], Optional[str]]
    ] = None,
    bench_path: Optional[Path] = None,
    bench_source: Optional[str] = None,
) -> int:
    """The shared smoke-gate ``main()``: run, print, check, record.

    Returns the process exit code (0 ok, 1 on any violation).  The semantic
    checks run in *every* mode, including ``--update-golden``: a golden
    trace — or a bench artefact — of a broken run must never be recorded.
    The bench artefact is likewise only refreshed by runs that passed every
    gate, so the tracked trajectory never records figures CI rejected.
    """
    parser = argparse.ArgumentParser(description=description or f"{name} smoke gate")
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="record this run as the new golden trace instead of checking",
    )
    args = parser.parse_args(argv)

    print(banner)
    figures = run_smoke()
    print_figures(figures)

    if semantic_violations is not None:
        violation = semantic_violations(figures)
        if violation is not None:
            print(violation, file=sys.stderr)
            return 1

    if args.update_golden:
        golden.write_golden(figures, golden_path)
        if bench_path is not None:
            write_bench(bench_path, bench_source or name, figures)
        print(f"updated golden trace {golden_path}")
        return 0
    error = golden.check_against_golden(
        figures, golden_path, pinned_keys, regression_label
    )
    if error is not None:
        print(error, file=sys.stderr)
        return 1
    if bench_path is not None:
        write_bench(bench_path, bench_source or name, figures)
    print(f"{name} determinism check ok (golden {golden_path.name})")
    return 0
