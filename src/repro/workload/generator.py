"""Open-loop client workload generation (Section 6.1).

The paper drives the system with 16 client machines × 16 clients, each
submitting 500-byte requests independently; the submission rate is swept
upward until throughput saturates.  :class:`WorkloadGenerator` reproduces
that open-loop behaviour inside the simulator: each client submits requests
at its share of the aggregate rate with exponentially distributed
inter-arrival times (a Poisson process), bounded by its watermark window.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..core.client import Client
from ..core.config import WorkloadConfig
from ..sim.simulator import Simulator, Timer


class WorkloadGenerator:
    """Drives a set of clients with an open-loop Poisson arrival process."""

    def __init__(
        self,
        clients: Sequence[Client],
        workload: WorkloadConfig,
        sim: Simulator,
        on_submit: Optional[Callable[[object, float], None]] = None,
    ):
        if not clients:
            raise ValueError("workload needs at least one client")
        workload.validate()
        self.clients = list(clients)
        self.workload = workload
        self.sim = sim
        self.on_submit = on_submit
        self._rng = random.Random(workload.random_seed)
        self._payload = bytes(workload.payload_size)
        self._per_client_rate = workload.total_rate / len(self.clients)
        self._timers: List[Timer] = []
        self._stopped = False
        self.submitted = 0
        self.deferred = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Schedule the first arrival for every client."""
        for client in self.clients:
            self._schedule_next(client)

    def stop(self) -> None:
        self._stopped = True
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # ------------------------------------------------------------ arrivals
    def _next_interarrival(self) -> float:
        return self._rng.expovariate(self._per_client_rate)

    def _schedule_next(self, client: Client) -> None:
        if self._stopped:
            return
        delay = self._next_interarrival()
        if self.sim.now + delay > self.workload.duration:
            return
        timer = self.sim.schedule(delay, lambda c=client: self._submit(c))
        self._timers.append(timer)

    def _submit(self, client: Client) -> None:
        if self._stopped:
            return
        if client.outstanding_within_watermarks():
            request = client.submit(self._payload)
            self.submitted += 1
            if self.on_submit is not None:
                self.on_submit(request, self.sim.now)
        else:
            # The watermark window is full: the open-loop arrival is deferred
            # (counted so saturation is visible in reports).
            self.deferred += 1
        self._schedule_next(client)
