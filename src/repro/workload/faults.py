"""Fault-schedule builders for the evaluation scenarios (Section 6.4).

Thin convenience layer over :mod:`repro.sim.faults`: the crash and straggler
*specifications* live there (they are a simulation concern); this module
builds the particular schedules the paper's figures use.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.chaos import LinkFaultSpec, PartitionSpec, symmetric_split
from ..sim.faults import (
    BYZ_CENSOR,
    BYZ_EQUIVOCATE,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    CRASH_AT_TIME,
    CRASH_EPOCH_END,
    CRASH_EPOCH_START,
    MEMBER_ADD,
    MEMBER_EVICT_DETECTED,
    MEMBER_REMOVE,
    ByzantineSpec,
    CrashSpec,
    MaliciousClientSpec,
    MembershipSpec,
    StragglerSpec,
)
from ..core.types import BucketId, ClientId, NodeId


def epoch_start_crashes(count: int, num_nodes: int, epoch: int = 0) -> List[CrashSpec]:
    """``count`` leaders crash at the beginning of ``epoch`` (Figure 7/8/9a).

    Victims are the highest-numbered nodes so that node 0 (which examples and
    tests often inspect) stays alive; any choice of victims is equivalent.
    """
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [CrashSpec(node=v, trigger=CRASH_EPOCH_START, epoch=epoch) for v in victims]


def epoch_end_crashes(count: int, num_nodes: int, epoch: int = 0) -> List[CrashSpec]:
    """``count`` leaders crash right before their last proposal of ``epoch``."""
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [CrashSpec(node=v, trigger=CRASH_EPOCH_END, epoch=epoch) for v in victims]


def crashes_at(times: Sequence[float], num_nodes: int) -> List[CrashSpec]:
    """One crash per entry of ``times``, victims counted down from the top."""
    _check_count(len(times), num_nodes)
    return [
        CrashSpec(node=num_nodes - 1 - i, trigger=CRASH_AT_TIME, time=t)
        for i, t in enumerate(times)
    ]


def stragglers(count: int, num_nodes: int, delay: float = 5.0) -> List[StragglerSpec]:
    """``count`` Byzantine stragglers delaying proposals by ``delay`` seconds
    (the paper uses 0.5 × epoch-change timeout = 5 s) and proposing empty
    batches (Figure 11/12)."""
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [StragglerSpec(node=v, delay=delay, propose_empty=True) for v in victims]


def byzantine_leaders(
    count: int,
    num_nodes: int,
    behaviour: str = BYZ_EQUIVOCATE,
    start_time: float = 0.0,
    buckets: Sequence[BucketId] = (),
    replay_factor: int = 3,
) -> List[ByzantineSpec]:
    """``count`` actively Byzantine nodes (victims counted down from the top,
    like every other schedule builder).  ``buckets`` is required for the
    censorship behaviour; each adversary censors the same bucket set so the
    censored-latency metric has one well-defined target population."""
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [
        ByzantineSpec(
            node=v,
            behaviour=behaviour,
            start_time=start_time,
            buckets=tuple(buckets),
            replay_factor=replay_factor,
        )
        for v in victims
    ]


def abusive_clients(
    count: int,
    num_clients: int,
    behaviour: str = CLIENT_WATERMARK_ABUSE,
    start_time: float = 0.0,
    flood_factor: int = 3,
    target_bucket: BucketId = 0,
    jump: int = 1_000_000,
) -> List[MaliciousClientSpec]:
    """``count`` abusive clients, counted down from the top like every other
    schedule builder (so low-numbered clients — the ones tests inspect —
    stay correct).  Forged-signature abusers impersonate *correct* clients
    counted up from 0 (ids below ``num_clients - count``, so a victim is
    never an abuser), distinct as long as there are at least as many
    correct clients as abusers."""
    if count < 0:
        raise ValueError("abusive client count must be non-negative")
    if count >= num_clients:
        raise ValueError("cannot corrupt every client")
    specs: List[MaliciousClientSpec] = []
    correct_count = num_clients - count
    for i in range(count):
        client: ClientId = num_clients - 1 - i
        victim = (
            i % correct_count if behaviour == CLIENT_FORGED_SIGNATURE else None
        )
        specs.append(
            MaliciousClientSpec(
                client=client,
                behaviour=behaviour,
                start_time=start_time,
                flood_factor=flood_factor,
                target_bucket=target_bucket,
                jump=jump,
                victim=victim,
            )
        )
    return specs


def censorship_targets(num_buckets: int, count: int = 4) -> List[BucketId]:
    """A fixed, easy-to-reason-about censorship target set: the first
    ``count`` buckets.  Rotation (Section 2.4) reassigns them to a
    different leader every epoch, which is exactly what bounds the damage
    a censoring leader can do."""
    if not 0 < count <= num_buckets:
        raise ValueError("count must be in (0, num_buckets]")
    return list(range(count))


def minority_partition(
    count: int, num_nodes: int, start_time: float, heal_time: float
) -> List[PartitionSpec]:
    """Isolate the ``count`` highest-numbered nodes (a minority) from the
    rest between ``start_time`` and ``heal_time``.

    Victims are counted down from the top like every other schedule
    builder, so node 0 — and the majority quorum that keeps ordering —
    stay connected.  ``count`` must leave a strong quorum on the majority
    side or the whole cluster (correctly) stalls instead of degrading.
    """
    _check_count(count, num_nodes)
    minority = tuple(num_nodes - 1 - i for i in range(count))
    majority = tuple(n for n in range(num_nodes) if n not in minority)
    return [symmetric_split(majority, minority, start_time, heal_time)]


def bridge_partition(
    num_nodes: int, bridge: NodeId, start_time: float, heal_time: float
) -> List[PartitionSpec]:
    """Split the cluster into two halves that can only talk through
    ``bridge`` — the classic mis-set-firewall topology where connectivity
    is transitive at the routing layer but not at the TCP mesh.

    Nodes below ``bridge`` form one group, nodes above the other; the
    bridge node itself keeps links to everyone.
    """
    if not 0 <= bridge < num_nodes:
        raise ValueError("bridge node outside the deployment")
    low = tuple(range(0, bridge))
    high = tuple(range(bridge + 1, num_nodes))
    if not low or not high:
        raise ValueError("bridge must have nodes on both sides")
    return [
        PartitionSpec(
            groups=(low, high),
            start_time=start_time,
            heal_time=heal_time,
            bridges=(bridge,),
        )
    ]


def one_way_blocks(
    pairs: Sequence[tuple], start_time: float, end_time: float
) -> List[LinkFaultSpec]:
    """Directionally block the ``(src, dst)`` links in ``pairs`` — the
    asymmetric-connectivity case (A reaches B, B cannot reach A) that
    symmetric partitions cannot express."""
    return [
        LinkFaultSpec(
            src=src, dst=dst, start_time=start_time, end_time=end_time, block=True
        )
        for src, dst in pairs
    ]


def flapping_links(
    pairs: Sequence[tuple],
    flap_period: float,
    flap_up: float = 0.5,
    start_time: float = 0.0,
    end_time: float = float("inf"),
    retransmit: float = 0.0,
    seed: int = 0,
) -> List[LinkFaultSpec]:
    """Links that oscillate between up and down on a deterministic schedule
    (``flap_period`` seconds per cycle, up for the first ``flap_up``
    fraction of each).  ``retransmit`` > 0 re-offers payloads lost to a
    down window after that many seconds (a reliable transport riding out
    the flaps)."""
    return [
        LinkFaultSpec(
            src=src,
            dst=dst,
            start_time=start_time,
            end_time=end_time,
            flap_period=flap_period,
            flap_up=flap_up,
            retransmit=retransmit,
            seed=seed,
        )
        for src, dst in pairs
    ]


def lossy_links(
    pairs: Sequence[tuple],
    loss_rate: float,
    duplicate_rate: float = 0.0,
    extra_delay: float = 0.0,
    start_time: float = 0.0,
    end_time: float = float("inf"),
    retransmit: float = 0.0,
    seed: int = 0,
) -> List[LinkFaultSpec]:
    """Degraded (not severed) links: per-payload loss, duplication and
    added delay, with a deterministic per-link RNG derived from ``seed``.

    ``retransmit`` > 0 puts a reliable transport under the loss (dropped
    payloads are re-offered after that many seconds), which is the
    deployment-faithful configuration: BFT protocols assume channels
    between correct nodes eventually deliver.  Leave it 0 to model raw
    datagram loss and stress the recovery machinery instead.
    """
    return [
        LinkFaultSpec(
            src=src,
            dst=dst,
            start_time=start_time,
            end_time=end_time,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            extra_delay=extra_delay,
            retransmit=retransmit,
            seed=seed,
        )
        for src, dst in pairs
    ]


def membership_additions(
    count: int, num_nodes: int, start: float = 3.0, spacing: float = 0.0
) -> List[MembershipSpec]:
    """``count`` joiners (ids counted up from ``num_nodes``) submitted as
    add-ConfigTxs from ``start``, ``spacing`` seconds apart.

    Joiner ids must be contiguous from the genesis ``num_nodes`` (the
    harness's node table is id-indexed), which this builder guarantees.
    """
    if count < 0:
        raise ValueError("joiner count must be non-negative")
    return [
        MembershipSpec(node=num_nodes + i, action=MEMBER_ADD, time=start + i * spacing)
        for i in range(count)
    ]


def membership_removals(
    nodes: Sequence[NodeId], start: float = 3.0, spacing: float = 0.0
) -> List[MembershipSpec]:
    """One remove-ConfigTx per entry of ``nodes``, ``spacing`` seconds apart."""
    return [
        MembershipSpec(node=node, action=MEMBER_REMOVE, time=start + i * spacing)
        for i, node in enumerate(nodes)
    ]


def eviction_watch(nodes: Sequence[NodeId], start: float = 0.0) -> List[MembershipSpec]:
    """Detection-driven removals: the harness polls the failure detectors
    from ``start`` and submits a remove-ConfigTx for each of ``nodes`` once
    some correct replica has recorded it as a failed leader.  Pair with a
    :class:`ByzantineSpec` for the same node to close the eviction loop:
    misbehave → view change → failure history → removal from membership.
    """
    return [
        MembershipSpec(node=node, action=MEMBER_EVICT_DETECTED, time=start)
        for node in nodes
    ]


def rolling_upgrade_specs(
    num_nodes: int, start: float = 3.0, period: float = 8.0
) -> List[MembershipSpec]:
    """Upgrade every genesis replica in turn: remove node ``i`` at
    ``start + 2·period·i``, re-add it one ``period`` later.

    ``period`` must exceed the epoch duration at the scenario's request
    rate: a remove and re-add of the same node committed inside one epoch
    cancel out before activation, and the "upgrade" never happens.  One
    node is out at a time, so a strong quorum of the remaining replicas
    keeps ordering throughout.
    """
    if num_nodes < 2:
        raise ValueError("rolling upgrade needs at least 2 nodes")
    if period <= 0:
        raise ValueError("period must be positive")
    specs: List[MembershipSpec] = []
    for i in range(num_nodes):
        cycle = start + 2 * period * i
        specs.append(MembershipSpec(node=i, action=MEMBER_REMOVE, time=cycle))
        specs.append(MembershipSpec(node=i, action=MEMBER_ADD, time=cycle + period))
    return specs


def _check_count(count: int, num_nodes: int) -> None:
    if count < 0:
        raise ValueError("fault count must be non-negative")
    if count >= num_nodes:
        raise ValueError("cannot fault every node")
