"""Fault-schedule builders for the evaluation scenarios (Section 6.4).

Thin convenience layer over :mod:`repro.sim.faults`: the crash and straggler
*specifications* live there (they are a simulation concern); this module
builds the particular schedules the paper's figures use.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.faults import (
    BYZ_CENSOR,
    BYZ_EQUIVOCATE,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    CRASH_AT_TIME,
    CRASH_EPOCH_END,
    CRASH_EPOCH_START,
    ByzantineSpec,
    CrashSpec,
    MaliciousClientSpec,
    StragglerSpec,
)
from ..core.types import BucketId, ClientId, NodeId


def epoch_start_crashes(count: int, num_nodes: int, epoch: int = 0) -> List[CrashSpec]:
    """``count`` leaders crash at the beginning of ``epoch`` (Figure 7/8/9a).

    Victims are the highest-numbered nodes so that node 0 (which examples and
    tests often inspect) stays alive; any choice of victims is equivalent.
    """
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [CrashSpec(node=v, trigger=CRASH_EPOCH_START, epoch=epoch) for v in victims]


def epoch_end_crashes(count: int, num_nodes: int, epoch: int = 0) -> List[CrashSpec]:
    """``count`` leaders crash right before their last proposal of ``epoch``."""
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [CrashSpec(node=v, trigger=CRASH_EPOCH_END, epoch=epoch) for v in victims]


def crashes_at(times: Sequence[float], num_nodes: int) -> List[CrashSpec]:
    """One crash per entry of ``times``, victims counted down from the top."""
    _check_count(len(times), num_nodes)
    return [
        CrashSpec(node=num_nodes - 1 - i, trigger=CRASH_AT_TIME, time=t)
        for i, t in enumerate(times)
    ]


def stragglers(count: int, num_nodes: int, delay: float = 5.0) -> List[StragglerSpec]:
    """``count`` Byzantine stragglers delaying proposals by ``delay`` seconds
    (the paper uses 0.5 × epoch-change timeout = 5 s) and proposing empty
    batches (Figure 11/12)."""
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [StragglerSpec(node=v, delay=delay, propose_empty=True) for v in victims]


def byzantine_leaders(
    count: int,
    num_nodes: int,
    behaviour: str = BYZ_EQUIVOCATE,
    start_time: float = 0.0,
    buckets: Sequence[BucketId] = (),
    replay_factor: int = 3,
) -> List[ByzantineSpec]:
    """``count`` actively Byzantine nodes (victims counted down from the top,
    like every other schedule builder).  ``buckets`` is required for the
    censorship behaviour; each adversary censors the same bucket set so the
    censored-latency metric has one well-defined target population."""
    _check_count(count, num_nodes)
    victims = [num_nodes - 1 - i for i in range(count)]
    return [
        ByzantineSpec(
            node=v,
            behaviour=behaviour,
            start_time=start_time,
            buckets=tuple(buckets),
            replay_factor=replay_factor,
        )
        for v in victims
    ]


def abusive_clients(
    count: int,
    num_clients: int,
    behaviour: str = CLIENT_WATERMARK_ABUSE,
    start_time: float = 0.0,
    flood_factor: int = 3,
    target_bucket: BucketId = 0,
    jump: int = 1_000_000,
) -> List[MaliciousClientSpec]:
    """``count`` abusive clients, counted down from the top like every other
    schedule builder (so low-numbered clients — the ones tests inspect —
    stay correct).  Forged-signature abusers impersonate *correct* clients
    counted up from 0 (ids below ``num_clients - count``, so a victim is
    never an abuser), distinct as long as there are at least as many
    correct clients as abusers."""
    if count < 0:
        raise ValueError("abusive client count must be non-negative")
    if count >= num_clients:
        raise ValueError("cannot corrupt every client")
    specs: List[MaliciousClientSpec] = []
    correct_count = num_clients - count
    for i in range(count):
        client: ClientId = num_clients - 1 - i
        victim = (
            i % correct_count if behaviour == CLIENT_FORGED_SIGNATURE else None
        )
        specs.append(
            MaliciousClientSpec(
                client=client,
                behaviour=behaviour,
                start_time=start_time,
                flood_factor=flood_factor,
                target_bucket=target_bucket,
                jump=jump,
                victim=victim,
            )
        )
    return specs


def censorship_targets(num_buckets: int, count: int = 4) -> List[BucketId]:
    """A fixed, easy-to-reason-about censorship target set: the first
    ``count`` buckets.  Rotation (Section 2.4) reassigns them to a
    different leader every epoch, which is exactly what bounds the damage
    a censoring leader can do."""
    if not 0 < count <= num_buckets:
        raise ValueError("count must be in (0, num_buckets]")
    return list(range(count))


def _check_count(count: int, num_nodes: int) -> None:
    if count < 0:
        raise ValueError("fault count must be non-negative")
    if count >= num_nodes:
        raise ValueError("cannot fault every node")
