"""Workload generation and fault schedules for experiments."""

from .generator import WorkloadGenerator
from .faults import epoch_start_crashes, epoch_end_crashes, crashes_at, stragglers

__all__ = [
    "WorkloadGenerator",
    "epoch_start_crashes",
    "epoch_end_crashes",
    "crashes_at",
    "stragglers",
]
