"""Measurement of throughput and end-to-end latency.

The paper measures *throughput* as requests delivered per second and
*end-to-end latency* as the time from a client submitting a request until it
receives ``f+1`` responses (Section 6.1).  The collector supports both the
full client-response path and the cheaper centralised equivalent: a request
counts as completed the moment ``f+1`` distinct nodes have delivered it,
which is exactly when the client-side quorum of responses becomes possible
(minus one network hop that is identical for all configurations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import DeliveredRequest, NodeId, Request, RequestId


@dataclass
class LatencySummary:
    """Latency statistics in seconds."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    maximum: float = 0.0

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary()
        ordered = sorted(samples)
        # Clamp the mean into [min, max]: float summation can drift a ULP
        # past the true bounds (e.g. five identical samples).
        mean = sum(ordered) / len(ordered)
        mean = max(ordered[0], min(mean, ordered[-1]))
        return LatencySummary(
            count=len(ordered),
            mean=mean,
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            maximum=ordered[-1],
        )


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


@dataclass
class RunReport:
    """Everything a benchmark needs from one experiment run."""

    duration: float
    submitted: int
    completed: int
    throughput: float
    latency: LatencySummary
    #: Simulator engine that produced this report (``"single"`` or
    #: ``"sharded"``) — recorded so downstream golden-trace gates can refuse
    #: to compare runs across engines instead of failing with an opaque
    #: diff when wall-clock-dependent figures differ.
    engine: str = "single"
    #: Requests completed per one-second interval (Figure 9/10/12 style).
    #: Populated by the harness from the observability sampler when a run
    #: enables ``ObsConfig.metrics_interval``; empty otherwise.
    throughput_timeline: List[Tuple[float, float]] = field(default_factory=list)
    #: Free-form counters (view changes, epochs, traffic...).
    extra: Dict[str, float] = field(default_factory=dict)
    #: One record per node restart: WAL entries replayed, state-transfer
    #: bytes, time-to-caught-up... (see ``Deployment._on_node_restart``).
    recoveries: List[Dict[str, float]] = field(default_factory=list)
    #: Byzantine-fault diagnostics, empty for non-adversarial runs:
    #: ``per_node`` maps node → {equivocations_detected,
    #: invalid_sigs_rejected}, ``adversaries`` maps node → behaviour, and
    #: ``censored`` summarises delivery of requests in censored buckets
    #: (buckets, submitted, completed, latency: LatencySummary).
    byzantine: Dict[str, object] = field(default_factory=dict)
    #: Malicious-client diagnostics, empty for runs without abusive clients:
    #: ``adversaries`` maps client → behaviour, ``per_client`` maps the
    #: *claimed* client identity → cross-node rejection/duplicate counters
    #: (bad_signature, outside_watermarks, unknown_client, duplicates), and
    #: ``abusers`` carries each abusive client's own attack counters (see
    #: :meth:`repro.sim.client_adversary.AbusiveClient.abuse_stats`).
    client_abuse: Dict[str, object] = field(default_factory=dict)
    #: Network-chaos diagnostics, empty for runs without partitions or link
    #: faults: ``partitions`` lists one record per scheduled partition
    #: (groups, bridges, started_at/healed_at, laggards,
    #: time_to_reconverge, view_changes_during), ``drops_by_cause`` maps
    #: drop cause → payload count, ``link_faults`` carries per-link runtime
    #: counters, ``client_retries_total`` sums the clients' retry loops.
    partitions: Dict[str, object] = field(default_factory=dict)
    #: Dynamic-membership diagnostics, empty for static-configuration runs:
    #: ``activations`` lists one record per view-changing epoch boundary
    #: (epoch, added, removed, resulting view), ``joins`` one record per
    #: booted replica (time_to_join, log_size_at_join, state-transfer
    #: figures), ``removed``/``evictions`` the activated and
    #: detection-driven removals, ``config_txs_committed`` the ordered
    #: ConfigTxs as derived from the committed log, and ``final_view`` the
    #: replica set after the last activation.
    membership: Dict[str, object] = field(default_factory=dict)
    #: Per-node/cluster time series sampled by ``repro.obs.MetricsSampler``
    #: (``{"interval", "warmup", "times", "series"}``); empty unless the
    #: run enabled the observability sampler.
    timeseries: Dict[str, object] = field(default_factory=dict)


class MetricsCollector:
    """Collects submissions and deliveries and turns them into a report."""

    def __init__(self, completion_quorum: int, warmup: float = 0.0):
        if completion_quorum < 1:
            raise ValueError("completion_quorum must be >= 1")
        self.completion_quorum = completion_quorum
        self.warmup = warmup
        self._submit_times: Dict[RequestId, float] = {}
        self._delivery_nodes: Dict[RequestId, set] = {}
        self._completion_times: Dict[RequestId, float] = {}
        self._latencies: List[float] = []
        self.deliveries_observed = 0
        #: Observability hook (``repro.obs.RequestTracer``); installed by the
        #: harness only when tracing is enabled, ``None`` otherwise.
        self.tracer = None
        self._recoveries: List[Dict[str, float]] = []
        #: Censored-bucket watch (Byzantine censorship scenarios); None off.
        self._censored_buckets: Optional[frozenset] = None
        self._num_buckets = 0
        self._censored_latencies: List[float] = []
        self._censored_submitted = 0

    # ------------------------------------------------------------ recording
    def watch_buckets(self, buckets, num_buckets: int) -> None:
        """Track delivery latency of requests mapping to ``buckets``.

        The harness arms this for censorship scenarios: the report then
        carries a separate latency summary for exactly the requests a
        Byzantine leader tries to suppress, which is how the benchmarks
        show censored buckets still completing (bucket rotation, Sec. 3.2).
        """
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self._censored_buckets = frozenset(buckets)
        self._num_buckets = num_buckets

    def _is_censored(self, rid: RequestId) -> bool:
        return rid._mix % self._num_buckets in self._censored_buckets

    def record_submit(self, rid: RequestId, time: float) -> None:
        if rid not in self._submit_times:
            self._submit_times[rid] = time
            if (
                self._censored_buckets is not None
                and time >= self.warmup
                and self._is_censored(rid)
            ):
                self._censored_submitted += 1

    def record_delivery(self, node_id: NodeId, delivered: DeliveredRequest) -> None:
        """Feed one node's SMR-DELIVER event (wired as the node's on_deliver).

        Called once per request per node, so the common path is kept to a few
        dictionary probes (no set allocation after the first observer).
        """
        self.deliveries_observed += 1
        rid = delivered.request.rid
        if rid in self._completion_times:
            return
        nodes = self._delivery_nodes.get(rid)
        if nodes is None:
            nodes = self._delivery_nodes[rid] = set()
        nodes.add(node_id)
        if len(nodes) >= self.completion_quorum:
            self._complete(rid, delivered.delivered_at)

    def record_recovery(self, record: Dict[str, float]) -> None:
        """Attach one node-restart recovery record to the run's report.

        Keys are defined by the harness (``restarted_at``, ``downtime``,
        ``time_to_caught_up``, ``wal_entries_replayed``,
        ``state_transfer_bytes``, ...); the collector stores them verbatim
        so scenarios can add protocol-specific figures without touching
        this module.
        """
        self._recoveries.append(dict(record))

    def record_client_completion(
        self, client_id: int, request: Request, submitted_at: float, completed_at: float
    ) -> None:
        """Alternative completion source: the client collected f+1 responses."""
        self._submit_times.setdefault(request.rid, submitted_at)
        self._complete(request.rid, completed_at)

    def _complete(self, rid: RequestId, time: float) -> None:
        if rid in self._completion_times:
            return
        self._completion_times[rid] = time
        if self.tracer is not None:
            self.tracer.on_complete(time, rid)
        submit = self._submit_times.get(rid)
        if submit is None or submit < self.warmup:
            return
        self._latencies.append(time - submit)
        if self._censored_buckets is not None and self._is_censored(rid):
            self._censored_latencies.append(time - submit)

    # ------------------------------------------------------------ reporting
    def completed_count(self) -> int:
        return len(self._latencies)

    def submitted_count(self) -> int:
        return sum(1 for t in self._submit_times.values() if t >= self.warmup)

    def report(
        self,
        duration: float,
        extra: Optional[Dict[str, float]] = None,
        byzantine: Optional[Dict[str, object]] = None,
        client_abuse: Optional[Dict[str, object]] = None,
        partitions: Optional[Dict[str, object]] = None,
        membership: Optional[Dict[str, object]] = None,
        engine: str = "single",
    ) -> RunReport:
        """Summarise the run; ``byzantine`` carries the harness's per-node
        misbehaviour counters and is merged with the collector's own
        censored-bucket figures, ``client_abuse`` the per-client abuse
        counters of runs with malicious clients, ``partitions`` the
        network-chaos diagnostics of runs with partitions or link faults,
        ``membership`` the reconfiguration diagnostics of runs with
        dynamic membership, ``engine`` names the simulator engine that
        produced the run."""
        measured = max(1e-9, duration - self.warmup)
        completed = len(self._latencies)
        byz: Dict[str, object] = dict(byzantine or {})
        if self._censored_buckets is not None:
            byz["censored"] = {
                "buckets": sorted(self._censored_buckets),
                "submitted": self._censored_submitted,
                "completed": len(self._censored_latencies),
                "latency": LatencySummary.from_samples(self._censored_latencies),
            }
        return RunReport(
            duration=duration,
            engine=engine,
            submitted=self.submitted_count(),
            completed=completed,
            throughput=completed / measured,
            latency=LatencySummary.from_samples(self._latencies),
            extra=dict(extra or {}),
            recoveries=[dict(r) for r in self._recoveries],
            byzantine=byz,
            client_abuse=dict(client_abuse or {}),
            partitions=dict(partitions or {}),
            membership=dict(membership or {}),
        )
