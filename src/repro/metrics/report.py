"""Formatting helpers for benchmark output.

The benchmark harness prints, for every paper table and figure, the same
rows/series the paper reports.  These helpers keep that output consistent
and readable inside pytest-benchmark logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Sequence[Tuple[float, float]], unit_x: str = "s", unit_y: str = "req/s") -> str:
    """Render a (time, value) series as compact text."""
    body = ", ".join(f"{x:.1f}{unit_x}:{y:.0f}" for x, y in points)
    return f"{name}: [{body}] ({unit_y})"


def speedup(new: float, old: float) -> float:
    """Throughput improvement factor, guarding against division by zero."""
    if old <= 0:
        return float("inf") if new > 0 else 1.0
    return new / old


def print_banner(title: str) -> None:
    """Print ``title`` framed by ``=`` rules (benchmark/CLI section header)."""
    line = "=" * max(30, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")
