"""Throughput/latency measurement and report formatting."""

from .collector import MetricsCollector, RunReport, LatencySummary
from .report import format_table, format_series, speedup, print_banner

__all__ = [
    "MetricsCollector",
    "RunReport",
    "LatencySummary",
    "format_table",
    "format_series",
    "speedup",
    "print_banner",
]
