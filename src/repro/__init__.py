"""repro — reproduction of "State-Machine Replication Scalability Made Simple" (ISS).

The package implements the paper's contribution (the ISS multiplexing
construction and the Sequenced Broadcast abstraction), the three ordering
protocols it wraps (PBFT, chained HotStuff, Raft), the reference
SB-from-consensus construction, the Mir-BFT and single-leader baselines, and
two interchangeable deployment backends behind one node boundary: the
simulated WAN substrate plus experiment harness used to reproduce every
table and figure of the evaluation, and a live asyncio/TCP backend that runs
the same protocol objects as real processes over real sockets.

The top level re-exports lazily (PEP 562): importing ``repro`` — or any
protocol submodule, which implicitly imports its parent package — pulls in
no backend.  ``repro.core``/``repro.pbft``/... stay importable without
``repro.sim`` ever loading (asserted by ``tests/test_layering.py``), and the
CLI entry points only pay for the modules they touch.

Quick start::

    from repro import Deployment, ISSConfig, WorkloadConfig

    config = ISSConfig(num_nodes=4, protocol="pbft", epoch_length=16)
    workload = WorkloadConfig(num_clients=4, total_rate=200, duration=10)
    report = Deployment(config, workload=workload).run().report
    print(report.throughput, report.latency.mean)
"""

import importlib

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "ISSConfig": ".core.config",
    "NetworkConfig": ".core.config",
    "WorkloadConfig": ".core.config",
    "paper_config": ".core.config",
    "PROTOCOL_PBFT": ".core.config",
    "PROTOCOL_HOTSTUFF": ".core.config",
    "PROTOCOL_RAFT": ".core.config",
    "PROTOCOL_CONSENSUS": ".core.config",
    "POLICY_SIMPLE": ".core.config",
    "POLICY_BACKOFF": ".core.config",
    "POLICY_BLACKLIST": ".core.config",
    "Request": ".core.types",
    "RequestId": ".core.types",
    "Batch": ".core.types",
    "NIL": ".core.types",
    "DeliveredRequest": ".core.types",
    "ISSNode": ".core.iss",
    "Client": ".core.client",
    "Deployment": ".harness.runner",
    "DeploymentResult": ".harness.runner",
    "run_experiment": ".harness.runner",
    "find_peak_throughput": ".harness.runner",
    "RunReport": ".metrics.collector",
    "LatencySummary": ".metrics.collector",
    "MetricsCollector": ".metrics.collector",
    "CrashSpec": ".runtime.faults",
    "RestartSpec": ".runtime.faults",
    "StragglerSpec": ".runtime.faults",
    "ByzantineSpec": ".runtime.faults",
    "MaliciousClientSpec": ".runtime.faults",
    "MembershipSpec": ".runtime.faults",
    "MEMBER_ADD": ".runtime.faults",
    "MEMBER_REMOVE": ".runtime.faults",
    "MEMBER_EVICT_DETECTED": ".runtime.faults",
    "BYZ_EQUIVOCATE": ".runtime.faults",
    "BYZ_CENSOR": ".runtime.faults",
    "BYZ_INVALID_VOTES": ".runtime.faults",
    "BYZ_REPLAY": ".runtime.faults",
    "CLIENT_WATERMARK_ABUSE": ".runtime.faults",
    "CLIENT_DUPLICATE_FLOOD": ".runtime.faults",
    "CLIENT_BUCKET_BIAS": ".runtime.faults",
    "CLIENT_FORGED_SIGNATURE": ".runtime.faults",
    "ObsConfig": ".obs",
    "PartitionSpec": ".sim.chaos",
    "LinkFaultSpec": ".sim.chaos",
    "AbusiveClient": ".sim.client_adversary",
    "LiveDeployment": ".net.deploy",
    "LiveClusterSpec": ".net.deploy",
}

__version__ = "1.0.0"

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name):
    """Resolve a public name from its defining submodule on first use."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
