"""repro — reproduction of "State-Machine Replication Scalability Made Simple" (ISS).

The package implements the paper's contribution (the ISS multiplexing
construction and the Sequenced Broadcast abstraction), the three ordering
protocols it wraps (PBFT, chained HotStuff, Raft), the reference
SB-from-consensus construction, the Mir-BFT and single-leader baselines, and
the simulated WAN substrate plus experiment harness used to reproduce every
table and figure of the evaluation.

Quick start::

    from repro import Deployment, ISSConfig, WorkloadConfig

    config = ISSConfig(num_nodes=4, protocol="pbft", epoch_length=16)
    workload = WorkloadConfig(num_clients=4, total_rate=200, duration=10)
    report = Deployment(config, workload=workload).run().report
    print(report.throughput, report.latency.mean)
"""

from .core.config import (
    ISSConfig,
    NetworkConfig,
    WorkloadConfig,
    paper_config,
    PROTOCOL_PBFT,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_RAFT,
    PROTOCOL_CONSENSUS,
    POLICY_SIMPLE,
    POLICY_BACKOFF,
    POLICY_BLACKLIST,
)
from .core.types import Request, RequestId, Batch, NIL, DeliveredRequest
from .core.iss import ISSNode
from .core.client import Client
from .harness.runner import Deployment, DeploymentResult, run_experiment, find_peak_throughput
from .metrics.collector import RunReport, LatencySummary, MetricsCollector
from .sim.faults import (
    CrashSpec,
    RestartSpec,
    StragglerSpec,
    ByzantineSpec,
    MaliciousClientSpec,
    MembershipSpec,
    MEMBER_ADD,
    MEMBER_REMOVE,
    MEMBER_EVICT_DETECTED,
    BYZ_EQUIVOCATE,
    BYZ_CENSOR,
    BYZ_INVALID_VOTES,
    BYZ_REPLAY,
    CLIENT_WATERMARK_ABUSE,
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_BUCKET_BIAS,
    CLIENT_FORGED_SIGNATURE,
)
from .obs import ObsConfig
from .sim.chaos import PartitionSpec, LinkFaultSpec
from .sim.client_adversary import AbusiveClient

__version__ = "1.0.0"

__all__ = [
    "ISSConfig",
    "NetworkConfig",
    "WorkloadConfig",
    "paper_config",
    "PROTOCOL_PBFT",
    "PROTOCOL_HOTSTUFF",
    "PROTOCOL_RAFT",
    "PROTOCOL_CONSENSUS",
    "POLICY_SIMPLE",
    "POLICY_BACKOFF",
    "POLICY_BLACKLIST",
    "Request",
    "RequestId",
    "Batch",
    "NIL",
    "DeliveredRequest",
    "ISSNode",
    "Client",
    "Deployment",
    "DeploymentResult",
    "run_experiment",
    "find_peak_throughput",
    "RunReport",
    "LatencySummary",
    "MetricsCollector",
    "CrashSpec",
    "RestartSpec",
    "StragglerSpec",
    "ByzantineSpec",
    "MaliciousClientSpec",
    "MembershipSpec",
    "MEMBER_ADD",
    "MEMBER_REMOVE",
    "MEMBER_EVICT_DETECTED",
    "ObsConfig",
    "PartitionSpec",
    "LinkFaultSpec",
    "AbusiveClient",
    "BYZ_EQUIVOCATE",
    "BYZ_CENSOR",
    "BYZ_INVALID_VOTES",
    "BYZ_REPLAY",
    "CLIENT_WATERMARK_ABUSE",
    "CLIENT_DUPLICATE_FLOOD",
    "CLIENT_BUCKET_BIAS",
    "CLIENT_FORGED_SIGNATURE",
    "__version__",
]
