"""Hot-path performance smoke test (``python -m repro.perf_smoke``).

Runs the canonical profiling scenario once — 8 ISS nodes, 16 clients pushing
an aggregate 2,000 req/s for 10 virtual seconds over the simulated 1 Gbps
WAN — and records how fast the *simulator itself* ran: wall-clock time,
events executed per second of wall time, and requests completed per second
of wall time.  The result is written to ``BENCH_hotpath.json`` so the perf
trajectory is tracked across PRs (see PERF.md for the methodology).

The script fails loudly (exit code 1) when throughput-per-second-of-wall
regresses by more than the allowed fraction versus the checked-in baseline
(``benchmarks/bench_hotpath_baseline.json``).  Pass ``--update-baseline``
after an intentional perf change, or ``--no-check`` on machines whose speed
is not comparable to the baseline recorder's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from .core.config import ISSConfig, WorkloadConfig
from .harness.runner import Deployment

#: The profiling scenario (keep in sync with PERF.md and the baseline file).
SCENARIO = dict(
    num_nodes=8,
    random_seed=42,
    num_clients=16,
    total_rate=2000.0,
    duration=10.0,
)

#: Allowed regression of events-per-wall-second before the check fails.
REGRESSION_TOLERANCE = 0.30


def build_deployment() -> Deployment:
    config = ISSConfig(num_nodes=SCENARIO["num_nodes"], random_seed=SCENARIO["random_seed"])
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
    )
    return Deployment(config=config, workload=workload)


def run_smoke() -> Dict[str, float]:
    """Run the scenario once and return the measured figures."""
    deployment = build_deployment()
    start = time.perf_counter()
    result = deployment.run()
    wall = time.perf_counter() - start
    report = result.report
    events = deployment.sim.events_executed
    return {
        "wall_time_s": round(wall, 4),
        "events_executed": events,
        "events_per_wall_sec": round(events / wall, 1),
        "requests_submitted": report.submitted,
        "requests_completed": report.completed,
        "requests_per_wall_sec": round(report.completed / wall, 1),
        "virtual_duration_s": SCENARIO["duration"],
        "messages_sent": deployment.network.stats.messages_sent,
        "virtual_throughput_rps": round(report.throughput, 1),
    }


def _default_baseline_path() -> Path:
    return Path(__file__).resolve().parents[2] / "benchmarks" / "bench_hotpath_baseline.json"


def check_against_baseline(
    figures: Dict[str, float], baseline_path: Path
) -> Optional[str]:
    """Return an error string when the run regresses beyond tolerance."""
    if not baseline_path.exists():
        return (
            f"baseline {baseline_path} does not exist — run with "
            f"--update-baseline to record one, or --no-check to skip"
        )
    baseline = json.loads(baseline_path.read_text())
    reference = float(baseline.get("events_per_wall_sec", 0.0))
    if reference <= 0:
        return (
            f"baseline {baseline_path} has no positive events_per_wall_sec — "
            f"re-record it with --update-baseline"
        )
    measured = figures["events_per_wall_sec"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    if measured < floor:
        return (
            f"PERF REGRESSION: {measured:.0f} events/wall-s is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the baseline "
            f"{reference:.0f} events/wall-s (floor {floor:.0f}). "
            f"Baseline: {baseline_path}"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_hotpath.json",
        help="where to write the result JSON (default: ./BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON to compare against (default: benchmarks/bench_hotpath_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record this run as the new baseline instead of checking against it",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the regression check (e.g. on an incomparable machine)",
    )
    args = parser.parse_args(argv)

    print(
        f"perf smoke: {SCENARIO['num_nodes']} nodes, "
        f"{SCENARIO['total_rate']:.0f} req/s, {SCENARIO['duration']:.0f}s virtual ..."
    )
    figures = run_smoke()
    for key, value in figures.items():
        print(f"  {key}: {value}")

    Path(args.output).write_text(json.dumps(figures, indent=2) + "\n")
    print(f"wrote {args.output}")

    baseline_path = Path(args.baseline) if args.baseline else _default_baseline_path()
    if args.update_baseline:
        baseline_path.write_text(json.dumps(figures, indent=2) + "\n")
        print(f"updated baseline {baseline_path}")
        return 0
    if not args.no_check:
        error = check_against_baseline(figures, baseline_path)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        print(
            f"regression check ok (baseline {baseline_path.name}, "
            f"tolerance {REGRESSION_TOLERANCE:.0%})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
