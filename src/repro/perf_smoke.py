"""Hot-path performance smoke test (``python -m repro.perf_smoke``).

Runs the canonical profiling scenario — 8 ISS nodes, 16 clients pushing an
aggregate 2,000 req/s for 10 virtual seconds over the simulated 1 Gbps WAN —
twice: once with wire batching disabled and once with the batched-vote
configuration (``NetworkConfig.batch_flush_interval = 20 ms``, see
:mod:`repro.sim.batching`).  For each run it records how fast the *simulator
itself* ran (wall-clock time, events per second of wall time, requests
completed per second of wall time) plus the wire-message counters, and
derives the message/event reduction the batching layer achieves.  The result
is written to ``BENCH_hotpath.json`` so the perf trajectory is tracked
across PRs (see PERF.md for the methodology).

The script fails loudly (exit code 1) when

* throughput-per-second-of-wall of the unbatched run regresses by more than
  the allowed fraction versus the checked-in baseline
  (``benchmarks/bench_hotpath_baseline.json``), or
* the batched run no longer cuts total wire messages by at least
  ``MIN_MESSAGE_REDUCTION`` (this check is deterministic: message counts do
  not depend on machine speed).

Pass ``--update-baseline`` after an intentional perf change, or
``--no-check`` on machines whose speed is not comparable to the baseline
recorder's (the deterministic reduction check still runs).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from .core.config import ISSConfig, NetworkConfig, SimConfig, WorkloadConfig
from .harness.runner import Deployment
from .harness.scenarios import DEFAULT_FLUSH_INTERVAL
from .obs import ObsConfig
from .smokelib import print_figures

#: The profiling scenario (keep in sync with PERF.md and the baseline file).
SCENARIO = dict(
    num_nodes=8,
    random_seed=42,
    num_clients=16,
    total_rate=2000.0,
    duration=10.0,
)

#: Flush tick of the batched-vote run (seconds) — the single source of truth
#: is the figure benchmarks' default, so the two batched configurations
#: cannot drift apart.  Note the env var ``REPRO_FLUSH_INTERVAL`` does *not*
#: affect this scenario; the baseline must be machine-environment-stable.
BATCH_FLUSH_INTERVAL = DEFAULT_FLUSH_INTERVAL

#: Allowed regression of events-per-wall-second before the check fails.
REGRESSION_TOLERANCE = 0.30

#: Minimum fraction of wire messages batching must save on the scenario.
MIN_MESSAGE_REDUCTION = 0.30


def build_deployment(
    batch_flush_interval: float = 0.0, obs: Optional[ObsConfig] = None
) -> Deployment:
    """Build the profiling-scenario deployment (optionally wire-batched).

    Observability is pinned off by default — the wall-clock baseline must
    not move with ``REPRO_TRACE*`` env vars; ``repro.obs_smoke`` passes an
    enabled ``obs`` to measure the tracing overhead on this same scenario.
    """
    config = ISSConfig(num_nodes=SCENARIO["num_nodes"], random_seed=SCENARIO["random_seed"])
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
    )
    network_config = NetworkConfig(batch_flush_interval=batch_flush_interval)
    return Deployment(
        config=config,
        workload=workload,
        network_config=network_config,
        obs=obs if obs is not None else ObsConfig.disabled(),
    )


def _run_once(batch_flush_interval: float) -> Dict[str, float]:
    deployment = build_deployment(batch_flush_interval)
    start = time.perf_counter()
    result = deployment.run()
    wall = time.perf_counter() - start
    report = result.report
    events = deployment.sim.events_executed
    stats = deployment.network.stats
    return {
        "wall_time_s": round(wall, 4),
        "events_executed": events,
        "events_per_wall_sec": round(events / wall, 1),
        "requests_submitted": report.submitted,
        "requests_completed": report.completed,
        "requests_per_wall_sec": round(report.completed / wall, 1),
        "virtual_duration_s": SCENARIO["duration"],
        "messages_sent": stats.messages_sent,
        "bytes_sent": stats.bytes_sent,
        "batches_sent": stats.batches_sent,
        "payloads_batched": stats.payloads_batched,
        "virtual_throughput_rps": round(report.throughput, 1),
    }


def run_smoke() -> Dict[str, object]:
    """Run the scenario unbatched and batched; return the combined figures.

    The top-level keys describe the unbatched run (the shape older baselines
    used); the batched run and the derived reductions live under ``batched``.
    """
    figures: Dict[str, object] = dict(_run_once(0.0))
    # Wall-clock figures are engine-specific; record which engine measured
    # them so the baseline gate can refuse a cross-engine comparison.
    # build_deployment() passes no explicit SimConfig, so the env default
    # is exactly the engine both runs above used.
    figures["engine"] = SimConfig.from_env().engine
    batched = _run_once(BATCH_FLUSH_INTERVAL)
    figures["batched"] = batched
    figures["batch_flush_interval_s"] = BATCH_FLUSH_INTERVAL
    figures["message_reduction"] = round(
        1.0 - batched["messages_sent"] / figures["messages_sent"], 4
    )
    figures["event_reduction"] = round(
        1.0 - batched["events_executed"] / figures["events_executed"], 4
    )
    return figures


def _default_baseline_path() -> Path:
    return Path(__file__).resolve().parents[2] / "benchmarks" / "bench_hotpath_baseline.json"


def check_against_baseline(
    figures: Dict[str, object], baseline_path: Path
) -> Optional[str]:
    """Return an error string when the run regresses beyond tolerance."""
    if not baseline_path.exists():
        return (
            f"baseline {baseline_path} does not exist — run with "
            f"--update-baseline to record one, or --no-check to skip"
        )
    baseline = json.loads(baseline_path.read_text())
    baseline_engine = baseline.get("engine", "single")
    measured_engine = figures.get("engine", "single")
    if baseline_engine != measured_engine:
        return (
            f"baseline {baseline_path} was recorded under engine="
            f"{baseline_engine!r} but this run used engine="
            f"{measured_engine!r} — wall-clock comparisons across engines "
            f"are refused; re-run under the recorded engine or re-record "
            f"with --update-baseline"
        )
    reference = float(baseline.get("events_per_wall_sec", 0.0))
    if reference <= 0:
        return (
            f"baseline {baseline_path} has no positive events_per_wall_sec — "
            f"re-record it with --update-baseline"
        )
    measured = figures["events_per_wall_sec"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    if measured < floor:
        return (
            f"PERF REGRESSION: {measured:.0f} events/wall-s is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the baseline "
            f"{reference:.0f} events/wall-s (floor {floor:.0f}). "
            f"Baseline: {baseline_path}"
        )
    return None


def check_message_reduction(figures: Dict[str, object]) -> Optional[str]:
    """Return an error string when batching saves too few wire messages."""
    reduction = float(figures.get("message_reduction", 0.0))
    if reduction < MIN_MESSAGE_REDUCTION:
        return (
            f"BATCHING REGRESSION: the batched-vote run cut wire messages by "
            f"only {reduction:.1%}, below the required "
            f"{MIN_MESSAGE_REDUCTION:.0%} "
            f"(unbatched {figures['messages_sent']}, "
            f"batched {figures['batched']['messages_sent']})"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the smoke scenarios, write JSON, apply checks."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_hotpath.json",
        help="where to write the result JSON (default: ./BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON to compare against (default: benchmarks/bench_hotpath_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record this run as the new baseline instead of checking against it",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the regression checks (e.g. on an incomparable machine)",
    )
    args = parser.parse_args(argv)

    print(
        f"perf smoke: {SCENARIO['num_nodes']} nodes, "
        f"{SCENARIO['total_rate']:.0f} req/s, {SCENARIO['duration']:.0f}s virtual, "
        f"unbatched + batched ({BATCH_FLUSH_INTERVAL * 1000:.0f} ms flush) ..."
    )
    figures = run_smoke()
    print_figures(figures)

    Path(args.output).write_text(json.dumps(figures, indent=2) + "\n")
    print(f"wrote {args.output}")

    # The reduction check is deterministic (pure message counts), so it
    # applies in every mode — including --no-check and --update-baseline: a
    # baseline that violates the batching floor must never be recorded.
    reduction_error = check_message_reduction(figures)
    if reduction_error is not None:
        print(reduction_error, file=sys.stderr)
        return 1
    print(
        f"batching check ok ({figures['message_reduction']:.1%} fewer wire "
        f"messages, floor {MIN_MESSAGE_REDUCTION:.0%})"
    )

    baseline_path = Path(args.baseline) if args.baseline else _default_baseline_path()
    if args.update_baseline:
        baseline_path.write_text(json.dumps(figures, indent=2) + "\n")
        print(f"updated baseline {baseline_path}")
        return 0
    if not args.no_check:
        error = check_against_baseline(figures, baseline_path)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        print(
            f"regression check ok (baseline {baseline_path.name}, "
            f"tolerance {REGRESSION_TOLERANCE:.0%})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
