"""Replicated-KV cluster launcher (``python -m repro.kv_server``).

Boots a live localhost cluster — one OS process per replica, TCP between
them, fsync'd WAL/snapshot files under ``--data-dir`` — serving the
replicated key-value application, and runs until Ctrl-C (SIGINT) tears
every replica down cleanly.  Data directories persist across launches:
re-running over the same ``--data-dir`` routes every node through the
WAL/snapshot recovery pipeline, so a cluster can be stopped and resumed.

The client side is ``python -m repro.kv_client`` (or the installed
``repro-kv-client`` script); its ``--nodes``/``--protocol``/``--seed``
must match this launcher's so the signature keys and quorum sizes line
up.

Example::

    PYTHONPATH=src python -m repro.kv_server --nodes 4 --data-dir /tmp/kv &
    PYTHONPATH=src python -m repro.kv_client put greeting hello
    PYTHONPATH=src python -m repro.kv_client get greeting
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core.config import ISSConfig, SUPPORTED_PROTOCOLS, PROTOCOL_PBFT
from .net.deploy import (
    LiveClusterSpec,
    LiveDeployment,
    live_base_port,
    live_host,
)
from .storage.durable import FSYNC_POLICIES, fsync_policy

#: Client ids the replicas accept by default (``--max-clients``).
DEFAULT_MAX_CLIENTS = 8


def build_spec(args: argparse.Namespace) -> LiveClusterSpec:
    """Translate parsed CLI arguments into the cluster spec."""
    config = ISSConfig(
        num_nodes=args.nodes,
        protocol=args.protocol,
        random_seed=args.seed,
        client_retry_timeout=0.5,
        client_retry_max_timeout=4.0,
    )
    return LiveClusterSpec(
        config=config,
        data_dir=args.data_dir,
        base_port=args.base_port,
        host=args.host,
        client_ids=tuple(range(args.max_clients)),
        batch_flush_interval=args.flush_interval,
        fsync=args.fsync,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: boot the cluster, run until interrupted."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=4, help="replica count")
    parser.add_argument(
        "--protocol", choices=sorted(SUPPORTED_PROTOCOLS), default=PROTOCOL_PBFT
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="deployment seed (keys, protocol rng)"
    )
    parser.add_argument(
        "--data-dir", default="./kv-data", help="durable storage root"
    )
    parser.add_argument(
        "--base-port",
        type=int,
        default=live_base_port(),
        help="node 0's TCP port; node i listens on base+i",
    )
    parser.add_argument("--host", default=live_host(), help="bind address")
    parser.add_argument(
        "--max-clients",
        type=int,
        default=DEFAULT_MAX_CLIENTS,
        help="client ids 0..N-1 the replicas accept",
    )
    parser.add_argument(
        "--fsync",
        choices=sorted(FSYNC_POLICIES),
        default=fsync_policy(),
        help="storage sync policy (default honours REPRO_FSYNC)",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=0.0,
        help="wire-batching flush tick in seconds (0 = off)",
    )
    args = parser.parse_args(argv)

    spec = build_spec(args)
    deployment = LiveDeployment(spec)
    print(
        f"starting {args.nodes} {args.protocol} nodes on "
        f"{args.host}:{args.base_port}-{args.base_port + args.nodes - 1}, "
        f"data under {args.data_dir} ..."
    )
    deployment.start()
    print("cluster ready; Ctrl-C to stop")
    try:
        while True:
            time.sleep(1.0)
            for node_id in range(args.nodes):
                if not deployment.alive(node_id):
                    print(f"node {node_id} exited unexpectedly", file=sys.stderr)
                    deployment.stop()
                    return 1
    except KeyboardInterrupt:
        print("stopping ...")
    finally:
        deployment.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
