"""Pure-data fault specifications shared by every backend.

The fault-spec family describes *what* goes wrong — which node crashes and
when, who straggles, who is actively Byzantine, which client misbehaves,
which membership change is scheduled.  The specs are plain frozen
dataclasses with no scheduling behaviour, so they live on the runtime side
of the node/transport boundary: protocol code honours them directly
(:class:`~repro.core.iss.ISSNode` implements :class:`StragglerSpec` delays
and :class:`ByzantineSpec` censorship itself), while *applying* them to a
running deployment is backend business — the simulator's
:class:`~repro.sim.faults.FaultInjector` schedules crashes, restarts,
adversaries and partitions in virtual time.

Two kinds of faults matter for the paper's evaluation (Section 6.4):

* **Crash faults** — a node stops participating entirely.  The evaluation
  distinguishes *epoch-start* crashes (the leader dies right when an epoch
  begins, a worst case for the number of proposed sequence numbers) and
  *epoch-end* crashes (the leader dies just before proposing its last
  sequence number, a worst case for epoch duration).
* **Byzantine stragglers** — a leader delays its proposals as much as
  possible without getting suspected and proposes empty batches, harming
  latency and throughput without triggering the failure detector.

Beyond those, :class:`ByzantineSpec` describes an *actively malicious*
node, :class:`MaliciousClientSpec` a misbehaving end user (Section 3.7's
threat model), :class:`RestartSpec` brings a crashed node back, and
:class:`MembershipSpec` schedules dynamic reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

# The primitive id aliases, duplicated from repro.core.types: runtime is
# the bottom layer and must not import upward into core (core imports
# from here, and an upward import closes a cycle when this module is the
# interpreter's entry point into the package).
NodeId = int
ClientId = int
EpochNr = int
BucketId = int

#: Crash trigger positions used by the evaluation.
CRASH_AT_TIME = "at-time"
CRASH_EPOCH_START = "epoch-start"
CRASH_EPOCH_END = "epoch-end"

#: Byzantine behaviours (see :class:`ByzantineSpec`).
BYZ_EQUIVOCATE = "equivocate"
BYZ_CENSOR = "censor"
BYZ_INVALID_VOTES = "invalid-votes"
BYZ_REPLAY = "replay"

BYZANTINE_BEHAVIOURS = (BYZ_EQUIVOCATE, BYZ_CENSOR, BYZ_INVALID_VOTES, BYZ_REPLAY)

#: Malicious-client behaviours (see :class:`MaliciousClientSpec`).
CLIENT_WATERMARK_ABUSE = "watermark-abuse"
CLIENT_DUPLICATE_FLOOD = "duplicate-flood"
CLIENT_BUCKET_BIAS = "bucket-bias"
CLIENT_FORGED_SIGNATURE = "forged-signature"

MALICIOUS_CLIENT_BEHAVIOURS = (
    CLIENT_WATERMARK_ABUSE,
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_BUCKET_BIAS,
    CLIENT_FORGED_SIGNATURE,
)

#: Membership-change actions (see :class:`MembershipSpec`).
MEMBER_ADD = "add"
MEMBER_REMOVE = "remove"
MEMBER_EVICT_DETECTED = "evict-detected"

MEMBERSHIP_ACTIONS = (MEMBER_ADD, MEMBER_REMOVE, MEMBER_EVICT_DETECTED)


@dataclass(frozen=True)
class CrashSpec:
    """Description of a single crash fault.

    ``trigger`` selects how the crash is anchored:

    * ``"at-time"`` — crash at absolute virtual time ``time``.
    * ``"epoch-start"`` — crash as soon as ``epoch`` starts at the victim.
    * ``"epoch-end"`` — crash right before the victim proposes the last
      sequence number of its segment in ``epoch``.
    """

    node: NodeId
    trigger: str = CRASH_AT_TIME
    time: float = 0.0
    epoch: EpochNr = 0

    def __post_init__(self) -> None:
        if self.trigger not in (CRASH_AT_TIME, CRASH_EPOCH_START, CRASH_EPOCH_END):
            raise ValueError(f"unknown crash trigger {self.trigger!r}")


@dataclass(frozen=True)
class RestartSpec:
    """Bring a crashed node back at absolute virtual time ``time``.

    The victim must have crashed (via a :class:`CrashSpec`) before
    ``time``; restarting a node that never crashed is a no-op.  Recovery
    itself — WAL replay, snapshot load, state transfer — is performed by
    the harness through :attr:`FaultInjector.on_restart`.
    """

    node: NodeId
    time: float


@dataclass(frozen=True)
class StragglerSpec:
    """Description of a Byzantine straggler.

    The straggler delays every proposal by ``delay`` seconds (the paper uses
    0.5x the epoch-change timeout, i.e. 5 s) and proposes empty batches.
    """

    node: NodeId
    #: Delay before each proposal; the paper's straggler sends an empty
    #: proposal every 0.5 * epoch_change_timeout.
    delay: float = 5.0
    #: Whether the straggler strips all requests from its proposals.
    propose_empty: bool = True


@dataclass(frozen=True)
class ByzantineSpec:
    """Description of one actively Byzantine node.

    ``behaviour`` selects the attack:

    * ``"equivocate"`` — as a segment leader, send *conflicting* proposals
      to different peers (a valid batch to one half, a valid-but-different
      batch to the other), attacking SB Agreement.
    * ``"censor"`` — as a segment leader, silently exclude the requests of
      ``buckets`` from every batch it cuts (the censorship attack bucket
      rotation defends against, Section 3.2).
    * ``"invalid-votes"`` — corrupt every outgoing vote: checkpoint
      signatures, HotStuff partial signatures and PBFT vote digests are
      forged, so correct nodes must reject them.
    * ``"replay"`` — send every protocol message ``replay_factor`` times
      (duplicate/replay flooding; receivers' idempotence must absorb it).

    Equivocation and forged votes target the BFT protocols; Raft is CFT
    and makes no integrity promises against them (the scenarios only pair
    Raft with the censorship and replay behaviours).
    """

    node: NodeId
    behaviour: str = BYZ_EQUIVOCATE
    #: Virtual time at which the node turns Byzantine (0 = from the start).
    start_time: float = 0.0
    #: Buckets censored by the ``"censor"`` behaviour (ignored otherwise).
    buckets: Tuple[BucketId, ...] = ()
    #: Copies of each message sent by the ``"replay"`` behaviour.
    replay_factor: int = 3

    def __post_init__(self) -> None:
        if self.behaviour not in BYZANTINE_BEHAVIOURS:
            raise ValueError(f"unknown Byzantine behaviour {self.behaviour!r}")
        if self.behaviour == BYZ_CENSOR and not self.buckets:
            raise ValueError("censor behaviour requires at least one bucket")
        if self.behaviour == BYZ_REPLAY and self.replay_factor < 2:
            raise ValueError("replay_factor must be >= 2")


@dataclass(frozen=True)
class MaliciousClientSpec:
    """Description of one misbehaving client process (Section 3.7 threat
    model: the SMR service must tolerate abusive end users, not just faulty
    replicas).

    ``behaviour`` selects the attack:

    * ``"watermark-abuse"`` — alternate between timestamps far beyond the
      watermark window (every node must reject them) and deliberately
      skipped timestamps, so the contiguous-prefix low watermark never
      advances and the abuser eventually wedges *itself* out of the window.
    * ``"duplicate-flood"`` — submit each request ``flood_factor`` times to
      every node, and re-submit already-delivered requests; bucket-queue /
      delivered-filter idempotence must absorb the flood.
    * ``"bucket-bias"`` — craft request ids (by skipping timestamps) that
      all map to ``target_bucket``, attempting to overload one bucket; the
      payload-excluded ``c||t`` hash plus the watermark window bound the
      damage to at most ``window`` requests before the abuser wedges.
    * ``"forged-signature"`` — claim ``victim``'s identity on requests
      signed with the abuser's own key (a stolen-identity attempt); the
      signature check must reject every one.  Rejections are attributed to
      the *claimed* identity — the only one nodes can observe.  Only
      meaningful when the deployment signs client requests
      (``ISSConfig.client_signatures``); in a signature-free CFT
      configuration identity forgery is trivially possible and outside the
      fault model, so the scenarios skip the pairing.
    """

    client: ClientId
    behaviour: str = CLIENT_WATERMARK_ABUSE
    #: Virtual time at which the client turns abusive (0 = from the start;
    #: before that it behaves like a correct client).
    start_time: float = 0.0
    #: ``"watermark-abuse"``: how far beyond the window the far-out
    #: timestamps jump.
    jump: int = 1_000_000
    #: ``"duplicate-flood"``: copies of each request sent to every node.
    flood_factor: int = 3
    #: ``"bucket-bias"``: the bucket the crafted ids try to overload.
    target_bucket: BucketId = 0
    #: ``"forged-signature"``: the client identity the forgeries claim
    #: (required for that behaviour).
    victim: Optional[ClientId] = None

    def __post_init__(self) -> None:
        if self.behaviour not in MALICIOUS_CLIENT_BEHAVIOURS:
            raise ValueError(f"unknown malicious-client behaviour {self.behaviour!r}")
        if self.behaviour == CLIENT_DUPLICATE_FLOOD and self.flood_factor < 2:
            raise ValueError("flood_factor must be >= 2")
        if self.behaviour == CLIENT_FORGED_SIGNATURE:
            if self.victim is None:
                raise ValueError("forged-signature behaviour requires a victim")
            if self.victim == self.client:
                raise ValueError("forging one's own identity is just signing")
        if self.jump < 1:
            raise ValueError("jump must be >= 1")


@dataclass(frozen=True)
class MembershipSpec:
    """One scheduled membership change (dynamic reconfiguration).

    ``action`` selects the change:

    * ``"add"`` — at virtual time ``time`` the deployment's admin client
      submits a ConfigTx adding replica ``node``; once the transaction
      commits and its epoch seals, the new replica boots and catches up
      via snapshot apply → WAL replay → state transfer (the same path a
      restarted node takes).
    * ``"remove"`` — ditto for removing ``node``; the replica is quiesced
      at the activation boundary (its in-flight SB instances have all
      delivered by then — epochs finish strictly sequentially).
    * ``"evict-detected"`` — Byzantine-eviction wiring: from ``time`` on,
      the harness watches the (log-derived, hence identical-at-all-nodes)
      failure history, and as soon as replica ``node`` is implicated it
      submits the removal ConfigTx.  Pairs with a :class:`ByzantineSpec`
      for the same node to close the detect→evict loop.

    A rolling upgrade of the whole cluster is just ``remove`` + ``add``
    per node, staggered in time.
    """

    node: NodeId
    action: str = MEMBER_ADD
    #: Submission time of the ConfigTx (``"evict-detected"``: time from
    #: which the detection watch is armed).
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in MEMBERSHIP_ACTIONS:
            raise ValueError(f"unknown membership action {self.action!r}")
        if self.node < 0:
            raise ValueError("membership node ids are non-negative")
        if self.time < 0:
            raise ValueError("membership times are non-negative")
