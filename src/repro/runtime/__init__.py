"""Transport-agnostic runtime boundary between protocols and backends.

This package defines the *narrow* interface an ISS node (and every protocol
underneath it — PBFT, HotStuff, Raft, the reference SB-from-consensus) needs
from its execution environment, plus the environment-independent pieces of
the wire layer that used to live inside the simulator package:

* :mod:`repro.runtime.api` — the :class:`Scheduler` / :class:`Timer` /
  :class:`Transport` protocols both backends implement (the discrete-event
  :class:`~repro.sim.simulator.Simulator` + :class:`~repro.sim.network.Network`
  pair for deterministic CI, and the wall-clock asyncio/TCP backend in
  :mod:`repro.net` for live deployments),
* :mod:`repro.runtime.wire` — wire-size estimation and cross-protocol
  small-message batching (pure message-level logic, usable over any
  scheduler), and
* :mod:`repro.runtime.faults` — the pure-data fault specification
  dataclasses (crash, restart, straggler, Byzantine, malicious client,
  membership change) consumed by both the simulator's fault injector and
  the protocol code that honours them.

The layering contract — enforced by ``tests/test_layering.py`` — is that
nothing under ``core/``, ``pbft/``, ``hotstuff/``, ``raft/``, ``consensus/``
or ``fd/`` may import (even transitively) from ``repro.sim``; everything
those layers need from their environment comes from here.
"""

from .api import FaultNotifier, Scheduler, Timer, Transport
from .faults import (
    ByzantineSpec,
    CrashSpec,
    MaliciousClientSpec,
    MembershipSpec,
    RestartSpec,
    StragglerSpec,
)
from .wire import (
    BATCH_HEADER_BYTES,
    MessageBatcher,
    MessageBatchMsg,
    is_batchable,
    register_batchable,
    wire_size,
)

__all__ = [
    "FaultNotifier",
    "Scheduler",
    "Timer",
    "Transport",
    "ByzantineSpec",
    "CrashSpec",
    "MaliciousClientSpec",
    "MembershipSpec",
    "RestartSpec",
    "StragglerSpec",
    "BATCH_HEADER_BYTES",
    "MessageBatcher",
    "MessageBatchMsg",
    "is_batchable",
    "register_batchable",
    "wire_size",
]
