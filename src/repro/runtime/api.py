"""The narrow environment interface ISS protocols run against.

Every protocol module (the ISS node, its SB implementations, the failure
detector, clients) talks to its environment exclusively through three small
duck-typed surfaces:

* :class:`Scheduler` — a clock plus one-shot callback scheduling.  The
  discrete-event :class:`~repro.sim.simulator.Simulator` implements it over
  virtual time; :class:`~repro.net.clock.WallClock` implements it over an
  asyncio event loop and real seconds.
* :class:`Timer` — the cancellable/reschedulable handle :meth:`Scheduler.
  schedule` returns (protocol timeouts, pacers, heartbeats).
* :class:`Transport` — endpoint registration plus point-to-point send.
  The simulator's :class:`~repro.sim.network.Network` models NIC/latency;
  :class:`~repro.net.transport.TcpTransport` moves real bytes over TCP.

These are :class:`typing.Protocol` classes: backends satisfy them
structurally, nothing subclasses anything, and — crucially for the layering
contract enforced by ``tests/test_layering.py`` — protocol code can annotate
against them without importing any backend package.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Timer(Protocol):
    """Handle for a scheduled callback; cancellable and reschedulable."""

    @property
    def fire_time(self) -> float:
        """Absolute time (scheduler clock) at which the callback fires."""
        ...

    @property
    def active(self) -> bool:
        """True while the callback is still going to run."""
        ...

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        ...

    def reset(self, delay: float) -> "Timer":
        """Cancel and re-arm the same callback ``delay`` from now."""
        ...


@runtime_checkable
class Scheduler(Protocol):
    """A clock plus one-shot callback scheduling (the node's event loop).

    ``rng`` is part of the surface because protocol code draws jitter and
    backoff randomness from the environment's seeded source — the simulator
    pins it for determinism, the wall-clock backend seeds it per process.
    """

    rng: Any

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""
        ...

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` once, ``delay`` seconds from now; returns a handle."""
        ...

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Absolute-time variant of :meth:`schedule`."""
        ...

    def call_soon(self, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` as soon as possible (after pending work)."""
        ...

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget fast path: no handle, not cancellable."""
        ...

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_callback`."""
        ...


#: A message handler registered by an endpoint: ``handler(src, message)``.
MessageHandler = Callable[[int, object], None]


@runtime_checkable
class Transport(Protocol):
    """Point-to-point authenticated-channel message transport.

    Endpoints are integers: node ids, plus client endpoints offset by
    :data:`~repro.core.messages.CLIENT_ENDPOINT_OFFSET`.  ``send`` returns
    immediately; delivery is asynchronous and may silently fail (crashed
    peer, partition, connection loss) — exactly the unreliable-channel
    contract the protocols are built to tolerate.
    """

    def register(self, endpoint: int, handler: MessageHandler) -> None:
        """Attach ``handler`` for messages addressed to ``endpoint``."""
        ...

    def unregister(self, endpoint: int) -> None:
        """Detach ``endpoint``'s handler; undelivered messages drop."""
        ...

    def send(
        self,
        src: int,
        dst: int,
        message: object,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Send ``message`` from ``src`` to ``dst`` (fire and forget)."""
        ...

    def multicast(self, src: int, dsts: Iterable[int], message: object) -> None:
        """Send the same message to every destination."""
        ...


@runtime_checkable
class FaultNotifier(Protocol):
    """The two callbacks an ISS node owes a fault injector, if it has one.

    Kept as a protocol so ``core/iss.py`` can accept the simulator's
    :class:`~repro.sim.faults.FaultInjector` without importing it; a live
    deployment simply passes ``None``.
    """

    def notify_epoch_start(self, node: int, epoch: int) -> None:
        """The node entered ``epoch`` (epoch-start crash triggers)."""
        ...

    def notify_last_proposal(self, node: int, epoch: int) -> bool:
        """About to cut the segment's last batch; True = crash instead."""
        ...
