"""Wire-size estimation and cross-protocol small-message batching.

This is the transport-independent half of the wire layer.  It knows nothing
about NICs, latency models or sockets — only about *messages*: how big one
claims to be on the wire, which types are safe to coalesce, and how to
buffer and flush coalesced frames against any :class:`~repro.runtime.api.
Scheduler` (the discrete-event simulator and the wall-clock backend both
qualify; :class:`MessageBatcher` touches nothing beyond ``now`` and
``schedule_callback_at``).

At scale, the dominant cost is no longer *what* the protocols compute but
*how many* wire messages they exchange: every protocol vote (PBFT
PREPARE/COMMIT, HotStuff votes, Raft append-entries replies, BRB echoes),
every client request and every aggregated client acknowledgement pays one
serialisation, one latency sample and one delivery event.  Real deployments
do not send these tiny messages individually either — transports coalesce
them (Nagle-style) into larger frames:

* message types opt in through :func:`register_batchable` (votes and other
  small, latency-tolerant messages; proposals and payload-carrying messages
  stay unbatched);
* :class:`MessageBatcher` coalesces opted-in messages per ``(sender,
  receiver, flush tick)`` into a single :class:`MessageBatchMsg` on the
  wire, where flush ticks are clock windows of ``flush_interval`` seconds;
* the receiving transport endpoint unpacks the batch and hands every
  payload to the registered handler individually and in send order, so
  per-vote delivery semantics are unchanged — only the arrival *times*
  quantise to tick boundaries.

Batching is off by default (``NetworkConfig.batch_flush_interval = 0``); the
perf-smoke batched scenario and the figure benchmarks enable it.  Everything
here is deterministic: buffers flush at fixed tick boundaries through the
scheduler's ordered callback path, so same-seed simulator runs produce
identical schedules (pinned by the batched golden trace in
``tests/test_batching.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .api import Scheduler

#: Wire-size strategies, resolved once per message type (see :func:`wire_size`).
_SIZE_WIRE, _SIZE_BYTES, _SIZE_DEFAULT = 0, 1, 2
_SIZE_KIND_BY_TYPE: Dict[type, int] = {}


def wire_size(message: object) -> int:
    """Best-effort estimate of a message's wire size in bytes.

    Protocol messages expose ``wire_size()``; payload-carrying objects expose
    ``size_bytes()``.  Anything else is charged a small fixed header, which
    matches the digest-sized votes most protocols exchange.  The accessor
    choice is cached per message type so the common path costs one dict hit.
    """
    cls = message.__class__
    kind = _SIZE_KIND_BY_TYPE.get(cls)
    if kind is None:
        if callable(getattr(cls, "wire_size", None)):
            kind = _SIZE_WIRE
        elif callable(getattr(cls, "size_bytes", None)):
            kind = _SIZE_BYTES
        else:
            kind = _SIZE_DEFAULT
        _SIZE_KIND_BY_TYPE[cls] = kind
    if kind == _SIZE_WIRE:
        return int(message.wire_size())
    if kind == _SIZE_BYTES:
        return int(message.size_bytes())
    return 96


#: Fixed framing overhead charged per wire batch (length prefix + counts).
BATCH_HEADER_BYTES = 16

#: Registered batchable types: ``True`` (always batchable) or a predicate
#: ``fn(message) -> bool`` for envelope types whose batchability depends on
#: the wrapped payload (e.g. ``InstanceMessage``).
_REGISTRY: Dict[type, object] = {}


def register_batchable(
    cls: type, predicate: Optional[Callable[[object], bool]] = None
) -> type:
    """Mark a message type as safe to coalesce into wire batches.

    Only small, latency-tolerant messages should opt in: votes,
    acknowledgements, requests.  Proposals and other payload-carrying
    messages should stay unbatched so their latency is unaffected.
    ``predicate`` lets envelope types defer the decision to their payload.
    Returns ``cls`` so the call can be used as a class decorator.
    """
    _REGISTRY[cls] = predicate if predicate is not None else True
    return cls


def is_batchable(message: object) -> bool:
    """True when ``message`` may be coalesced into a wire batch."""
    entry = _REGISTRY.get(message.__class__)
    if entry is None:
        return False
    if entry is True:
        return True
    return bool(entry(message))


@dataclass(frozen=True)
class MessageBatchMsg:
    """One wire frame carrying several coalesced protocol messages.

    The payload tuple preserves send order; the receiving network endpoint
    delivers every payload to the destination's handler individually, exactly
    as if each had arrived in its own message at the same instant.  ``size``
    is precomputed by the batcher (header plus the sum of the payloads' wire
    sizes) so the network's cached wire-size accessor stays O(1).
    """

    payloads: Tuple[object, ...]
    size: int

    def wire_size(self) -> int:
        return self.size


class BatcherStats:
    """Counters describing what the batcher did (for tests and reports)."""

    __slots__ = ("payloads_enqueued", "batches_flushed", "singletons_flushed")

    def __init__(self) -> None:
        self.payloads_enqueued = 0
        #: Flushes that produced a multi-payload :class:`MessageBatchMsg`.
        self.batches_flushed = 0
        #: Flushes whose buffer held one message (sent unwrapped).
        self.singletons_flushed = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "payloads_enqueued": self.payloads_enqueued,
            "batches_flushed": self.batches_flushed,
            "singletons_flushed": self.singletons_flushed,
        }


class MessageBatcher:
    """Per-transport aggregator coalescing messages per (src, dst, flush tick).

    The batcher never talks to the transport directly: the host hands it a
    ``send_fn(src, dst, message, size_bytes)`` (the transport's immediate
    send path) and a ``size_fn(message)`` (the wire-size estimator).
    Buffered messages for one link flush together at the next tick boundary
    — clock times that are integer multiples of ``flush_interval`` — through
    the scheduler's callback path.  Only ``sim.now`` and
    ``sim.schedule_callback_at`` are used, so the same batcher runs over the
    deterministic simulator and the wall-clock asyncio backend.
    """

    def __init__(
        self,
        sim: Scheduler,
        flush_interval: float,
        send_fn: Callable[[int, int, object, Optional[int]], None],
        size_fn: Callable[[object], int],
    ):
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.sim = sim
        self.flush_interval = flush_interval
        self._send = send_fn
        self._size = size_fn
        #: Pending payloads per directed link, in first-send order.
        self._buffers: Dict[Tuple[int, int], List[object]] = {}
        #: Running wire-size sum per link, maintained at enqueue time so the
        #: flush loop never re-walks a buffer to size its frame (and lone
        #: messages reuse the size instead of paying ``wire_size`` twice).
        self._buffer_sizes: Dict[Tuple[int, int], int] = {}
        #: Whether the single per-tick flush callback is already scheduled.
        #: One event flushes *all* links at the tick boundary, so the batching
        #: layer adds at most one scheduler event per flush interval.
        self._flush_scheduled = False
        self.stats = BatcherStats()

    # -------------------------------------------------------------- enqueue
    def enqueue(self, src: int, dst: int, message: object) -> None:
        """Buffer ``message`` for the (src, dst) link's next flush tick.

        The payload's wire size is computed here, once, and folded into the
        link's running sum — the flush tick then only reads precomputed
        totals (see ``_buffer_sizes``).
        """
        self.stats.payloads_enqueued += 1
        key = (src, dst)
        buffers = self._buffers
        size = self._size(message)
        buffer = buffers.get(key)
        if buffer is not None:
            buffer.append(message)
            self._buffer_sizes[key] += size
            return
        buffers[key] = [message]
        self._buffer_sizes[key] = size
        if not self._flush_scheduled:
            self._flush_scheduled = True
            interval = self.flush_interval
            # Next tick boundary strictly after `now`: messages enqueued at
            # the boundary itself wait one full interval, everything else
            # less (Δ/2 on average).  Float floor-division can land exactly
            # on `now` (e.g. 0.06 // 0.02 == 2.0), so bump once if it does.
            now = self.sim.now
            tick = (now // interval + 1.0) * interval
            if tick <= now:
                tick += interval
            self.sim.schedule_callback_at(tick, self._flush_tick)

    # ---------------------------------------------------------------- flush
    def _flush_tick(self) -> None:
        """Flush every buffered link (the per-tick scheduler event).

        Links flush in first-send order, which is deterministic; each link's
        payloads keep their send order inside the wire frame.
        """
        self._flush_scheduled = False
        buffers = self._buffers
        if not buffers:
            return
        sizes = self._buffer_sizes
        self._buffers = {}
        self._buffer_sizes = {}
        stats = self.stats
        send = self._send
        for key, buffer in buffers.items():
            src, dst = key
            if len(buffer) == 1:
                # A lone message needs no envelope; it goes out as itself,
                # with the wire size already computed at enqueue time.
                stats.singletons_flushed += 1
                send(src, dst, buffer[0], sizes[key])
                continue
            stats.batches_flushed += 1
            size = BATCH_HEADER_BYTES + sizes[key]
            send(src, dst, MessageBatchMsg(payloads=tuple(buffer), size=size), size)

    def flush_all(self) -> None:
        """Force-flush every pending buffer immediately (drain helper)."""
        self._flush_tick()

    def pending_payloads(self) -> int:
        """Messages currently buffered and awaiting their flush tick."""
        return sum(len(buffer) for buffer in self._buffers.values())
