"""Baselines: single-leader protocol deployments and Mir-BFT."""

from .single_leader import FixedLeaderPolicy, single_leader_config, single_leader_policy
from .mirbft import MirBFTNode, NewEpochMsg

__all__ = [
    "FixedLeaderPolicy",
    "single_leader_config",
    "single_leader_policy",
    "MirBFTNode",
    "NewEpochMsg",
]
