"""Mir-BFT baseline (Figure 10 comparison).

Mir-BFT [36] is the multi-leader predecessor of ISS.  Two behavioural
differences matter for the paper's comparison and are reproduced here:

1. **Stop-the-world epoch changes.**  Mir's epoch transitions are driven by a
   designated *epoch primary*: after an epoch's sequence numbers commit, the
   next epoch only starts once the new primary's NEW-EPOCH message arrives,
   and no segment of the new epoch makes progress in the meantime.  ISS, in
   contrast, derives the next epoch's configuration deterministically from
   the log and starts it immediately.

2. **Recurring ungraceful epoch changes.**  The epoch primary rotates
   round-robin over *all* nodes.  Whenever a crashed node's turn as primary
   comes up, the epoch change times out (an *ungraceful* epoch change) and
   the system stalls for the epoch-change timeout — periodically, forever —
   whereas ISS's leader-selection policy only pays once.

Everything else (PBFT ordering, buckets, batching) is shared with the ISS
implementation, which mirrors the fact that ISS and Mir share the request
partitioning design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.iss import ISSNode
from ..core.types import EpochNr, NodeId
from ..runtime.api import Timer


@dataclass(frozen=True)
class NewEpochMsg:
    """Epoch primary's announcement that the next epoch may start."""

    epoch: EpochNr
    primary: NodeId

    def wire_size(self) -> int:
        return 48


class MirBFTNode(ISSNode):
    """A Mir-BFT replica: ISS machinery plus primary-driven epoch changes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Epochs whose NEW-EPOCH message we already received, by primary.
        self._new_epoch_received: Set[EpochNr] = set()
        #: Epochs we finished locally but have not been allowed to leave yet.
        self._awaiting_new_epoch: Optional[EpochNr] = None
        self._epoch_change_timer: Optional[Timer] = None
        self.ungraceful_epoch_changes = 0
        self.graceful_epoch_changes = 0

    # ------------------------------------------------------------ primaries
    def epoch_primary(self, epoch: EpochNr) -> NodeId:
        """The epoch primary rotates round-robin over all nodes."""
        return epoch % self.config.num_nodes

    # ----------------------------------------------------- epoch transitions
    def _after_commit(self) -> None:  # overrides ISSNode
        delivered = self.log.advance_delivery(self.sim.now)
        if delivered and self.tracer is not None:
            self.tracer.on_deliver_batch(self.sim.now, self.node_id, delivered)
        for item in delivered:
            self._send_client_response(item.request.rid, item.sn)
            if self.on_deliver is not None:
                self.on_deliver(self.node_id, item)
        while (
            not self.crashed
            and self._awaiting_new_epoch is None
            and self.manager.epoch_complete(self.current_epoch, self.log)
        ):
            finished = self.current_epoch
            self.manager.finish_epoch(finished, self.log)
            self.checkpoints.local_epoch_complete(finished, self.log)
            self.watermarks.advance_epoch()
            self.epochs_completed += 1
            next_epoch = finished + 1
            # Primary of the *next* epoch announces it; everybody else waits
            # (stop-the-world) for the announcement or the timeout.
            if self.epoch_primary(next_epoch) == self.node_id:
                self._broadcast_to_nodes(NewEpochMsg(epoch=next_epoch, primary=self.node_id))
            if next_epoch in self._new_epoch_received:
                self.graceful_epoch_changes += 1
                self._start_epoch(next_epoch)
                continue
            self._awaiting_new_epoch = next_epoch
            self._epoch_change_timer = self.sim.schedule(
                self.config.epoch_change_timeout,
                lambda e=next_epoch: self._on_epoch_change_timeout(e),
            )
            break

    def _on_epoch_change_timeout(self, epoch: EpochNr) -> None:
        """Ungraceful epoch change: proceed without the (crashed) primary."""
        if self.crashed or self._awaiting_new_epoch != epoch:
            return
        self.ungraceful_epoch_changes += 1
        self._awaiting_new_epoch = None
        self._start_epoch(epoch)
        self._after_commit()

    # -------------------------------------------------------------- messages
    def on_message(self, src: NodeId, message: object) -> None:  # overrides
        if isinstance(message, NewEpochMsg):
            if self.crashed:
                return
            if src != self.epoch_primary(message.epoch) or src != message.primary:
                return
            self._new_epoch_received.add(message.epoch)
            if self._awaiting_new_epoch == message.epoch:
                if self._epoch_change_timer is not None:
                    self._epoch_change_timer.cancel()
                self.graceful_epoch_changes += 1
                self._awaiting_new_epoch = None
                self._start_epoch(message.epoch)
                self._after_commit()
            return
        super().on_message(src, message)
