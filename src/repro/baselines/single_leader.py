"""Single-leader baselines (the original PBFT / HotStuff / Raft deployments).

The evaluation (Figure 5/6) compares ISS against the respective single-leader
protocols.  As documented in DESIGN.md §4, this repository obtains those
baselines by deploying the *same* protocol engines with a single, fixed
leader over the whole log: node 0 leads a single segment per epoch and owns
every bucket, so every batch flows through its network interface — the exact
bottleneck that caps single-leader throughput at roughly ``1/n``.

Using the identical engines isolates the one variable the paper studies
(single leader vs. ISS multiplexing) and removes implementation-quality
noise from the comparison.
"""

from __future__ import annotations

from typing import List

from ..core.config import ISSConfig, paper_config
from ..core.leader_policy import FailureHistory, LeaderSelectionPolicy
from ..core.types import EpochNr, NodeId


class FixedLeaderPolicy(LeaderSelectionPolicy):
    """Leader-selection policy that always returns the same single leader.

    With one leader per epoch there is exactly one segment spanning the whole
    epoch and the bucket re-assignment degenerates to "everything belongs to
    the leader", which is precisely the original single-leader protocol's
    behaviour.
    """

    def __init__(self, num_nodes: int, max_faulty: int, leader: NodeId = 0):
        super().__init__(num_nodes, max_faulty)
        if not 0 <= leader < num_nodes:
            raise ValueError("leader out of range")
        self.leader = leader

    @property
    def name(self) -> str:
        return f"fixed-leader-{self.leader}"

    def leaders(self, epoch: EpochNr, history: FailureHistory) -> List[NodeId]:
        return [self.leader]


def single_leader_config(protocol: str, num_nodes: int, **overrides) -> ISSConfig:
    """Configuration for the single-leader baseline of ``protocol``.

    Differences from the ISS configuration (Table 1):

    * no deployment-wide batch rate — the lone leader proposes as fast as its
      batch timeouts allow, exactly like the stock protocol, so its NIC (not
      an artificial rate limit) is what saturates;
    * the minimum segment size constraint is irrelevant (one segment).
    """
    overrides.setdefault("batch_rate", None)
    overrides.setdefault("min_segment_size", 1)
    return paper_config(protocol, num_nodes, **overrides)


def single_leader_policy(config: ISSConfig, leader: NodeId = 0) -> FixedLeaderPolicy:
    """The fixed-leader policy matching :func:`single_leader_config`."""
    return FixedLeaderPolicy(config.num_nodes, config.max_faulty, leader=leader)
