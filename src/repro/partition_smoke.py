"""Network-chaos smoke test (``python -m repro.partition_smoke``).

Runs the pinned partition scenario — 4 PBFT nodes over the scaled WAN with
wire batching on, node 3 cut off from the majority between t=3 and t=9
while the 2→1 link drops 20 % of its payloads for the whole run (riding a
reliable transport: lost payloads are re-offered after 0.5 s, so loss
degrades latency, never correctness) — with the graceful-degradation
machinery armed (client retry/backoff, jittered view-change timers,
heal-triggered state-transfer catch-up, stalled-epoch grace), and checks
the partition-tolerance claims end to end:

* **liveness through retries**: every client's requests complete — the
  ones aimed at the unreachable leader recover via the retry loop and
  epoch-driven resubmission, not luck,
* **safety**: all nodes deliver identical request sequences over every
  shared position, with no request delivered twice,
* **reconvergence**: the minority node is detected as a laggard at heal
  time and reaches the cluster frontier via state transfer
  (``time_to_reconverge`` recorded, no epoch-timer wait),
* **payload-accurate accounting**: partition and link-fault drops are
  counted per payload (wire batching cannot hide them), and the minority
  side's backed-off timers keep the view-change count during the
  partition small,
* **determinism**: the delivered-sequence digest, the drop/retry counters
  and the simulator/network totals must match the golden trace in
  ``tests/data/golden_trace_partition.json`` bit for bit — a partitioned
  schedule is still a seeded schedule.

Exit code 1 on any violation; wired into ``make partition-smoke`` and the
CI driver (``benchmarks/run_perf_smoke.py``).  On success the figures are
also written to ``BENCH_partition_heal.json`` in the repository root so the
partition-resilience trajectory is tracked across PRs.  Pass
``--update-golden`` after an intentional schedule-affecting change.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Dict, Optional

from . import golden, smokelib
from .core.config import NetworkConfig, WorkloadConfig, PROTOCOL_PBFT
from .core.state_transfer import DEFAULT_PROBE_STAGGER
from .core.types import Batch
from .harness.runner import Deployment
from .harness.scenarios import (
    DEFAULT_FLUSH_INTERVAL,
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    iss_config,
    prefixes_identical,
)
from .harness.runner import DEFAULT_RECOVERY_POLL_INTERVAL
from .obs import ObsConfig
from .sim.chaos import LinkFaultSpec
from .workload.faults import minority_partition

#: The pinned partition scenario (keep in sync with the golden trace).
SCENARIO = dict(
    protocol=PROTOCOL_PBFT,
    num_nodes=4,
    random_seed=23,
    num_clients=8,
    total_rate=400.0,
    duration=15.0,
    partition_start=3.0,
    partition_heal=9.0,
    isolated_node=3,
    lossy_src=2,
    lossy_dst=1,
    loss_rate=0.2,
    lossy_retransmit=0.5,
    client_retry_timeout=2.0,
    view_change_jitter=0.1,
    stalled_catchup_grace=2.0,
    vc_recovery=True,
)


def golden_path() -> Path:
    """Location of the partition-determinism golden trace."""
    return smokelib.golden_data_path("golden_trace_partition.json")


def bench_output_path() -> Path:
    """Location of the ``BENCH_partition_heal.json`` artefact (repo root)."""
    return smokelib.bench_output_path("BENCH_partition_heal.json")


def build_deployment() -> Deployment:
    """Build the pinned scenario (all env-movable knobs set explicitly)."""
    config = iss_config(
        SCENARIO["protocol"],
        SCENARIO["num_nodes"],
        random_seed=SCENARIO["random_seed"],
        send_client_responses=True,
        client_retry_timeout=SCENARIO["client_retry_timeout"],
        client_retry_backoff=2.0,
        client_retry_max_timeout=8.0,
        client_retry_jitter=0.1,
        view_change_jitter=SCENARIO["view_change_jitter"],
        stalled_catchup_grace=SCENARIO["stalled_catchup_grace"],
        vc_recovery=SCENARIO["vc_recovery"],
    )
    network_config = NetworkConfig(
        bandwidth_bps=SCALED_BANDWIDTH_BPS,
        batch_flush_interval=DEFAULT_FLUSH_INTERVAL,
    )
    workload = WorkloadConfig(
        num_clients=SCENARIO["num_clients"],
        total_rate=SCENARIO["total_rate"],
        duration=SCENARIO["duration"],
        payload_size=PAYLOAD_BYTES,
    )
    return Deployment(
        config,
        network_config=network_config,
        workload=workload,
        partition_specs=minority_partition(
            1,
            SCENARIO["num_nodes"],
            SCENARIO["partition_start"],
            SCENARIO["partition_heal"],
        ),
        link_fault_specs=[
            LinkFaultSpec(
                src=SCENARIO["lossy_src"],
                dst=SCENARIO["lossy_dst"],
                loss_rate=SCENARIO["loss_rate"],
                retransmit=SCENARIO["lossy_retransmit"],
                seed=SCENARIO["random_seed"],
            )
        ],
        recovery_poll=DEFAULT_RECOVERY_POLL_INTERVAL,
        probe_stagger=DEFAULT_PROBE_STAGGER,
        drain_time=15.0,
        obs=ObsConfig.disabled(),
    )


def run_smoke() -> Dict[str, object]:
    """Run the scenario once and return the figures the golden trace pins."""
    deployment = build_deployment()
    result = deployment.run()
    report = result.report
    sample = result.nodes[0]
    trace = golden.delivered_trace(sample)
    delivered_rids = [
        request.rid
        for sn in range(sample.log.first_undelivered)
        for entry in [sample.log.entry(sn)]
        if isinstance(entry, Batch)
        for request in entry.requests
    ]
    partitions = report.partitions
    record = partitions["partitions"][0]
    drops = partitions["drops_by_cause"]
    return {
        "scenario": dict(SCENARIO),
        "engine": report.engine,
        "completed": report.completed,
        "all_complete": all(
            c.requests_completed == c.requests_submitted for c in result.clients
        ),
        "prefixes_identical": prefixes_identical(result.nodes),
        "no_double_delivery": len(delivered_rids) == len(set(delivered_rids)),
        "laggards": list(record["laggards"]),
        "time_to_reconverge": record["time_to_reconverge"],
        "view_changes_during": record["view_changes_during"],
        "partition_drops": drops["partition"],
        "link_fault_drops": drops["link-fault"],
        "link_retransmissions": sum(
            f["payloads_retransmitted"] for f in partitions["link_faults"]
        ),
        "client_retries": partitions["client_retries_total"],
        "trace_len": len(trace),
        "trace_sha256": hashlib.sha256(repr(trace).encode()).hexdigest(),
        "events_executed": deployment.sim.events_executed,
        "messages_sent": deployment.network.stats.messages_sent,
    }


#: Figure keys that must match the golden trace exactly.
PINNED_KEYS = (
    "completed",
    "laggards",
    "time_to_reconverge",
    "view_changes_during",
    "partition_drops",
    "link_fault_drops",
    "link_retransmissions",
    "client_retries",
    "trace_len",
    "trace_sha256",
    "events_executed",
    "messages_sent",
)


def check_against_golden(figures: Dict[str, object], path: Path) -> Optional[str]:
    """Return an error string when the run diverges from the golden trace."""
    return golden.check_against_golden(
        figures, path, PINNED_KEYS, "PARTITION DETERMINISM REGRESSION"
    )


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The partition-tolerance claims that must hold regardless of the
    golden trace."""
    if not figures["all_complete"]:
        return (
            "PARTITION LIVENESS VIOLATION: a client's requests did not all "
            "complete through the retry loop after the heal"
        )
    if not figures["prefixes_identical"]:
        return (
            "PARTITION SAFETY VIOLATION: nodes' delivered sequences "
            "diverged across the partition"
        )
    if not figures["no_double_delivery"]:
        return (
            "PARTITION IDEMPOTENCE VIOLATION: a retried request was "
            "delivered twice"
        )
    if SCENARIO["isolated_node"] not in figures["laggards"]:
        return (
            "PARTITION RECOVERY REGRESSION: the isolated node was not "
            "detected as a laggard at heal time"
        )
    if figures["time_to_reconverge"] < 0:
        return (
            "PARTITION RECOVERY REGRESSION: the minority side never "
            "reconverged after the heal"
        )
    if figures["partition_drops"] <= 0:
        return (
            "PARTITION ACCOUNTING REGRESSION: no payload drops were "
            "attributed to the partition (batching hiding drops?)"
        )
    if figures["link_fault_drops"] <= 0:
        return (
            "PARTITION ACCOUNTING REGRESSION: no payload drops were "
            "attributed to the lossy link (batching hiding drops?)"
        )
    if figures["link_retransmissions"] <= 0:
        return (
            "PARTITION TRANSPORT REGRESSION: the lossy link dropped "
            "payloads but the reliable transport never re-offered one"
        )
    if figures["client_retries"] <= 0:
        return (
            "PARTITION RETRY REGRESSION: clients rode out the partition "
            "without a single retry — the retry loop is not running"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the smoke scenario and apply the checks."""
    scenario = SCENARIO
    return smokelib.run_gate(
        argv,
        name="partition",
        description=__doc__.splitlines()[0],
        banner=(
            f"partition smoke: {scenario['num_nodes']} {scenario['protocol']} nodes, "
            f"node {scenario['isolated_node']} cut off "
            f"t=[{scenario['partition_start']:.0f}, {scenario['partition_heal']:.0f}), "
            f"lossy link {scenario['lossy_src']}→{scenario['lossy_dst']} "
            f"({scenario['loss_rate']:.0%}), {scenario['duration']:.0f}s virtual ..."
        ),
        run_smoke=run_smoke,
        golden_path=golden_path(),
        pinned_keys=PINNED_KEYS,
        regression_label="PARTITION DETERMINISM REGRESSION",
        semantic_violations=semantic_violations,
        bench_path=bench_output_path(),
        bench_source="partition_smoke",
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
