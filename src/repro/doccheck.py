"""Documentation health checks (``python -m repro.doccheck``).

Two checks keep the project docs trustworthy:

* **Docstring audit** — every public module under the ``repro`` package, and
  every public class and function defined in one, must carry a docstring.
  New subsystems cannot land undocumented, which is how the README and
  ARCHITECTURE docs stay honest.
* **Snippet executability** — every ``python`` code block in ``README.md``
  *and* in the scenario catalog ``docs/SCENARIOS.md`` must actually run.
  Quickstart snippets that rot are worse than none, and the scenario
  catalog promises one runnable snippet per fault/adversary spec.

Run both from the repository root::

    PYTHONPATH=src python -m repro.doccheck          # or: make docs-check

The module exits non-zero on any violation and is wired into
``benchmarks/run_perf_smoke.py`` so the CI perf gate also fails when the
docs regress; ``tests/test_docstrings.py`` asserts the same invariants
inside the tier-1 suite.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import Iterable, List


def iter_public_module_names(package_name: str = "repro") -> List[str]:
    """Names of ``package_name`` and every public (sub)module inside it."""
    package = importlib.import_module(package_name)
    names = [package_name]
    for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        names.append(info.name)
    return sorted(names)


def _has_real_docstring(member) -> bool:
    """Whether ``member`` carries a docstring a human wrote.

    ``@dataclass`` auto-generates ``__doc__`` (the class name plus its
    ``__init__`` signature) for undocumented classes, which would make the
    audit a no-op for exactly the message dataclasses it most needs to
    police — treat that auto-text as missing.
    """
    doc = inspect.getdoc(member)
    if not doc:
        return False
    if inspect.isclass(member) and dataclasses.is_dataclass(member):
        try:
            # dataclasses generates name + signature with "-> None" stripped.
            auto = member.__name__ + str(inspect.signature(member)).replace(
                " -> None", ""
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic signatures
            auto = None
        if doc == auto:
            return False
    return True


def _missing_member_docstrings(module) -> Iterable[str]:
    """Yield ``Class``/``function`` members of ``module`` lacking docstrings."""
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        # Only police members *defined* here, not re-exports.
        if getattr(member, "__module__", None) != module.__name__:
            continue
        if not _has_real_docstring(member):
            kind = "class" if inspect.isclass(member) else "function"
            yield f"{module.__name__}.{name} ({kind})"


def check_docstrings(package_name: str = "repro") -> List[str]:
    """Return a list of docstring violations (empty = all documented)."""
    problems: List[str] = []
    for module_name in iter_public_module_names(package_name):
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:  # pragma: no cover - import errors are bugs
            problems.append(f"{module_name}: import failed: {exc!r}")
            continue
        if not (module.__doc__ or "").strip():
            problems.append(f"{module_name}: missing module docstring")
        problems.extend(_missing_member_docstrings(module))
    return problems


#: Fenced README blocks tagged ``python`` (the executable ones).
_CODE_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_python_blocks(markdown: str) -> List[str]:
    """Return the source of every fenced ``python`` block in ``markdown``."""
    return [block.rstrip() + "\n" for block in _CODE_BLOCK_RE.findall(markdown)]


def check_readme_blocks(readme_path: Path) -> List[str]:
    """Execute every ``python`` block in ``readme_path``; return failures.

    Blocks run in order and share one namespace, so a quickstart may build on
    names introduced by an earlier block (mirroring a reader typing along).
    """
    if not readme_path.exists():
        return [f"{readme_path}: file does not exist"]
    blocks = extract_python_blocks(readme_path.read_text())
    if not blocks:
        return [f"{readme_path}: contains no ```python blocks to validate"]
    namespace: dict = {"__name__": "__readme__"}
    problems: List[str] = []
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{readme_path}#block{index}", "exec"), namespace)
        except Exception as exc:
            problems.append(f"{readme_path} block {index}: {type(exc).__name__}: {exc}")
    return problems


def _default_readme_path() -> Path:
    return Path(__file__).resolve().parents[2] / "README.md"


def _default_scenarios_path() -> Path:
    return Path(__file__).resolve().parents[2] / "docs" / "SCENARIOS.md"


def main(argv=None) -> int:
    """CLI entry point; exits 0 only when every check passes."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--readme",
        default=None,
        help="README to validate (default: the repository's README.md)",
    )
    parser.add_argument(
        "--skip-readme",
        action="store_true",
        help="only run the docstring audit (skips all snippet execution)",
    )
    args = parser.parse_args(argv)

    problems = check_docstrings()
    if not args.skip_readme:
        readme = Path(args.readme) if args.readme else _default_readme_path()
        problems += check_readme_blocks(readme)
        if args.readme is None:
            # Documents execute in separate namespaces: the scenario catalog
            # must stand on its own just like the README quickstart.
            problems += check_readme_blocks(_default_scenarios_path())

    if problems:
        print(f"doccheck: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("doccheck ok: all public repro.* modules documented, README blocks execute")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
