"""Replicated key-value store over the delivered sequence.

The service side is two small pieces:

* :class:`KVStateMachine` — a deterministic dict with three operations
  (``put``, ``get``, ``cas``), applied strictly in delivered order.  Every
  replica applying the same delivered prefix holds the same store; that is
  the entire correctness argument, inherited from SMR.
* :class:`KVApp` — the per-replica glue: it consumes the node's delivery
  stream (the same ``on_deliver`` hook the metrics collector uses in the
  simulator), applies each KV payload, and sends the operation's result
  back to the submitting client as a :class:`KVResultMsg`.  Non-KV
  payloads (ConfigTxs, raw benchmark padding) are counted and skipped.

The client side, :class:`KVClient`, wraps the ordinary
:class:`~repro.core.client.Client` — signatures, bucket-leader targeting,
``f+1`` acknowledgement quorums and the retry loop all come from there —
and adds result collection: an operation's *value* is trusted once ``f+1``
replicas returned the same result (matching the weak-quorum argument for
acknowledgements: at least one of any ``f+1`` matching replies is from a
correct replica).

Operation payloads are a tiny length-prefixed binary codec (magic byte +
UTF-8 fields), deliberately not pickle: request payloads cross trust
boundaries, and the decoder must be safe on arbitrary bytes.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..core.client import Client
from ..core.messages import client_endpoint
from ..core.types import DeliveredRequest, RequestId

#: Operation magic bytes (first byte of a KV payload).
OP_PUT = 0x50  # 'P'
OP_GET = 0x47  # 'G'
OP_CAS = 0x43  # 'C'

_LEN = struct.Struct(">I")


def _pack_fields(op: int, *fields: str) -> bytes:
    """Encode ``op`` plus length-prefixed UTF-8 fields."""
    out = [bytes([op])]
    for field in fields:
        raw = field.encode("utf-8")
        out.append(_LEN.pack(len(raw)))
        out.append(raw)
    return b"".join(out)


def _unpack_fields(payload: bytes, count: int) -> Optional[Tuple[str, ...]]:
    """Decode ``count`` length-prefixed UTF-8 fields after the magic byte."""
    fields = []
    offset = 1
    for _ in range(count):
        if offset + _LEN.size > len(payload):
            return None
        (length,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        if offset + length > len(payload):
            return None
        try:
            fields.append(payload[offset : offset + length].decode("utf-8"))
        except UnicodeDecodeError:
            return None
        offset += length
    if offset != len(payload):
        return None
    return tuple(fields)


def encode_put(key: str, value: str) -> bytes:
    """Payload for ``put(key, value)``: unconditionally set the key."""
    return _pack_fields(OP_PUT, key, value)


def encode_get(key: str) -> bytes:
    """Payload for ``get(key)``: an *ordered* (linearizable) read."""
    return _pack_fields(OP_GET, key)


def encode_cas(key: str, expected: str, value: str) -> bytes:
    """Payload for ``cas(key, expected, value)``: set iff current == expected."""
    return _pack_fields(OP_CAS, key, expected, value)


@dataclass(frozen=True)
class KVResult:
    """Outcome of applying one operation to the state machine.

    ``ok`` is True for a successful put/cas and for a get of an existing
    key; ``value`` carries the read value (get) or the value in place
    after the operation (put/cas).  ``None`` value means the key is unset.
    """

    ok: bool
    value: Optional[str]


class KVStateMachine:
    """Deterministic key-value store applied from the delivered sequence."""

    def __init__(self) -> None:
        self.store: Dict[str, str] = {}
        #: Operations applied (decoded KV payloads only).
        self.applied = 0
        #: Delivered payloads that were not KV operations (skipped).
        self.skipped = 0

    def apply(self, payload: bytes) -> Optional[KVResult]:
        """Apply one delivered payload; None when it is not a KV operation."""
        decoded = decode_op(payload)
        if decoded is None:
            self.skipped += 1
            return None
        self.applied += 1
        op, fields = decoded
        if op == OP_PUT:
            key, value = fields
            self.store[key] = value
            return KVResult(ok=True, value=value)
        if op == OP_GET:
            (key,) = fields
            value = self.store.get(key)
            return KVResult(ok=value is not None, value=value)
        key, expected, value = fields
        if self.store.get(key) == expected:
            self.store[key] = value
            return KVResult(ok=True, value=value)
        return KVResult(ok=False, value=self.store.get(key))


def decode_op(payload: bytes) -> Optional[Tuple[int, Tuple[str, ...]]]:
    """Decode a KV payload into ``(op, fields)``, or None if it is not one."""
    if not payload:
        return None
    op = payload[0]
    arity = {OP_PUT: 2, OP_GET: 1, OP_CAS: 3}.get(op)
    if arity is None:
        return None
    fields = _unpack_fields(payload, arity)
    if fields is None:
        return None
    return op, fields


@dataclass(frozen=True)
class KVResultMsg:
    """One replica's result for one delivered KV operation.

    Sent to the submitting client's endpoint right after the operation is
    applied; the client trusts a result once ``f+1`` replicas agree on it.
    """

    rid: RequestId
    node: int
    ok: bool
    value: Optional[str]

    def wire_size(self) -> int:
        """Estimated wire footprint (header + rid + result value)."""
        return 40 + (len(self.value) if self.value is not None else 0)


class KVApp:
    """Per-replica application: apply delivered KV operations, send results.

    Plugs into the node as its ``on_deliver`` listener.  During recovery
    replay (``replaying`` set by the host) results are applied but not
    re-sent — the pre-crash incarnation already responded, and clients
    absorb duplicates by request id anyway.
    """

    def __init__(self, node_id: int, transport, send_results: bool = True):
        self.node_id = node_id
        self.transport = transport
        self.send_results = send_results
        #: True while recovery replays the restored prefix through us.
        self.replaying = False
        self.machine = KVStateMachine()

    def on_deliver(self, node_id: int, item: DeliveredRequest) -> None:
        """Delivery listener: apply the operation and answer the client."""
        result = self.machine.apply(item.request.payload)
        if result is None or self.replaying or not self.send_results:
            return
        rid = item.request.rid
        self.transport.send(
            self.node_id,
            client_endpoint(rid.client),
            KVResultMsg(rid=rid, node=self.node_id, ok=result.ok, value=result.value),
        )


@dataclass
class _PendingOp:
    """Client-side tracking of one in-flight operation."""

    acked: asyncio.Future
    resolved: asyncio.Future
    #: Votes per distinct result: (ok, value) -> replica set.
    votes: Dict[Tuple[bool, Optional[str]], Set[int]]


@dataclass(frozen=True)
class KVOutcome:
    """What one completed KV operation returned.

    ``latency`` is submit-to-ack-quorum in seconds.  ``ok``/``value`` are
    the ``f+1``-confirmed result, or ``None``/``None`` when the caller did
    not wait for result confirmation (plain acked writes).
    """

    rid: RequestId
    latency: float
    ok: Optional[bool]
    value: Optional[str]


class KVClient:
    """Client-side KV API over the ordinary SMR client.

    Wraps a :class:`~repro.core.client.Client` (which owns signing,
    targeting, ack quorums and retries) and layers result collection on
    the same endpoint: :class:`KVResultMsg` frames are tallied here, all
    other messages pass through to the wrapped client.
    """

    def __init__(
        self, client_id: int, config, clock, transport, key_store, first_timestamp=0
    ):
        self._loop = asyncio.get_running_loop()
        self.client = Client(
            client_id=client_id,
            config=config,
            sim=clock,
            network=transport,
            key_store=key_store,
            on_complete=self._on_ack_quorum,
            first_timestamp=first_timestamp,
        )
        self.config = config
        self._pending: Dict[RequestId, _PendingOp] = {}
        self.completed = 0
        # Take over the endpoint: KV results are consumed here, everything
        # else (acks, bucket assignments) flows to the wrapped client.
        transport.register(self.client.endpoint, self._on_message)

    # -------------------------------------------------------------- messages
    def _on_message(self, src: int, message: object) -> None:
        if isinstance(message, KVResultMsg):
            self._on_result(src, message)
        else:
            self.client.on_message(src, message)

    def _on_ack_quorum(self, client_id, request, submitted_at, completed_at) -> None:
        pending = self._pending.get(request.rid)
        if pending is not None and not pending.acked.done():
            pending.acked.set_result(completed_at - submitted_at)

    def _on_result(self, src: int, message: KVResultMsg) -> None:
        pending = self._pending.get(message.rid)
        if pending is None or pending.resolved.done():
            return
        voters = pending.votes.setdefault((message.ok, message.value), set())
        voters.add(message.node)
        if len(voters) >= self.config.weak_quorum:
            pending.resolved.set_result((message.ok, message.value))

    # ------------------------------------------------------------ operations
    async def execute(
        self,
        payload: bytes,
        want_result: bool = False,
        timeout: float = 60.0,
    ) -> KVOutcome:
        """Submit one operation and await its completion.

        Always waits for the ``f+1`` acknowledgement quorum (the SMR
        completion the retry loop guarantees).  With ``want_result`` it
        additionally waits for ``f+1`` matching :class:`KVResultMsg`
        replies and returns their value (gets and conditional writes).
        """
        request = self.client.submit(payload)
        pending = _PendingOp(
            acked=self._loop.create_future(),
            resolved=self._loop.create_future(),
            votes={},
        )
        self._pending[request.rid] = pending
        try:
            latency = await asyncio.wait_for(pending.acked, timeout)
            ok: Optional[bool] = None
            value: Optional[str] = None
            if want_result:
                ok, value = await asyncio.wait_for(pending.resolved, timeout)
            self.completed += 1
            return KVOutcome(rid=request.rid, latency=latency, ok=ok, value=value)
        finally:
            del self._pending[request.rid]

    async def put(self, key: str, value: str, timeout: float = 60.0) -> KVOutcome:
        """Replicated unconditional write (completes at the ack quorum)."""
        return await self.execute(encode_put(key, value), timeout=timeout)

    async def get(self, key: str, timeout: float = 60.0) -> KVOutcome:
        """Linearizable read: ordered through consensus, ``f+1``-confirmed."""
        return await self.execute(encode_get(key), want_result=True, timeout=timeout)

    async def cas(
        self, key: str, expected: str, value: str, timeout: float = 60.0
    ) -> KVOutcome:
        """Compare-and-swap; ``ok`` reports whether the swap applied."""
        return await self.execute(
            encode_cas(key, expected, value), want_result=True, timeout=timeout
        )
