"""Applications running on top of the replicated log.

ISS orders opaque request payloads; what they *mean* is the application's
business.  This package holds the reference application used by the live
deployment backend: a replicated key-value store
(:mod:`repro.app.kv`) whose operations are applied from the delivered
sequence on every replica, making the classic SMR argument concrete — the
same delivered prefix replayed through the same deterministic state
machine yields the same store everywhere.
"""

from .kv import KVApp, KVClient, KVResultMsg, KVStateMachine

__all__ = ["KVApp", "KVClient", "KVResultMsg", "KVStateMachine"]
