"""Per-phase latency report over recorded spans (``python -m repro.trace_report``).

Reads the artifacts a traced run wrote (``spans.jsonl`` and ``metrics.json``
under ``REPRO_TRACE_DIR``, see :mod:`repro.obs.export`) and prints

* the request-lifecycle **phase breakdown** — count / mean / p50 / p95 /
  p99 / max latency of every span phase (submit→admit, admit→propose,
  propose→commit, commit→deliver, deliver→complete, total),
* the **slowest spans** end to end, with their retry/resubmission history,
* the run's **chaos counters**: payload drops split by cause, per-node
  retransmissions, and per-client retries — the numbers that explain *why*
  the slow spans were slow.

Without a directory argument, ``--demo`` runs a small traced scenario
in-process and reports on it — a one-command way to see the whole
observability pipeline work::

    PYTHONPATH=src python -m repro.trace_report --demo
    PYTHONPATH=src REPRO_TRACE=1 REPRO_TRACE_DIR=/tmp/run python - <<'EOF'
    ...  # any harness run
    EOF
    PYTHONPATH=src python -m repro.trace_report /tmp/run

Span rows are plain dicts with identical shape in memory and on disk, so
this module works the same on freshly assembled spans and on re-read
``spans.jsonl`` files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .metrics.report import format_table, print_banner
from .obs.export import METRICS_FILE, SPANS_FILE, read_jsonl
from .obs.spans import assemble_spans, chain_violation, phase_breakdown, slowest_spans


def load_artifacts(
    directory: Path,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Read ``spans.jsonl`` and ``metrics.json`` from an artifact directory.

    Returns ``(span_rows, metrics)``; each is empty when the corresponding
    file is missing (a metrics-only run has no spans and vice versa).
    """
    spans_path = directory / SPANS_FILE
    metrics_path = directory / METRICS_FILE
    rows = read_jsonl(spans_path) if spans_path.exists() else []
    metrics: Dict[str, object] = {}
    if metrics_path.exists():
        metrics = json.loads(metrics_path.read_text())
    return rows, metrics


def demo_artifacts() -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Run a small traced scenario in-process and return its report inputs.

    The scenario (4 PBFT nodes, 150 req/s for 6 virtual seconds) runs with
    full-rate span tracing and a 1 s metrics sampler, exactly as a
    ``REPRO_TRACE=1`` run would — just without touching the filesystem.
    """
    from .core.config import ISSConfig, WorkloadConfig
    from .harness.runner import Deployment
    from .obs import ObsConfig

    deployment = Deployment(
        ISSConfig(num_nodes=4, random_seed=7),
        workload=WorkloadConfig(num_clients=4, total_rate=150.0, duration=6.0),
        obs=ObsConfig(trace=True, sample=1.0, metrics_interval=1.0),
    )
    result = deployment.run()
    rows = assemble_spans(deployment.tracer.events)
    metrics = {
        "timeseries": result.report.timeseries,
        "counters": deployment.obs_counters(),
    }
    return rows, metrics


def _fmt_ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 1000.0:.2f}"


def print_report(
    rows: List[Dict[str, object]],
    metrics: Dict[str, object],
    slowest: int = 5,
) -> None:
    """Print the full trace report for one run's spans and counters."""
    print_banner("Request trace report")
    completed = [r for r in rows if r.get("complete") is not None]
    violations = sum(1 for r in completed if chain_violation(r) is not None)
    print(
        f"{len(rows)} spans, {len(completed)} completed, "
        f"{violations} chain violation(s)"
    )

    if rows:
        print("\nPhase latency breakdown:")
        print(
            format_table(
                ("phase", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"),
                [
                    (
                        label,
                        summary.count,
                        _fmt_ms(summary.mean),
                        _fmt_ms(summary.p50),
                        _fmt_ms(summary.p95),
                        _fmt_ms(summary.p99),
                        _fmt_ms(summary.maximum),
                    )
                    for label, summary in phase_breakdown(rows)
                ],
            )
        )

    worst = slowest_spans(rows, count=slowest)
    if worst:
        print(f"\nSlowest {len(worst)} spans end to end:")
        print(
            format_table(
                ("rid", "client", "submit s", "total ms", "retries", "resubmits"),
                [
                    (
                        row["rid"],
                        row["client"],
                        f"{row['submit']:.3f}",
                        _fmt_ms(row["complete"] - row["submit"]),
                        len(row.get("retries", ())),
                        len(row.get("resubmits", ())),
                    )
                    for row in worst
                ],
            )
        )

    counters = metrics.get("counters") or {}
    if counters:
        print("\nChaos counters:")
        drops = counters.get("drops_by_cause") or {}
        for cause in sorted(drops):
            print(f"  drops[{cause}]: {drops[cause]}")
        print(f"  retransmissions_total: {counters.get('retransmissions_total', 0)}")
        for node, count in sorted(
            (counters.get("retransmissions_by_node") or {}).items(),
            key=lambda item: int(item[0]),
        ):
            print(f"  retransmissions[node {node}]: {count}")
        print(f"  client_retries_total: {counters.get('client_retries_total', 0)}")
        for client, count in sorted(
            (counters.get("client_retries_by_client") or {}).items(),
            key=lambda item: int(item[0]),
        ):
            print(f"  client_retries[client {client}]: {count}")

    timeseries = metrics.get("timeseries") or {}
    series = timeseries.get("series") or {}
    if series:
        names = sorted(series)
        print(
            f"\nTime series: {len(timeseries.get('times', ()))} ticks every "
            f"{timeseries.get('interval')}s, {len(names)} series "
            f"({', '.join(names[:6])}{', ...' if len(names) > 6 else ''})"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: report on an artifact directory or the demo run."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "directory",
        nargs="?",
        help="artifact directory a traced run wrote (REPRO_TRACE_DIR)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a small traced scenario in-process and report on it",
    )
    parser.add_argument(
        "--slowest",
        type=int,
        default=5,
        help="how many slowest spans to list (default 5)",
    )
    args = parser.parse_args(argv)

    if args.demo:
        rows, metrics = demo_artifacts()
    elif args.directory is not None:
        directory = Path(args.directory)
        if not directory.is_dir():
            print(f"not a directory: {directory}", file=sys.stderr)
            return 1
        rows, metrics = load_artifacts(directory)
        if not rows and not metrics:
            print(
                f"no {SPANS_FILE} or {METRICS_FILE} under {directory} — "
                f"was the run traced (REPRO_TRACE=1, REPRO_TRACE_DIR set)?",
                file=sys.stderr,
            )
            return 1
    else:
        print(
            "nothing to report on: pass an artifact directory or --demo",
            file=sys.stderr,
        )
        return 1
    print_report(rows, metrics, slowest=args.slowest)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
