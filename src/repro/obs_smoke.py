"""Observability smoke test (``python -m repro.obs_smoke``).

Runs the canonical 8-node profiling scenario (:data:`repro.perf_smoke.SCENARIO`,
unbatched) twice per repetition — once with observability disabled and once
with full-rate span tracing plus a 1 s metrics sampler — and gates the
tentpole claims of the observability subsystem:

* **zero perturbation**: the traced run completes exactly the same requests
  and delivers exactly the same sequence (delivered-trace digest) as the
  untraced run — tracing observes the schedule, it must never move it,
* **complete spans**: every request that reached its client-response quorum
  has a closed span chain (submit → admit → propose → commit → deliver →
  complete, monotonically ordered) with zero violations,
* **valid export**: the artifacts round-trip through
  :func:`repro.obs.export.write_run_artifacts` — the re-read ``spans.jsonl``
  matches the in-memory spans and the Chrome trace-event file passes the
  schema validator (loadable in Perfetto / ``chrome://tracing``),
* **bounded overhead**: enabled mode stays within
  :data:`OVERHEAD_TOLERANCE` of disabled mode (min over
  :data:`REPETITIONS` interleaved repetitions; one retry absorbs a noisy
  machine, ``--no-check`` skips only this overhead gate).  The ratio is
  taken over process CPU time — on a loaded shared machine wall clock
  jitters by far more than the gated 10%, while CPU time isolates what the
  tracing hooks actually cost; wall time is still recorded alongside.

On success the figures are written to ``BENCH_obs_overhead.json`` in the
repository root so the overhead trajectory is tracked across PRs.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from . import golden, perf_smoke, smokelib
from .core.config import SimConfig
from .obs import ObsConfig
from .obs.export import (
    CHROME_TRACE_FILE,
    SPANS_FILE,
    read_jsonl,
    validate_chrome_trace,
    write_run_artifacts,
)
from .obs.spans import assemble_spans, chain_violation

#: Allowed enabled-mode CPU-time overhead (fraction of disabled mode).
OVERHEAD_TOLERANCE = 0.10

#: Interleaved (disabled, enabled) timing repetitions; the minimum of each
#: side is compared, which filters one-sided scheduler noise.
REPETITIONS = 3

#: The enabled-mode configuration under test: full-rate span tracing plus
#: the 1 s metrics sampler — the most expensive supported setting.
ENABLED_OBS = ObsConfig(trace=True, sample=1.0, metrics_interval=1.0)


def _timed_run(obs: ObsConfig):
    """Run the perf scenario under ``obs``; return (deployment, result, cpu, wall).

    Garbage from the *previous* run is collected before the timers start —
    otherwise a traced run's retained events get collected inside the next
    timed region and the measured "overhead" is mostly cross-run GC noise.
    The collector is then disabled inside the timed region (the ``timeit``
    convention, same as the Fig. 5 engine sweep): the traced run allocates
    more, so with GC live it pays extra full-heap passes whose cost scales
    with whatever else the process has ever allocated (in the CI chain this
    smoke runs after six others), not with the tracing hooks under test.
    """
    deployment = perf_smoke.build_deployment(0.0, obs=obs)
    gc.collect()
    gc.disable()
    try:
        cpu_start = time.process_time()
        wall_start = time.perf_counter()
        result = deployment.run()
        wall = time.perf_counter() - wall_start
        cpu = time.process_time() - cpu_start
    finally:
        gc.enable()
    return deployment, result, cpu, wall


def measure(repetitions: int = REPETITIONS) -> Dict[str, object]:
    """Run the disabled/enabled pairs and collect every gate's figures."""
    disabled_cpus: List[float] = []
    enabled_cpus: List[float] = []
    disabled_walls: List[float] = []
    enabled_walls: List[float] = []
    disabled_figs: Dict[str, object] = {}
    enabled_figs: Dict[str, object] = {}
    span_rows: List[Dict[str, object]] = []
    tracer = None
    timeseries: Dict[str, object] = {}
    for _ in range(repetitions):
        deployment, result, cpu, wall = _timed_run(ObsConfig.disabled())
        disabled_cpus.append(cpu)
        disabled_walls.append(wall)
        disabled_figs = {
            "completed": result.report.completed,
            "trace_sha256": golden.trace_sha256(result.nodes[0]),
            "events_executed": deployment.sim.events_executed,
        }
        deployment, result, cpu, wall = _timed_run(ENABLED_OBS)
        enabled_cpus.append(cpu)
        enabled_walls.append(wall)
        tracer = deployment.tracer
        span_rows = assemble_spans(tracer.events)
        timeseries = result.report.timeseries
        enabled_figs = {
            "completed": result.report.completed,
            "trace_sha256": golden.trace_sha256(result.nodes[0]),
            "events_executed": deployment.sim.events_executed,
            "spans": len(span_rows),
            "timeline_points": len(result.report.throughput_timeline),
            "series": len(timeseries.get("series", {})),
        }

    completed_rows = [r for r in span_rows if r.get("complete") is not None]
    violations = [
        v for v in (chain_violation(r) for r in completed_rows) if v is not None
    ]

    # Artifact round-trip: write the traced run's artifacts to a scratch
    # directory (outside the timed region), re-read them, validate.
    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as scratch:
        write_run_artifacts(scratch, tracer, timeseries=timeseries)
        reread = read_jsonl(Path(scratch) / SPANS_FILE)
        chrome = json.loads((Path(scratch) / CHROME_TRACE_FILE).read_text())
    chrome_problems = validate_chrome_trace(chrome)

    disabled_cpu = min(disabled_cpus)
    enabled_cpu = min(enabled_cpus)
    disabled_figs["cpu_time_s"] = round(disabled_cpu, 4)
    disabled_figs["wall_time_s"] = round(min(disabled_walls), 4)
    enabled_figs["cpu_time_s"] = round(enabled_cpu, 4)
    enabled_figs["wall_time_s"] = round(min(enabled_walls), 4)
    return {
        "scenario": dict(perf_smoke.SCENARIO),
        "engine": SimConfig.from_env().engine,
        "repetitions": repetitions,
        "disabled": disabled_figs,
        "enabled": enabled_figs,
        "completed_spans": len(completed_rows),
        "span_chain_violations": len(violations),
        "span_violation_examples": violations[:3],
        "spans_roundtrip_identical": reread == span_rows,
        "chrome_events": len(chrome.get("traceEvents", ())),
        "chrome_problems": chrome_problems[:3],
        "overhead_ratio": round(enabled_cpu / disabled_cpu, 4)
        if disabled_cpu > 0
        else float("inf"),
        "overhead_tolerance": OVERHEAD_TOLERANCE,
    }


def semantic_violations(figures: Dict[str, object]) -> Optional[str]:
    """The deterministic observability claims (everything but wall clock)."""
    disabled, enabled = figures["disabled"], figures["enabled"]
    if enabled["completed"] != disabled["completed"] or (
        enabled["trace_sha256"] != disabled["trace_sha256"]
    ):
        return (
            "OBSERVER EFFECT: the traced run completed "
            f"{enabled['completed']} requests (digest "
            f"{enabled['trace_sha256'][:12]}…) but the untraced run "
            f"{disabled['completed']} (digest "
            f"{disabled['trace_sha256'][:12]}…) — tracing moved the schedule"
        )
    if figures["completed_spans"] != enabled["completed"]:
        return (
            "SPAN COVERAGE REGRESSION: "
            f"{enabled['completed']} requests completed but only "
            f"{figures['completed_spans']} spans closed"
        )
    if figures["span_chain_violations"]:
        return (
            "SPAN CHAIN REGRESSION: "
            f"{figures['span_chain_violations']} completed request(s) have "
            f"broken span chains, e.g. {figures['span_violation_examples']}"
        )
    if not figures["spans_roundtrip_identical"]:
        return (
            "SPAN EXPORT REGRESSION: spans.jsonl did not round-trip "
            "identically through the JSONL exporter"
        )
    if figures["chrome_problems"]:
        return (
            "CHROME TRACE REGRESSION: the trace-event file fails schema "
            f"validation, e.g. {figures['chrome_problems']}"
        )
    if figures["enabled"]["timeline_points"] <= 0 or figures["enabled"]["series"] <= 0:
        return (
            "SAMPLER REGRESSION: the enabled run produced no throughput "
            "timeline or no time series"
        )
    return None


def check_overhead(figures: Dict[str, object]) -> Optional[str]:
    """Return an error string when tracing costs more CPU time than allowed."""
    ratio = float(figures["overhead_ratio"])
    ceiling = 1.0 + OVERHEAD_TOLERANCE
    if ratio > ceiling:
        return (
            f"OBSERVABILITY OVERHEAD REGRESSION: enabled mode used "
            f"{ratio:.3f}× the disabled CPU time, above the allowed "
            f"{ceiling:.2f}× "
            f"(disabled {figures['disabled']['cpu_time_s']}s, "
            f"enabled {figures['enabled']['cpu_time_s']}s)"
        )
    return None


def bench_output_path() -> Path:
    """Location of the ``BENCH_obs_overhead.json`` artefact (repo root)."""
    return smokelib.bench_output_path("BENCH_obs_overhead.json")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: measure, gate, and record the overhead figures."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the result JSON (default: ./BENCH_obs_overhead.json)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the CPU-time overhead gate (deterministic gates still run)",
    )
    args = parser.parse_args(argv)

    scenario = perf_smoke.SCENARIO
    print(
        f"obs smoke: {scenario['num_nodes']} nodes, "
        f"{scenario['total_rate']:.0f} req/s, {scenario['duration']:.0f}s "
        f"virtual, untraced vs traced (sample=1.0, 1s sampler), "
        f"min of {REPETITIONS} ..."
    )
    figures = measure()
    smokelib.print_figures(figures)

    # The deterministic gates apply in every mode — a bench artefact of a
    # perturbed or incomplete trace must never be recorded.
    violation = semantic_violations(figures)
    if violation is not None:
        print(violation, file=sys.stderr)
        return 1

    if not args.no_check:
        error = check_overhead(figures)
        if error is not None:
            # One fresh measurement absorbs a noisy machine; a genuine
            # hot-path regression fails both times.
            print(f"{error} — retrying once", file=sys.stderr)
            figures = measure()
            smokelib.print_figures(figures)
            violation = semantic_violations(figures)
            if violation is not None:
                print(violation, file=sys.stderr)
                return 1
            error = check_overhead(figures)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        print(
            f"overhead check ok ({figures['overhead_ratio']:.3f}× CPU time, "
            f"ceiling {1.0 + OVERHEAD_TOLERANCE:.2f}×)"
        )

    output = Path(args.output) if args.output else bench_output_path()
    smokelib.write_bench(output, "obs_smoke", figures)
    print(f"wrote {output}")
    print(
        f"obs smoke ok ({figures['completed_spans']} closed spans, "
        f"{figures['chrome_events']} trace events)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
