"""Byzantine Reliable Broadcast (Bracha's protocol).

Used by the reference SB-from-consensus construction (paper Algorithm 5) and
by the failure-detector argument in Section 5.1.3.  The implementation is the
classic three-phase echo protocol:

* the designated sender broadcasts ``SEND(m)``;
* on the first ``SEND`` from the sender, every node broadcasts ``ECHO(m)``;
* on ``2f+1`` matching ``ECHO``s (or ``f+1`` matching ``READY``s), a node
  broadcasts ``READY(m)``;
* on ``2f+1`` matching ``READY``s, a node brb-delivers ``m``.

Properties (BRB1–BRB6 in the paper) hold with ``n >= 3f+1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from ..core.types import NodeId
from ..runtime.wire import register_batchable


@dataclass(frozen=True)
class BrbSend:
    """Initial dissemination of the payload by the designated sender."""

    instance: object
    payload: object

    def wire_size(self) -> int:
        from ..runtime.wire import wire_size

        return 48 + wire_size(self.payload)


@register_batchable
@dataclass(frozen=True)
class BrbEcho:
    """Second-phase echo of the sender's payload.  Batchable like a vote."""

    instance: object
    payload: object

    def wire_size(self) -> int:
        from ..runtime.wire import wire_size

        return 48 + wire_size(self.payload)


@register_batchable
@dataclass(frozen=True)
class BrbReady:
    """Third-phase readiness vote.  Batchable like a vote."""

    instance: object
    payload: object

    def wire_size(self) -> int:
        from ..runtime.wire import wire_size

        return 48 + wire_size(self.payload)


def _payload_key(payload: object) -> object:
    """Hashable identity of a payload for counting matching echoes/readies."""
    digest_fn = getattr(payload, "digest", None)
    if callable(digest_fn):
        return digest_fn()
    return payload


class ReliableBroadcast:
    """One BRB instance with a designated sender.

    The host supplies ``broadcast_fn`` (send to every node, including the
    local one) and receives the delivered payload through ``deliver_fn``,
    which fires at most once.
    """

    def __init__(
        self,
        *,
        instance: object,
        node_id: NodeId,
        sender: NodeId,
        num_nodes: int,
        max_faulty: int,
        broadcast_fn: Callable[[object], None],
        deliver_fn: Callable[[object], None],
    ):
        self.instance = instance
        self.node_id = node_id
        self.sender = sender
        self.num_nodes = num_nodes
        self.max_faulty = max_faulty
        self._broadcast = broadcast_fn
        self._deliver = deliver_fn

        self._echo_sent = False
        self._ready_sent = False
        self._delivered = False
        self._echoes: Dict[object, Set[NodeId]] = {}
        self._readies: Dict[object, Set[NodeId]] = {}
        self._payloads: Dict[object, object] = {}

    # ---------------------------------------------------------------- casts
    def brb_cast(self, payload: object) -> None:
        """Invoke BRB-CAST; only meaningful at the designated sender."""
        if self.node_id != self.sender:
            raise PermissionError("only the designated sender may brb-cast")
        self._broadcast(BrbSend(instance=self.instance, payload=payload))

    # ------------------------------------------------------------- handlers
    def handle_message(self, src: NodeId, message: object) -> None:
        if isinstance(message, BrbSend):
            self._on_send(src, message)
        elif isinstance(message, BrbEcho):
            self._on_echo(src, message)
        elif isinstance(message, BrbReady):
            self._on_ready(src, message)

    def _on_send(self, src: NodeId, message: BrbSend) -> None:
        if src != self.sender or self._echo_sent:
            return
        self._echo_sent = True
        self._broadcast(BrbEcho(instance=self.instance, payload=message.payload))

    def _on_echo(self, src: NodeId, message: BrbEcho) -> None:
        key = _payload_key(message.payload)
        self._payloads.setdefault(key, message.payload)
        voters = self._echoes.setdefault(key, set())
        voters.add(src)
        if len(voters) >= 2 * self.max_faulty + 1:
            self._send_ready(message.payload)

    def _on_ready(self, src: NodeId, message: BrbReady) -> None:
        key = _payload_key(message.payload)
        self._payloads.setdefault(key, message.payload)
        voters = self._readies.setdefault(key, set())
        voters.add(src)
        if len(voters) >= self.max_faulty + 1:
            self._send_ready(message.payload)
        if len(voters) >= 2 * self.max_faulty + 1 and not self._delivered:
            self._delivered = True
            self._deliver(message.payload)

    def _send_ready(self, payload: object) -> None:
        if self._ready_sent:
            return
        self._ready_sent = True
        self._broadcast(BrbReady(instance=self.instance, payload=payload))

    # -------------------------------------------------------------- queries
    @property
    def delivered(self) -> bool:
        return self._delivered
