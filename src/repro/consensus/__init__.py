"""Reference agreement substrates: BRB, Byzantine consensus, SB-from-consensus."""

from .brb import ReliableBroadcast, BrbSend, BrbEcho, BrbReady
from .bc import ByzantineConsensus, BOTTOM
from .sb_consensus import ConsensusSB, SbWrapped

__all__ = [
    "ReliableBroadcast",
    "BrbSend",
    "BrbEcho",
    "BrbReady",
    "ByzantineConsensus",
    "BOTTOM",
    "ConsensusSB",
    "SbWrapped",
]
