"""Single-shot Byzantine consensus (used by the reference SB construction).

Algorithm 5 in the paper builds Sequenced Broadcast from Byzantine reliable
broadcast plus one Byzantine consensus instance per sequence number.  This
module provides that consensus instance: a compact, view-based, eventually
synchronous protocol in the style of single-slot PBFT.

* Views rotate round-robin; the view leader proposes its current estimate.
* A node *prepares* a proposal after ``2f+1`` matching PREPARE votes and
  *commits* (decides) after ``2f+1`` matching COMMIT votes.
* On a view timeout, nodes exchange VIEW-CHANGE messages carrying their
  highest prepared value; the next leader must re-propose the highest
  prepared value it learned, which preserves agreement across views.

The implementation favours clarity over defending every Byzantine corner
case (e.g. view-change proofs are not re-validated cryptographically); ISS's
production path uses the full PBFT/HotStuff/Raft engines, while this class
backs the paper's modularity argument and the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.types import NodeId
from ..runtime.api import Scheduler, Timer
from ..runtime.wire import register_batchable

#: Sentinel used as the "could not agree on a proposed value" decision.
BOTTOM = "⊥"


def _value_key(value: object) -> object:
    digest_fn = getattr(value, "digest", None)
    if callable(digest_fn):
        return digest_fn()
    return value


@dataclass(frozen=True)
class BcPropose:
    """View leader's proposal of its current estimate (payload-carrying)."""

    instance: object
    view: int
    value: object

    def wire_size(self) -> int:
        from ..runtime.wire import wire_size

        return 48 + wire_size(self.value)


@register_batchable
@dataclass(frozen=True)
class BcPrepare:
    """First-phase consensus vote (digest-sized).  Batchable."""

    instance: object
    view: int
    value_key: object

    def wire_size(self) -> int:
        return 80


@register_batchable
@dataclass(frozen=True)
class BcCommit:
    """Second-phase consensus vote (digest-sized).  Batchable."""

    instance: object
    view: int
    value_key: object

    def wire_size(self) -> int:
        return 80


@dataclass(frozen=True)
class BcViewChange:
    """View-change vote carrying the sender's highest prepared value."""

    instance: object
    new_view: int
    prepared_view: int
    prepared_value: Optional[object]

    def wire_size(self) -> int:
        from ..runtime.wire import wire_size

        return 64 + (wire_size(self.prepared_value) if self.prepared_value is not None else 0)


class ByzantineConsensus:
    """One consensus instance over an arbitrary (hashable-by-digest) value."""

    def __init__(
        self,
        *,
        instance: object,
        node_id: NodeId,
        num_nodes: int,
        max_faulty: int,
        sim: Scheduler,
        broadcast_fn: Callable[[object], None],
        decide_fn: Callable[[object], None],
        view_timeout: float = 4.0,
    ):
        self.instance = instance
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.max_faulty = max_faulty
        self.sim = sim
        self._broadcast = broadcast_fn
        self._decide = decide_fn
        self.view_timeout = view_timeout

        self.view = 0
        self.estimate: Optional[object] = None
        self.decided = False
        self.decision: Optional[object] = None

        self._prepared_view = -1
        self._prepared_value: Optional[object] = None
        self._values: Dict[object, object] = {}
        self._prepares: Dict[Tuple[int, object], Set[NodeId]] = {}
        self._commits: Dict[Tuple[int, object], Set[NodeId]] = {}
        self._view_changes: Dict[int, Dict[NodeId, BcViewChange]] = {}
        self._prepare_sent: Set[int] = set()
        self._commit_sent: Set[int] = set()
        self._proposed_views: Set[int] = set()
        self._timer: Optional[Timer] = None
        self._started = False

    # ------------------------------------------------------------- lifecycle
    def leader_of(self, view: int) -> NodeId:
        return view % self.num_nodes

    @property
    def quorum(self) -> int:
        return 2 * self.max_faulty + 1

    def propose(self, value: object) -> None:
        """BC-PROPOSE: adopt ``value`` as the initial estimate and start."""
        if self.decided:
            return
        if self.estimate is None:
            self.estimate = value
        if not self._started:
            self._started = True
            self._arm_timer()
        self._maybe_lead_view()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()

    # -------------------------------------------------------------- leading
    def _maybe_lead_view(self) -> None:
        if self.decided or self.estimate is None:
            return
        if self.leader_of(self.view) != self.node_id:
            return
        if self.view in self._proposed_views:
            return
        self._proposed_views.add(self.view)
        value = self._prepared_value if self._prepared_value is not None else self.estimate
        self._broadcast(BcPropose(instance=self.instance, view=self.view, value=value))

    # ------------------------------------------------------------- handlers
    def handle_message(self, src: NodeId, message: object) -> None:
        if self.decided:
            return
        if isinstance(message, BcPropose):
            self._on_propose(src, message)
        elif isinstance(message, BcPrepare):
            self._on_prepare(src, message)
        elif isinstance(message, BcCommit):
            self._on_commit(src, message)
        elif isinstance(message, BcViewChange):
            self._on_view_change(src, message)

    def _on_propose(self, src: NodeId, message: BcPropose) -> None:
        if message.view != self.view or src != self.leader_of(message.view):
            return
        if message.view in self._prepare_sent:
            return
        key = _value_key(message.value)
        self._values[key] = message.value
        self._prepare_sent.add(message.view)
        self._broadcast(BcPrepare(instance=self.instance, view=message.view, value_key=key))

    def _on_prepare(self, src: NodeId, message: BcPrepare) -> None:
        voters = self._prepares.setdefault((message.view, message.value_key), set())
        voters.add(src)
        if len(voters) >= self.quorum and message.view not in self._commit_sent:
            self._commit_sent.add(message.view)
            self._prepared_view = message.view
            self._prepared_value = self._values.get(message.value_key, self._prepared_value)
            self._broadcast(
                BcCommit(instance=self.instance, view=message.view, value_key=message.value_key)
            )

    def _on_commit(self, src: NodeId, message: BcCommit) -> None:
        voters = self._commits.setdefault((message.view, message.value_key), set())
        voters.add(src)
        if len(voters) >= self.quorum and not self.decided:
            value = self._values.get(message.value_key)
            if value is None:
                # We have the votes but not the value yet; wait for the
                # proposal to arrive (it is retransmitted on view change).
                return
            self._finish(value)

    def _finish(self, value: object) -> None:
        self.decided = True
        self.decision = value
        if self._timer is not None:
            self._timer.cancel()
        self._decide(value)

    # ---------------------------------------------------------- view change
    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(self.view_timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        if self.decided:
            return
        next_view = self.view + 1
        self._broadcast(
            BcViewChange(
                instance=self.instance,
                new_view=next_view,
                prepared_view=self._prepared_view,
                prepared_value=self._prepared_value,
            )
        )
        # Exponentially growing view timeout: guarantees termination after GST.
        self.view_timeout *= 2
        self._arm_timer()

    def _on_view_change(self, src: NodeId, message: BcViewChange) -> None:
        votes = self._view_changes.setdefault(message.new_view, {})
        votes[src] = message
        if message.new_view <= self.view:
            return
        if len(votes) >= self.quorum:
            # Adopt the highest prepared value reported by the quorum; this is
            # what preserves agreement across views.
            best = max(votes.values(), key=lambda m: m.prepared_view)
            if best.prepared_view >= 0 and best.prepared_value is not None:
                self._prepared_view = max(self._prepared_view, best.prepared_view)
                self._prepared_value = best.prepared_value
            self.view = message.new_view
            self._arm_timer()
            self._maybe_lead_view()
