"""Reference Sequenced Broadcast implementation from consensus (Algorithm 5).

This is the construction the paper uses to prove that SB is implementable:
the designated sender brb-casts its message for each sequence number; every
node feeds brb-delivered messages into one Byzantine-consensus instance per
sequence number; when the sender is suspected (after SB-INIT) every node
*aborts*, proposing ``⊥`` for all sequence numbers it has not proposed yet.
Consensus then decides either a brb-delivered batch or ``⊥`` for every
sequence number, which yields SB1–SB4.

ISS's production path wraps PBFT/HotStuff/Raft instead (they are far more
message-efficient); this implementation exists for completeness, for the
correctness test-suite, and as the simplest possible example of an SB
implementation for downstream users who want to plug in their own protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.pacing import ProposalPacer
from ..core.sb import SBContext, SBInstance
from ..core.types import Batch, NIL, NodeId, SeqNr
from ..runtime.wire import is_batchable, register_batchable
from ..fd.detector import EVENT_SUSPECT, FailureDetector
from .bc import BOTTOM, ByzantineConsensus
from .brb import ReliableBroadcast


@dataclass(frozen=True)
class SbWrapped:
    """Envelope distinguishing per-sequence-number BRB and BC traffic."""

    sn: SeqNr
    kind: str  # "brb" | "bc"
    inner: object

    def wire_size(self) -> int:
        from ..runtime.wire import wire_size

        return 16 + wire_size(self.inner)


# Transparent to wire batching, like InstanceMessage: an SbWrapped envelope
# may be coalesced exactly when the BRB/BC message it carries may be.
register_batchable(SbWrapped, predicate=lambda m: is_batchable(m.inner))


class ConsensusSB(SBInstance):
    """SB built from BRB + consensus + a ◇S(bz) failure detector."""

    def __init__(
        self,
        context: SBContext,
        failure_detector: Optional[FailureDetector] = None,
        leader_timeout: Optional[float] = None,
    ):
        super().__init__(context)
        self.failure_detector = failure_detector
        #: Fallback "suspicion" timeout used when no failure detector is
        #: wired in: if the sender stays quiet for this long after SB-INIT we
        #: abort, mirroring the detector's strong completeness.
        self.leader_timeout = (
            leader_timeout
            if leader_timeout is not None
            else context.config.epoch_change_timeout
        )
        self._initialized = False
        self._aborted = False
        self._proposed: Set[SeqNr] = set()
        self._delivered: Set[SeqNr] = set()
        self._brb: Dict[SeqNr, ReliableBroadcast] = {}
        self._bc: Dict[SeqNr, ByzantineConsensus] = {}
        self._pacer = ProposalPacer(context, self._sb_cast)
        self._abort_timer = None
        self._build_instances()

    # --------------------------------------------------------------- set-up
    def _build_instances(self) -> None:
        ctx = self.context
        for sn in ctx.segment.seq_nrs:
            self._brb[sn] = ReliableBroadcast(
                instance=sn,
                node_id=ctx.node_id,
                sender=ctx.segment.leader,
                num_nodes=ctx.num_nodes,
                max_faulty=ctx.max_faulty,
                broadcast_fn=lambda msg, sn=sn: ctx.broadcast(
                    SbWrapped(sn=sn, kind="brb", inner=msg)
                ),
                deliver_fn=lambda payload, sn=sn: self._on_brb_deliver(sn, payload),
            )
            self._bc[sn] = ByzantineConsensus(
                instance=sn,
                node_id=ctx.node_id,
                num_nodes=ctx.num_nodes,
                max_faulty=ctx.max_faulty,
                sim=_ContextSim(ctx),
                broadcast_fn=lambda msg, sn=sn: ctx.broadcast(
                    SbWrapped(sn=sn, kind="bc", inner=msg)
                ),
                decide_fn=lambda value, sn=sn: self._on_decide(sn, value),
                view_timeout=self.context.config.view_change_timeout,
            )

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """SB-INIT (Algorithm 5, lines 11–15)."""
        self._initialized = True
        if self.failure_detector is not None:
            self.failure_detector.subscribe(self._on_fd_event)
            if self.failure_detector.is_suspected(self.context.segment.leader):
                self._abort()
        if not self.context.is_leader:
            # Fallback completeness: if the sender never gets anything
            # decided, abort after the leader timeout.
            self._abort_timer = self.context.schedule(self.leader_timeout, self._on_leader_timeout)
        self._pacer.start()

    def stop(self) -> None:
        self._pacer.stop()
        if self._abort_timer is not None:
            self._abort_timer.cancel()
        for bc in self._bc.values():
            bc.stop()

    # --------------------------------------------------------------- sender
    def _sb_cast(self, sn: SeqNr, batch: Batch) -> None:
        """SB-CAST at the designated sender: brb-cast the batch (line 17)."""
        self._brb[sn].brb_cast(batch)

    # ------------------------------------------------------------- delivery
    def _on_brb_deliver(self, sn: SeqNr, payload: object) -> None:
        """Line 20: propose the brb-delivered batch to consensus."""
        if sn in self._proposed:
            return
        if isinstance(payload, Batch) and not self.context.validate_batch(payload):
            # Invalid payloads never enter consensus at a correct node; the
            # instance will fall back to ⊥ through the abort path.
            return
        self._proposed.add(sn)
        self._bc[sn].propose(payload)

    def _on_decide(self, sn: SeqNr, value: object) -> None:
        if sn in self._delivered:
            return
        self._delivered.add(sn)
        if isinstance(value, str) and value == BOTTOM:
            self.context.deliver(sn, NIL)
        else:
            self.context.deliver(sn, value)
        if self._abort_timer is not None and len(self._delivered) == len(self.segment.seq_nrs):
            self._abort_timer.cancel()

    # ---------------------------------------------------------------- abort
    def _on_fd_event(self, event: str, node: NodeId) -> None:
        if event == EVENT_SUSPECT and node == self.context.segment.leader and self._initialized:
            self._abort()

    def _on_leader_timeout(self) -> None:
        if len(self._delivered) < len(self.segment.seq_nrs):
            self._abort()

    def _abort(self) -> None:
        """Lines 32–37: propose ⊥ for every not-yet-proposed sequence number."""
        if self._aborted:
            return
        self._aborted = True
        for sn in self.segment.seq_nrs:
            if sn not in self._proposed:
                self._proposed.add(sn)
                self._bc[sn].propose(BOTTOM)

    # ------------------------------------------------------------- messages
    def handle_message(self, src: NodeId, message: object) -> None:
        if not isinstance(message, SbWrapped):
            return
        if message.kind == "brb":
            brb = self._brb.get(message.sn)
            if brb is not None:
                brb.handle_message(src, message.inner)
        elif message.kind == "bc":
            bc = self._bc.get(message.sn)
            if bc is not None:
                bc.handle_message(src, message.inner)


class _ContextSim:
    """Adapter exposing the SBContext scheduling API with a Simulator shape."""

    def __init__(self, context: SBContext):
        self._context = context

    def schedule(self, delay: float, callback) -> object:
        return self._context.schedule(delay, callback)

    @property
    def now(self) -> float:
        return self._context.now()
