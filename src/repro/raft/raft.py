"""Raft as a (crash-fault-tolerant) Sequenced Broadcast implementation.

Section 4.2.3 of the paper: the first leader of each instance is fixed to the
segment leader (the election phase is skipped), followers keep randomized
election timers, and — to preserve liveness under eventual synchrony — the
election-timer range doubles whenever a term passes without electing a
leader.  A leader elected after the segment leader's failure appends ``⊥``
entries for every sequence number it does not already hold, so the instance
terminates for all sequence numbers (SB3) even after a crash.

Raft's characteristic re-transmission behaviour is preserved: a leader keeps
re-sending entries from ``nextIndex`` until acknowledged, so short batch
timeouts on a high-latency WAN produce redundant proposals — the effect the
paper's evaluation attributes Raft's lower per-leader throughput to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.pacing import ProposalPacer
from ..core.sb import SBContext, SBInstance
from ..core.types import Batch, LogEntry, NIL, NodeId, SeqNr, is_nil
from ..runtime.api import Timer
from .messages import AppendEntries, AppendReply, RaftEntry, RequestVote, VoteReply

#: Roles a node can hold within one Raft instance.
FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class RaftSB(SBInstance):
    """Raft engine scoped to a single segment (CFT: n >= 2f+1)."""

    def __init__(self, context: SBContext):
        super().__init__(context)
        self._rng = random.Random(
            context.config.random_seed * 1_000_003
            + context.node_id * 7919
            + context.segment.epoch * 104729
            + context.segment.leader
        )
        self.term = 0
        self.role = LEADER if context.is_leader else FOLLOWER
        self.voted_for: Dict[int, NodeId] = {}
        #: Replicated log of this instance (index 0 is the first entry).
        self.log: List[RaftEntry] = []
        self.commit_index = -1
        self._delivered: Set[SeqNr] = set()
        #: Leader volatile state.
        self._next_index: Dict[NodeId, int] = {}
        self._match_index: Dict[NodeId, int] = {}
        self._votes_received: Dict[int, Set[NodeId]] = {}
        #: Election timeout range (doubles when an election fails).
        self._election_range: Tuple[float, float] = context.config.election_timeout
        self._election_timer: Optional[Timer] = None
        self._heartbeat_timer: Optional[Timer] = None
        self._heartbeat_interval = max(0.5, context.config.election_timeout[0] / 5.0)
        self._pacer = ProposalPacer(context, self._leader_append)
        self._stopped = False
        self.elections_started = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self.role == LEADER:
            self._become_leader(initial=True)
        else:
            self._arm_election_timer()

    def stop(self) -> None:
        self._stopped = True
        self._pacer.stop()
        for timer in (self._election_timer, self._heartbeat_timer):
            if timer is not None:
                timer.cancel()

    # ------------------------------------------------------------ utilities
    @property
    def _majority(self) -> int:
        return self.context.num_nodes // 2 + 1

    def _last_log_index(self) -> int:
        return len(self.log) - 1

    def _last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def _all_delivered(self) -> bool:
        return len(self._delivered) == len(self.segment.seq_nrs)

    def _remaining_sns(self) -> List[SeqNr]:
        """Segment sequence numbers not present in this node's Raft log."""
        present = {entry.sn for entry in self.log}
        return [sn for sn in self.segment.seq_nrs if sn not in present]

    # ------------------------------------------------------------ leadership
    def _become_leader(self, initial: bool = False) -> None:
        self.role = LEADER
        if self._election_timer is not None:
            self._election_timer.cancel()
        for node in self.context.all_nodes:
            self._next_index[node] = len(self.log)
            self._match_index[node] = -1
        self._match_index[self.context.node_id] = self._last_log_index()
        if initial:
            # The segment leader proposes real batches, paced by the batch rate.
            self._pacer.start()
        else:
            # A failover leader appends ⊥ for every missing sequence number
            # right away (SB design rule 2), then keeps heartbeating.
            for sn in self._remaining_sns():
                self.log.append(RaftEntry(term=self.term, sn=sn, value=NIL))
            self._match_index[self.context.node_id] = self._last_log_index()
        self._send_heartbeats()

    def _leader_append(self, sn: SeqNr, batch: Batch) -> None:
        """Pacer callback at the initial (segment) leader."""
        if self._stopped or self.role != LEADER:
            return
        tracer = self.context.tracer
        if tracer is not None:
            tracer.on_sb(
                self.context.now(), self.context.node_id,
                self.context.segment.instance_id, sn, "append",
            )
        self.log.append(RaftEntry(term=self.term, sn=sn, value=batch))
        self._match_index[self.context.node_id] = self._last_log_index()
        self._replicate_to_all()
        self._maybe_advance_commit()

    def _replicate_to_all(self) -> None:
        for node in self.context.all_nodes:
            if node != self.context.node_id:
                self._send_append(node)

    def _send_append(self, follower: NodeId) -> None:
        next_index = self._next_index.get(follower, 0)
        prev_index = next_index - 1
        prev_term = self.log[prev_index].term if 0 <= prev_index < len(self.log) else 0
        entries = tuple(self.log[next_index:])
        message = AppendEntries(
            term=self.term,
            prev_index=prev_index,
            prev_term=prev_term,
            entries=entries,
            leader_commit=self.commit_index,
        )
        self.context.send(follower, message)

    def _send_heartbeats(self) -> None:
        if self._stopped or self.role != LEADER:
            return
        self._replicate_to_all()
        self._heartbeat_timer = self.context.schedule(
            self._heartbeat_interval, self._send_heartbeats
        )

    # -------------------------------------------------------------- messages
    def handle_message(self, src: NodeId, message: object) -> None:
        if self._stopped:
            return
        if isinstance(message, AppendEntries):
            self._on_append(src, message)
        elif isinstance(message, AppendReply):
            self._on_append_reply(src, message)
        elif isinstance(message, RequestVote):
            self._on_request_vote(src, message)
        elif isinstance(message, VoteReply):
            self._on_vote_reply(src, message)

    # ------------------------------------------------------------- followers
    def _on_append(self, src: NodeId, message: AppendEntries) -> None:
        if message.term < self.term:
            self.context.send(src, AppendReply(term=self.term, success=False, match_index=-1))
            return
        if message.term > self.term or self.role == CANDIDATE:
            self.term = max(self.term, message.term)
            self.role = FOLLOWER
        self._arm_election_timer()
        # Consistency check on the previous entry.
        if message.prev_index >= 0:
            if message.prev_index >= len(self.log) or self.log[message.prev_index].term != message.prev_term:
                self.context.send(
                    src, AppendReply(term=self.term, success=False, match_index=self._last_log_index())
                )
                return
        # Validate and append the new entries.
        insert_at = message.prev_index + 1
        for offset, entry in enumerate(message.entries):
            index = insert_at + offset
            if index < len(self.log):
                if self.log[index].term != entry.term:
                    del self.log[index:]
                else:
                    continue
            if not self._validate_entry(src, entry):
                self.context.send(
                    src, AppendReply(term=self.term, success=False, match_index=self._last_log_index())
                )
                return
            self.log.append(entry)
        if message.leader_commit > self.commit_index:
            self.commit_index = min(message.leader_commit, self._last_log_index())
            self._apply_committed()
        self.context.send(
            src, AppendReply(term=self.term, success=True, match_index=self._last_log_index())
        )

    def _validate_entry(self, src: NodeId, entry: RaftEntry) -> bool:
        if entry.sn not in self.segment.seq_nrs:
            return False
        if is_nil(entry.value):
            return True
        if src != self.context.segment.leader:
            return False
        if not isinstance(entry.value, Batch):
            return False
        return self.context.validate_batch(entry.value)

    def _apply_committed(self) -> None:
        for index in range(self.commit_index + 1):
            entry = self.log[index]
            if entry.sn in self._delivered:
                continue
            self._delivered.add(entry.sn)
            tracer = self.context.tracer
            if tracer is not None:
                tracer.on_sb(
                    self.context.now(), self.context.node_id,
                    self.context.segment.instance_id, entry.sn, "decided",
                )
            self.context.deliver(entry.sn, entry.value)
        if self._all_delivered() and self._election_timer is not None:
            self._election_timer.cancel()

    # ----------------------------------------------------------- leader acks
    def _on_append_reply(self, src: NodeId, message: AppendReply) -> None:
        if self.role != LEADER:
            return
        if message.term > self.term:
            self.term = message.term
            self.role = FOLLOWER
            self._arm_election_timer()
            return
        if message.success:
            self._match_index[src] = max(self._match_index.get(src, -1), message.match_index)
            self._next_index[src] = self._match_index[src] + 1
            self._maybe_advance_commit()
        else:
            # Back off and retry from an earlier index.
            self._next_index[src] = max(0, min(message.match_index + 1, self._next_index.get(src, 1) - 1))
            self._send_append(src)

    def _maybe_advance_commit(self) -> None:
        for index in range(self._last_log_index(), self.commit_index, -1):
            if self.log[index].term != self.term:
                continue
            acks = sum(1 for node in self.context.all_nodes if self._match_index.get(node, -1) >= index)
            if acks >= self._majority:
                self.commit_index = index
                self._apply_committed()
                self._replicate_to_all()  # propagate the new commit index
                break

    # -------------------------------------------------------------- elections
    def _arm_election_timer(self) -> None:
        if self._stopped or self._all_delivered():
            return
        if self._election_timer is not None:
            self._election_timer.cancel()
        low, high = self._election_range
        timeout = self._rng.uniform(low, high)
        self._election_timer = self.context.schedule(timeout, self._on_election_timeout)

    def _on_election_timeout(self) -> None:
        if self._stopped or self._all_delivered() or self.role == LEADER:
            return
        self.elections_started += 1
        self.term += 1
        self.role = CANDIDATE
        self.voted_for[self.term] = self.context.node_id
        self._votes_received[self.term] = {self.context.node_id}
        # Liveness under eventual synchrony: widen the election window each
        # time a term passes without a leader (Section 4.2.3).
        low, high = self._election_range
        self._election_range = (low * 2, high * 2)
        message = RequestVote(
            term=self.term,
            last_log_index=self._last_log_index(),
            last_log_term=self._last_log_term(),
        )
        self.context.broadcast(message, include_self=False)
        self._arm_election_timer()

    def _on_request_vote(self, src: NodeId, message: RequestVote) -> None:
        if message.term > self.term:
            self.term = message.term
            self.role = FOLLOWER
        granted = False
        if message.term == self.term and self.voted_for.get(self.term) in (None, src):
            up_to_date = (message.last_log_term, message.last_log_index) >= (
                self._last_log_term(),
                self._last_log_index(),
            )
            if up_to_date:
                granted = True
                self.voted_for[self.term] = src
                self._arm_election_timer()
        self.context.send(src, VoteReply(term=self.term, granted=granted))

    def _on_vote_reply(self, src: NodeId, message: VoteReply) -> None:
        if self.role != CANDIDATE or message.term != self.term:
            return
        if not message.granted:
            return
        votes = self._votes_received.setdefault(self.term, {self.context.node_id})
        votes.add(src)
        if len(votes) >= self._majority:
            self._become_leader(initial=False)

    # -------------------------------------------------------------- queries
    def committed_count(self) -> int:
        return len(self._delivered)
