"""Raft Sequenced-Broadcast implementation (crash fault tolerant)."""

from .messages import AppendEntries, AppendReply, RaftEntry, RequestVote, VoteReply
from .raft import RaftSB, FOLLOWER, CANDIDATE, LEADER

__all__ = [
    "RaftSB",
    "AppendEntries",
    "AppendReply",
    "RaftEntry",
    "RequestVote",
    "VoteReply",
    "FOLLOWER",
    "CANDIDATE",
    "LEADER",
]
