"""Raft protocol messages (per Sequenced-Broadcast instance)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.types import LogEntry, SeqNr, is_nil
from ..runtime.wire import register_batchable


@dataclass(frozen=True)
class RaftEntry:
    """One replicated log entry: a batch (or ⊥) destined for ISS position ``sn``."""

    term: int
    sn: SeqNr
    value: LogEntry

    def payload_size(self) -> int:
        if self.value is None or is_nil(self.value):
            return 1
        return self.value.size_bytes()


@dataclass(frozen=True)
class AppendEntries:
    """Leader → follower replication message (also the heartbeat when empty)."""

    term: int
    prev_index: int
    prev_term: int
    entries: Tuple[RaftEntry, ...]
    leader_commit: int

    def wire_size(self) -> int:
        return 64 + sum(24 + e.payload_size() for e in self.entries)


# Empty AppendEntries are pure heartbeats: small, periodic and latency-
# tolerant, so they may share a wire frame with replies and votes on the
# same link.  Entry-carrying AppendEntries stay unbatched — they are the
# replication critical path and their latency is the commit latency.
register_batchable(AppendEntries, predicate=lambda m: not m.entries)


@register_batchable
@dataclass(frozen=True)
class AppendReply:
    """Follower acknowledgement; ``match_index`` is the highest matching
    entry.  Batchable: replies for different instances travelling the same
    link within one flush tick share a wire frame."""

    term: int
    success: bool
    match_index: int

    def wire_size(self) -> int:
        return 48


@dataclass(frozen=True)
class RequestVote:
    """Candidate's vote solicitation."""

    term: int
    last_log_index: int
    last_log_term: int

    def wire_size(self) -> int:
        return 48


@register_batchable
@dataclass(frozen=True)
class VoteReply:
    """Response to a :class:`RequestVote` solicitation.  Batchable."""

    term: int
    granted: bool

    def wire_size(self) -> int:
        return 32
