"""Shared golden-trace plumbing for the seeded smoke gates.

``repro.recovery_smoke`` and ``repro.byzantine_smoke`` both pin a seeded
scenario to a JSON golden trace: a scenario block that must match exactly
(else the trace belongs to a different experiment) plus a set of pinned
figure keys that must replay bit-identically.  This module owns the
compare/record logic once so the gates cannot drift apart in semantics or
wording; each gate keeps only its scenario, its figures, and its semantic
(non-determinism) checks.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple


def check_against_golden(
    figures: Dict[str, object],
    path: Path,
    pinned_keys: Sequence[str],
    regression_label: str,
) -> Optional[str]:
    """Compare a smoke run against its golden trace.

    Returns None when every pinned key matches, else a human-readable
    error: missing trace, scenario mismatch, or — prefixed with
    ``regression_label`` — the first diverging pinned key.  Divergence of
    a same-seed run always means the schedule changed; the message tells
    the operator to re-record only for an *intentional* change.
    """
    if not path.exists():
        return (
            f"golden trace {path} does not exist — run with --update-golden "
            f"to record one"
        )
    golden = json.loads(path.read_text())
    # Wall-clock-derived figures (and thus the scheduling shape behind the
    # pinned counters) are only comparable within one simulator engine;
    # traces recorded before the engine field existed are all single-queue.
    golden_engine = golden.get("engine", "single")
    measured_engine = figures.get("engine", "single")
    if golden_engine != measured_engine:
        return (
            f"golden trace {path} was recorded under engine="
            f"{golden_engine!r} but this run used engine="
            f"{measured_engine!r} — cross-engine comparisons are refused; "
            f"re-run under the recorded engine or re-record with "
            f"--update-golden"
        )
    if golden.get("scenario") != figures["scenario"]:
        return (
            f"golden trace {path} was recorded for a different scenario — "
            f"re-record it with --update-golden"
        )
    for key in pinned_keys:
        if golden.get(key) != figures[key]:
            return (
                f"{regression_label}: {key} diverged from the golden trace "
                f"(golden {golden.get(key)!r}, measured {figures[key]!r}).  "
                f"Same-seed runs must replay identically; re-record with "
                f"--update-golden only for an intentional schedule change."
            )
    return None


def write_golden(figures: Dict[str, object], path: Path) -> None:
    """Record ``figures`` as the new golden trace at ``path``."""
    path.write_text(json.dumps(figures, indent=2) + "\n")


def delivered_trace(node) -> List[Tuple[int, str]]:
    """A node's delivered sequence as ``(sn, entry-digest-hex | "nil")``.

    The canonical shape every smoke gate digests into its ``trace_sha256``
    pin (``sha256(repr(trace))``) — owned here so the gates cannot drift
    into measuring different things.
    """
    from .core.types import is_nil  # deferred: keep this module dependency-light

    trace: List[Tuple[int, str]] = []
    for sn in range(node.log.first_undelivered):
        entry = node.log.entry(sn)
        trace.append((sn, "nil" if is_nil(entry) else entry.digest().hex()))
    return trace


def trace_sha256(node) -> str:
    """The ``sha256(repr(delivered_trace(node)))`` digest the gates pin."""
    return hashlib.sha256(repr(delivered_trace(node)).encode()).hexdigest()
