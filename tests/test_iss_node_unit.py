"""Unit-level tests for ISSNode internals (without a full workload)."""

import pytest

from repro.core.config import ISSConfig, NetworkConfig
from repro.core.iss import ISSNode
from repro.core.messages import InstanceMessage
from repro.core.types import Batch, NIL, SegmentDescriptor, is_nil
from repro.core.validation import sign_request
from repro.crypto.signatures import KeyStore
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from tests.conftest import make_request


class NodeHarness:
    """A single ISS node wired to a network with silent peers."""

    def __init__(self, num_nodes=4, **config_overrides):
        defaults = dict(
            epoch_length=8,
            max_batch_size=8,
            batch_rate=None,
            max_batch_timeout=0.5,
            view_change_timeout=3.0,
            epoch_change_timeout=3.0,
        )
        defaults.update(config_overrides)
        self.config = ISSConfig(num_nodes=num_nodes, **defaults)
        self.sim = Simulator(seed=4)
        net_config = NetworkConfig(jitter=0.0)
        self.network = Network(self.sim, net_config, LatencyModel(net_config, num_nodes))
        self.key_store = KeyStore(deployment_seed=1)
        self.delivered = []
        self.node = ISSNode(
            node_id=0,
            config=self.config,
            sim=self.sim,
            network=self.network,
            key_store=self.key_store,
            client_ids=[0, 1],
            on_deliver=lambda node_id, item: self.delivered.append(item),
        )
        # Peers exist on the network but never respond.
        for peer in range(1, num_nodes):
            self.network.register(peer, lambda src, msg: None)

    def signed_request(self, client=0, timestamp=0):
        return sign_request(self.key_store, make_request(client=client, timestamp=timestamp))


class TestRequestHandling:
    def test_valid_request_enters_bucket_queue(self):
        harness = NodeHarness()
        assert harness.node.submit_request(harness.signed_request())
        assert harness.node.pending_requests() == 1

    def test_invalid_signature_rejected(self):
        harness = NodeHarness()
        assert not harness.node.submit_request(make_request(client=0))
        assert harness.node.pending_requests() == 0

    def test_unknown_client_rejected(self):
        harness = NodeHarness()
        assert not harness.node.submit_request(harness.signed_request(client=9))

    def test_duplicate_submission_is_idempotent(self):
        harness = NodeHarness()
        request = harness.signed_request()
        assert harness.node.submit_request(request)
        assert not harness.node.submit_request(request)
        assert harness.node.pending_requests() == 1

    def test_signature_verification_can_be_disabled(self):
        harness = NodeHarness(client_signatures=False)
        assert harness.node.submit_request(make_request(client=0))


class TestEpochZeroSetup:
    def test_start_opens_one_instance_per_leader(self):
        harness = NodeHarness()
        harness.node.start()
        instances = list(harness.node.orderer.active_instances())
        assert len(instances) == len(harness.node.manager.leaders_for(0))

    def test_segments_cover_epoch_zero(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        sns = sorted(sn for s in segments for sn in s.seq_nrs)
        assert sns == list(range(harness.config.epoch_length))

    def test_crash_stops_instances(self):
        harness = NodeHarness()
        harness.node.start()
        harness.node.crash()
        assert harness.node.crashed
        assert list(harness.node.orderer.active_instances()) == []


class TestSBDeliverPath:
    def test_sb_deliver_commits_and_delivers_contiguously(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        request = harness.signed_request()
        harness.node.submit_request(request)
        batch = Batch.of([request])
        first_segment = next(s for s in segments if 0 in s.seq_nrs)
        harness.node._sb_deliver(first_segment, 0, batch)
        assert harness.node.log.has_entry(0)
        assert len(harness.delivered) == 1
        assert harness.delivered[0].request.rid == request.rid

    def test_nil_delivery_resurrects_own_proposal(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        own_segment = next(s for s in segments if s.leader == 0)
        request = harness.signed_request()
        harness.node.submit_request(request)
        sn = own_segment.seq_nrs[0]
        batch = harness.node._cut_batch(own_segment, sn)
        assert len(batch) == 1
        assert harness.node.pending_requests() == 0
        harness.node._sb_deliver(own_segment, sn, NIL)
        # The unsuccessfully proposed request went back to its bucket queue.
        assert harness.node.pending_requests() == 1

    def test_delivered_request_not_resurrected(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        own_segment = next(s for s in segments if s.leader == 0)
        other_segment = next(s for s in segments if s.leader != 0)
        request = harness.signed_request()
        harness.node.submit_request(request)
        sn = own_segment.seq_nrs[0]
        batch = harness.node._cut_batch(own_segment, sn)
        # The same request commits in another segment first (e.g. duplicate
        # submission raced): the later ⊥ must not resurrect it.
        harness.node._sb_deliver(other_segment, other_segment.seq_nrs[0], Batch.of([request]))
        harness.node._sb_deliver(own_segment, sn, NIL)
        assert harness.node.pending_requests() == 0

    def test_epoch_advances_when_all_positions_filled(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        for segment in segments:
            for sn in segment.seq_nrs:
                harness.node._sb_deliver(segment, sn, Batch.of(()))
        assert harness.node.current_epoch == 1
        assert harness.node.epochs_completed == 1

    def test_duplicate_sb_deliver_ignored(self):
        harness = NodeHarness()
        harness.node.start()
        segment = harness.node.manager.segments_for(0)[0]
        harness.node._sb_deliver(segment, segment.seq_nrs[0], Batch.of(()))
        harness.node._sb_deliver(segment, segment.seq_nrs[0], Batch.of(()))
        assert harness.node.log.committed_count() == 1


class TestBatchValidation:
    def test_rejects_request_outside_segment_buckets(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        request = harness.signed_request()
        bucket = harness.node.buckets.bucket_of(request.rid)
        wrong_segment = next(s for s in segments if bucket not in s.buckets)
        assert not harness.node._validate_batch(wrong_segment, Batch.of([request]))

    def test_accepts_request_in_correct_segment(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        request = harness.signed_request()
        bucket = harness.node.buckets.bucket_of(request.rid)
        right_segment = next(s for s in segments if bucket in s.buckets)
        assert harness.node._validate_batch(right_segment, Batch.of([request]))

    def test_rejects_already_delivered_request(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        request = harness.signed_request()
        bucket = harness.node.buckets.bucket_of(request.rid)
        segment = next(s for s in segments if bucket in s.buckets)
        harness.node._sb_deliver(segment, segment.seq_nrs[0], Batch.of([request]))
        assert not harness.node._validate_batch(segment, Batch.of([request]))

    def test_rejects_duplicate_within_batch(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        request = harness.signed_request()
        bucket = harness.node.buckets.bucket_of(request.rid)
        segment = next(s for s in segments if bucket in s.buckets)
        assert not harness.node._validate_batch(segment, Batch.of([request, request]))

    def test_rejects_same_request_in_two_different_batches(self):
        harness = NodeHarness()
        harness.node.start()
        segments = harness.node.manager.segments_for(0)
        request = harness.signed_request()
        other = harness.signed_request(timestamp=1)
        bucket = harness.node.buckets.bucket_of(request.rid)
        segment = next(s for s in segments if bucket in s.buckets)
        assert harness.node._validate_batch(segment, Batch.of([request]))
        conflicting = Batch.of([request, other])
        if harness.node.buckets.bucket_of(other.rid) not in segment.buckets:
            conflicting = Batch.of([request])
            # Re-validating the identical batch is fine; a different batch
            # containing the same request is not, which the next assert shows
            # using a padded copy.
            padded = Batch.of([request, request])
            assert not harness.node._validate_batch(segment, padded)
        else:
            assert not harness.node._validate_batch(segment, conflicting)


class TestInstanceMessageRouting:
    def test_future_epoch_messages_buffered(self):
        harness = NodeHarness()
        harness.node.start()
        message = InstanceMessage(instance_id=(1, 0), payload="future")
        harness.node.on_message(1, message)
        assert harness.node._pending_messages.get(1)

    def test_crashed_node_ignores_messages(self):
        harness = NodeHarness()
        harness.node.start()
        harness.node.crash()
        harness.node.on_message(1, InstanceMessage(instance_id=(0, 0), payload="x"))
        # No buffering, no processing.
        assert not harness.node._pending_messages
