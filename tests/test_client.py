"""Tests for the SMR client (leader targeting, responses, resubmission)."""

import pytest

from repro.core.buckets import bucket_of
from repro.core.client import Client
from repro.core.config import ISSConfig, NetworkConfig
from repro.core.messages import (
    BucketAssignmentMsg,
    ClientRequestMsg,
    ClientResponseMsg,
    client_endpoint,
    is_client_endpoint,
)
from repro.crypto.signatures import KeyStore
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


class ClientHarness:
    def __init__(self, num_nodes=4, **config_overrides):
        self.config = ISSConfig(num_nodes=num_nodes, epoch_length=8, batch_rate=None, **config_overrides)
        self.sim = Simulator(seed=9)
        net_config = NetworkConfig(jitter=0.0)
        self.network = Network(self.sim, net_config, LatencyModel(net_config, num_nodes))
        self.key_store = KeyStore(deployment_seed=8)
        #: Requests received per node.
        self.received = {n: [] for n in range(num_nodes)}
        for node in range(num_nodes):
            self.network.register(node, lambda src, msg, node=node: self.received[node].append(msg))
        self.completions = []
        self.client = Client(
            client_id=0,
            config=self.config,
            sim=self.sim,
            network=self.network,
            key_store=self.key_store,
            on_complete=lambda cid, req, s, c: self.completions.append((req.rid, c - s)),
        )

    def assignment_message(self, epoch, leaders):
        from repro.core.buckets import assignment_for_epoch

        assignment = assignment_for_epoch(epoch, leaders, self.config.num_nodes, self.config.num_buckets)
        pairs = tuple(sorted((b, leader) for leader, buckets in assignment.items() for b in buckets))
        return BucketAssignmentMsg(epoch=epoch, assignment=pairs)

    def deliver_assignment(self, epoch, leaders, from_nodes):
        message = self.assignment_message(epoch, leaders)
        for node in from_nodes:
            self.client.on_message(node, message)


class TestEndpoints:
    def test_client_endpoint_mapping(self):
        assert client_endpoint(3) == 1_000_003
        assert is_client_endpoint(client_endpoint(0))
        assert not is_client_endpoint(5)


class TestSubmission:
    def test_requests_signed_and_timestamped(self):
        harness = ClientHarness()
        first = harness.client.submit(b"a")
        second = harness.client.submit(b"b")
        assert first.rid.timestamp == 0 and second.rid.timestamp == 1
        assert len(first.signature) > 0

    def test_broadcast_to_all_nodes_without_assignment(self):
        harness = ClientHarness()
        harness.client.submit(b"x")
        harness.sim.run(until=2.0)
        assert all(len(harness.received[n]) == 1 for n in range(4))

    def test_targeted_submission_after_assignment(self):
        harness = ClientHarness()
        harness.deliver_assignment(0, [0, 1, 2, 3], from_nodes=[0, 1])
        request = harness.client.submit(b"x")
        harness.sim.run(until=2.0)
        receivers = [n for n in range(4) if harness.received[n]]
        # Targeted: current leader plus two projections, not all nodes...
        assert 1 <= len(receivers) <= 3
        # ...and the bucket's current leader is among them.
        bucket = bucket_of(request.rid, harness.config.num_buckets)
        from repro.core.buckets import assignment_for_epoch

        assignment = assignment_for_epoch(0, [0, 1, 2, 3], 4, harness.config.num_buckets)
        leader = next(l for l, buckets in assignment.items() if bucket in buckets)
        assert leader in receivers

    def test_assignment_needs_quorum(self):
        harness = ClientHarness()
        harness.deliver_assignment(0, [0, 1, 2, 3], from_nodes=[0])  # only one vote < f+1
        harness.client.submit(b"x")
        harness.sim.run(until=2.0)
        assert all(len(harness.received[n]) == 1 for n in range(4))  # still broadcast

    def test_stale_assignment_ignored(self):
        harness = ClientHarness()
        harness.deliver_assignment(1, [0, 1, 2, 3], from_nodes=[0, 1])
        harness.deliver_assignment(0, [0, 1], from_nodes=[0, 1])  # older epoch
        assert harness.client._assignment_epoch == 1


class TestResponses:
    def test_completion_after_weak_quorum(self):
        harness = ClientHarness()
        request = harness.client.submit(b"x")
        harness.client.on_message(0, ClientResponseMsg(rid=request.rid, sn=0, node=0))
        assert harness.completions == []
        harness.client.on_message(1, ClientResponseMsg(rid=request.rid, sn=0, node=1))
        assert len(harness.completions) == 1
        assert harness.client.pending_count() == 0

    def test_duplicate_responses_from_same_node_not_counted(self):
        harness = ClientHarness()
        request = harness.client.submit(b"x")
        harness.client.on_message(0, ClientResponseMsg(rid=request.rid, sn=0, node=0))
        harness.client.on_message(0, ClientResponseMsg(rid=request.rid, sn=0, node=0))
        assert harness.completions == []

    def test_unknown_request_response_ignored(self):
        harness = ClientHarness()
        from repro.core.types import RequestId

        harness.client.on_message(0, ClientResponseMsg(rid=RequestId(0, 99), sn=0, node=0))
        assert harness.completions == []


class TestAggregatedResponses:
    """Per-(client, batch) response aggregation keeps per-request semantics."""

    def _batch(self, node, entries):
        from repro.core.messages import ClientResponseBatchMsg

        return ClientResponseBatchMsg(client=0, entries=tuple(entries), node=node)

    def test_batched_entries_count_per_request(self):
        harness = ClientHarness()
        first = harness.client.submit(b"a")
        second = harness.client.submit(b"b")
        harness.client.on_message(
            0, self._batch(0, [(first.rid, 0), (second.rid, 1)])
        )
        assert harness.completions == []
        harness.client.on_message(
            1, self._batch(1, [(first.rid, 0), (second.rid, 1)])
        )
        # f+1 = 2 responses for each request: both complete.
        assert len(harness.completions) == 2
        assert harness.client.pending_count() == 0

    def test_partial_batch_completes_only_acknowledged(self):
        harness = ClientHarness()
        first = harness.client.submit(b"a")
        second = harness.client.submit(b"b")
        harness.client.on_message(0, self._batch(0, [(first.rid, 0), (second.rid, 1)]))
        harness.client.on_message(1, self._batch(1, [(first.rid, 0)]))
        assert [rid for rid, _lat in harness.completions] == [first.rid]
        assert harness.client.pending_count() == 1

    def test_mixed_single_and_batched_responses(self):
        harness = ClientHarness()
        request = harness.client.submit(b"a")
        harness.client.on_message(0, ClientResponseMsg(rid=request.rid, sn=0, node=0))
        harness.client.on_message(1, self._batch(1, [(request.rid, 0)]))
        assert len(harness.completions) == 1

    def test_duplicate_batched_responses_not_counted(self):
        harness = ClientHarness()
        request = harness.client.submit(b"a")
        harness.client.on_message(0, self._batch(0, [(request.rid, 0)]))
        harness.client.on_message(0, self._batch(0, [(request.rid, 0)]))
        assert harness.completions == []


class TestResubmission:
    def test_pending_requests_resubmitted_on_new_assignment(self):
        harness = ClientHarness()
        harness.client.submit(b"x")
        harness.sim.run(until=2.0)
        before = sum(len(msgs) for msgs in harness.received.values())
        harness.deliver_assignment(1, [0, 1, 2, 3], from_nodes=[0, 1])
        harness.sim.run(until=4.0)
        after = sum(len(msgs) for msgs in harness.received.values())
        assert after > before

    def test_completed_requests_not_resubmitted(self):
        harness = ClientHarness()
        request = harness.client.submit(b"x")
        harness.client.on_message(0, ClientResponseMsg(rid=request.rid, sn=0, node=0))
        harness.client.on_message(1, ClientResponseMsg(rid=request.rid, sn=0, node=1))
        harness.sim.run(until=2.0)
        before = sum(len(msgs) for msgs in harness.received.values())
        harness.deliver_assignment(1, [0, 1, 2, 3], from_nodes=[0, 1])
        harness.sim.run(until=4.0)
        after = sum(len(msgs) for msgs in harness.received.values())
        assert after == before

    def test_watermark_guard(self):
        harness = ClientHarness(client_watermark_window=2)
        harness.client.submit(b"a")
        assert harness.client.outstanding_within_watermarks()
        harness.client.submit(b"b")
        assert not harness.client.outstanding_within_watermarks()


class TestWatermarkGateOutOfOrder:
    """Regression: the client-side watermark gate must track the lowest
    uncompleted timestamp, not the pending count.

    The node-side window is anchored at the *contiguous* delivered prefix;
    when completions land out of order, a pending-count gate undercounts
    the outstanding span and lets a correct client emit timestamps every
    node rejects — and with no resubmission path on rejection, those
    requests wedge.  These tests fail on the pending-count implementation
    and pass on the lowest-uncompleted one.
    """

    def _complete(self, harness, request):
        """Deliver the f+1 responses that complete ``request``."""
        for node in (0, 1):
            harness.client.on_message(
                node, ClientResponseMsg(rid=request.rid, sn=0, node=node)
            )

    def test_out_of_order_completion_does_not_reopen_the_window(self):
        harness = ClientHarness(client_watermark_window=2)
        first = harness.client.submit(b"a")   # t=0
        second = harness.client.submit(b"b")  # t=1
        self._complete(harness, second)       # t=1 completes, t=0 stuck
        # Pending count is 1 (< window), but t=2 would be outside every
        # node's window [0, 2) until t=0 completes: the gate must hold.
        assert not harness.client.outstanding_within_watermarks()
        self._complete(harness, first)        # the prefix catches up
        assert harness.client.outstanding_within_watermarks()

    def test_emitted_timestamps_always_inside_node_window(self):
        """Property: whatever order completions arrive in, every timestamp
        the gate admits lies inside the node-side window."""
        from repro.core.validation import ClientWatermarks

        harness = ClientHarness(client_watermark_window=4)
        marks = ClientWatermarks(window=4)
        submitted = []
        # Complete in an adversarial order: newest first within waves.
        for _wave in range(5):
            while harness.client.outstanding_within_watermarks():
                request = harness.client.submit(b"x")
                assert marks.in_window(0, request.rid.timestamp), (
                    f"t={request.rid.timestamp} outside node window "
                    f"[{marks.low_watermark(0)}, "
                    f"{marks.low_watermark(0) + marks.window})"
                )
                submitted.append(request)
            for request in reversed(submitted):
                self._complete(harness, request)
                marks.note_delivered(0, request.rid.timestamp)
            submitted.clear()
            marks.advance_epoch()

    def test_lowest_uncompleted_tracks_contiguous_prefix(self):
        harness = ClientHarness(client_watermark_window=8)
        requests = [harness.client.submit(bytes([i])) for i in range(4)]
        self._complete(harness, requests[2])
        self._complete(harness, requests[1])
        assert harness.client._lowest_uncompleted == 0
        self._complete(harness, requests[0])  # prefix jumps over 1 and 2
        assert harness.client._lowest_uncompleted == 3
        self._complete(harness, requests[3])
        assert harness.client._lowest_uncompleted == 4
        assert not harness.client._completed_ahead  # buffer fully drained
