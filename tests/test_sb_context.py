"""Unit tests for the SBContext host interface and instance messages."""

import pytest

from repro.core.config import ISSConfig
from repro.core.messages import (
    BucketAssignmentMsg,
    ClientRequestMsg,
    ClientResponseMsg,
    InstanceMessage,
    client_endpoint,
)
from repro.core.sb import SBContext
from repro.core.types import Batch, RequestId, SegmentDescriptor
from repro.sim.simulator import Simulator
from tests.conftest import make_batch, make_request


class ContextHarness:
    def __init__(self, node_id=0, leader=0, num_nodes=4, **config_overrides):
        self.sim = Simulator()
        self.config = ISSConfig(num_nodes=num_nodes, epoch_length=8, batch_rate=None, **config_overrides)
        self.segment = SegmentDescriptor(epoch=1, leader=leader, seq_nrs=(1, 3, 5, 7), buckets=(0, 1))
        self.sent = []
        self.local = []
        self.delivered = []
        self.cut_calls = []
        self.pending = 0
        self.context = SBContext(
            node_id=node_id,
            config=self.config,
            segment=self.segment,
            all_nodes=list(range(num_nodes)),
            send_fn=lambda dst, msg: self.sent.append((dst, msg)),
            local_fn=lambda msg: self.local.append(msg),
            schedule_fn=self.sim.schedule,
            now_fn=lambda: self.sim.now,
            cut_batch_fn=lambda sn: self.cut_calls.append(sn) or make_batch(make_request(timestamp=sn)),
            validate_batch_fn=lambda batch: len(batch) < 3,
            deliver_fn=lambda sn, value: self.delivered.append((sn, value)),
            pending_fn=lambda: self.pending,
        )


class TestSBContext:
    def test_quorum_properties(self):
        harness = ContextHarness()
        assert harness.context.num_nodes == 4
        assert harness.context.max_faulty == 1
        assert harness.context.strong_quorum == 3
        assert harness.context.weak_quorum == 2

    def test_is_leader(self):
        assert ContextHarness(node_id=0, leader=0).context.is_leader
        assert not ContextHarness(node_id=1, leader=0).context.is_leader

    def test_send_to_peer_uses_network(self):
        harness = ContextHarness()
        harness.context.send(2, "msg")
        assert harness.sent == [(2, "msg")]
        assert harness.local == []

    def test_send_to_self_short_circuits(self):
        harness = ContextHarness()
        harness.context.send(0, "msg")
        assert harness.sent == []
        assert harness.local == ["msg"]

    def test_broadcast_includes_self_by_default(self):
        harness = ContextHarness()
        harness.context.broadcast("msg")
        assert len(harness.sent) == 3
        assert harness.local == ["msg"]

    def test_broadcast_can_exclude_self(self):
        harness = ContextHarness()
        harness.context.broadcast("msg", include_self=False)
        assert len(harness.sent) == 3
        assert harness.local == []

    def test_cut_batch_delegates(self):
        harness = ContextHarness()
        batch = harness.context.cut_batch(3)
        assert harness.cut_calls == [3]
        assert len(batch) == 1

    def test_validate_and_deliver_delegate(self):
        harness = ContextHarness()
        assert harness.context.validate_batch(make_batch(make_request()))
        assert not harness.context.validate_batch(
            make_batch(*(make_request(timestamp=i) for i in range(5)))
        )
        harness.context.deliver(3, make_batch())
        assert harness.delivered[0][0] == 3

    def test_batch_ready_uses_pending_and_config(self):
        harness = ContextHarness(max_batch_size=10)
        harness.pending = 5
        assert not harness.context.batch_ready()
        harness.pending = 10
        assert harness.context.batch_ready()

    def test_may_propose_defaults_to_true(self):
        harness = ContextHarness()
        assert harness.context.may_propose(1)

    def test_schedule_uses_simulator(self):
        harness = ContextHarness()
        fired = []
        harness.context.schedule(1.0, lambda: fired.append(harness.context.now()))
        harness.sim.run()
        assert fired == [1.0]


class TestMessageEnvelopes:
    def test_instance_message_wire_size_includes_payload(self):
        inner = make_batch(make_request(payload=b"x" * 100))
        message = InstanceMessage(instance_id=(0, 1), payload=inner)
        assert message.wire_size() > inner.size_bytes()

    def test_client_request_wire_size(self):
        request = make_request(payload=b"y" * 200)
        assert ClientRequestMsg(request=request).wire_size() > 200

    def test_client_response_and_assignment_sizes(self):
        response = ClientResponseMsg(rid=RequestId(0, 1), sn=5, node=2)
        assert response.wire_size() > 0
        assignment = BucketAssignmentMsg(epoch=1, assignment=((0, 1), (1, 2)))
        assert assignment.wire_size() == 16 + 16

    def test_client_endpoint_disjoint_from_nodes(self):
        assert client_endpoint(0) > 100_000
