"""Unit tests for Byzantine reliable broadcast (Bracha)."""

from typing import Dict, List

import pytest

from repro.consensus.brb import BrbEcho, BrbReady, BrbSend, ReliableBroadcast


class BrbHarness:
    """Direct-wired BRB instances with a controllable message queue."""

    def __init__(self, num_nodes=4, max_faulty=1, sender=0):
        self.num_nodes = num_nodes
        self.delivered: Dict[int, List[object]] = {n: [] for n in range(num_nodes)}
        self.queue: List[tuple] = []
        self.blocked = set()
        self.instances = {
            node: ReliableBroadcast(
                instance="test",
                node_id=node,
                sender=sender,
                num_nodes=num_nodes,
                max_faulty=max_faulty,
                broadcast_fn=lambda msg, node=node: self._broadcast(node, msg),
                deliver_fn=lambda payload, node=node: self.delivered[node].append(payload),
            )
            for node in range(num_nodes)
        }

    def _broadcast(self, src, message):
        for dst in range(self.num_nodes):
            self.queue.append((src, dst, message))

    def flush(self):
        while self.queue:
            src, dst, message = self.queue.pop(0)
            if src in self.blocked or dst in self.blocked:
                continue
            self.instances[dst].handle_message(src, message)


class TestReliableBroadcast:
    def test_all_correct_nodes_deliver_senders_payload(self):
        harness = BrbHarness()
        harness.instances[0].brb_cast("payload")
        harness.flush()
        for node in range(4):
            assert harness.delivered[node] == ["payload"]

    def test_no_duplication(self):
        harness = BrbHarness()
        harness.instances[0].brb_cast("payload")
        harness.flush()
        harness.instances[0].brb_cast("payload")
        harness.flush()
        for node in range(4):
            assert len(harness.delivered[node]) == 1

    def test_only_designated_sender_can_cast(self):
        harness = BrbHarness(sender=0)
        with pytest.raises(PermissionError):
            harness.instances[1].brb_cast("x")

    def test_nothing_delivered_without_cast(self):
        harness = BrbHarness()
        harness.flush()
        assert all(not delivered for delivered in harness.delivered.values())

    def test_totality_with_crashed_sender_after_send(self):
        """The sender crashing right after SEND does not prevent delivery."""
        harness = BrbHarness()
        harness.instances[0].brb_cast("v")
        # Deliver the initial SEND to everyone, then crash the sender: its
        # own ECHO/READY messages are lost, the three correct nodes suffice.
        initial_sends = [entry for entry in harness.queue if isinstance(entry[2], BrbSend)]
        harness.queue = [e for e in harness.queue if not isinstance(e[2], BrbSend)]
        for src, dst, message in initial_sends:
            if dst != 0:
                harness.instances[dst].handle_message(src, message)
        harness.blocked.add(0)
        harness.flush()
        for node in (1, 2, 3):
            assert harness.delivered[node] == ["v"]

    def test_echo_quorum_required(self):
        """With only f echoes for a value no node delivers it."""
        harness = BrbHarness()
        echo = BrbEcho(instance="test", payload="forged")
        harness.instances[1].handle_message(3, echo)
        harness.flush()
        assert all(not delivered for delivered in harness.delivered.values())

    def test_ready_amplification_from_f_plus_1(self):
        """f+1 READYs make a correct node send its own READY (Bracha amplification)."""
        harness = BrbHarness()
        ready = BrbReady(instance="test", payload="v")
        harness.instances[1].handle_message(2, ready)
        harness.instances[1].handle_message(3, ready)
        sent_ready = [msg for _, _, msg in harness.queue if isinstance(msg, BrbReady)]
        assert sent_ready, "node 1 should have amplified the READY"

    def test_delivery_needs_2f_plus_1_readies(self):
        harness = BrbHarness()
        ready = BrbReady(instance="test", payload="v")
        harness.instances[1].handle_message(2, ready)
        harness.instances[1].handle_message(3, ready)
        assert harness.delivered[1] == []
        harness.instances[1].handle_message(0, ready)
        assert harness.delivered[1] == ["v"]

    def test_send_from_non_sender_ignored(self):
        harness = BrbHarness(sender=0)
        harness.instances[1].handle_message(2, BrbSend(instance="test", payload="fake"))
        # Node 1 must not echo a SEND that did not come from the sender.
        echoes = [msg for _, _, msg in harness.queue if isinstance(msg, BrbEcho)]
        assert not echoes
