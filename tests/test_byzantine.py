"""Active Byzantine adversary suite: safety, detection, containment.

Covers the acceptance claims of the adversary subsystem:

* with f Byzantine leaders (equivocation or censorship) all correct nodes
  deliver identical request sequences over every shared position,
* censored-bucket requests are eventually delivered once rotation hands
  the buckets to honest leaders (Blacklist policy active),
* detection counters (equivocations detected, invalid signatures
  rejected) surface through ``RunReport.byzantine``,
* the machinery composes with the rest of the stack: wire batching on
  AND off, and a correct node crash/restarting in the same run as a
  Byzantine leader (the PR 3 liveness wedges showed SB changes must be
  stressed exactly this way),
* the BRB layer on its own tolerates an equivocating designated sender,
* the seeded Byzantine smoke scenario replays against its golden trace.
"""

import json

import pytest

from repro.consensus.brb import BrbSend, ReliableBroadcast
from repro.core.config import ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.types import Batch, Request, RequestId
from repro.harness.runner import Deployment
from repro.harness.scenarios import (
    byzantine_point,
    censorship_rotation,
    correct_nodes,
    delivered_prefix_matches,
    prefixes_identical,
)
from repro.sim.adversary import (
    EquivocationAdversary,
    InvalidVoteAdversary,
    ReplayAdversary,
    make_adversary,
)
from repro.sim.faults import (
    BYZ_CENSOR,
    BYZ_EQUIVOCATE,
    BYZ_INVALID_VOTES,
    BYZ_REPLAY,
    ByzantineSpec,
    CrashSpec,
    RestartSpec,
)
from repro.workload.faults import byzantine_leaders, censorship_targets

from repro import byzantine_smoke


def small_config(protocol="pbft", num_nodes=4, seed=7, **overrides):
    defaults = dict(
        epoch_length=16,
        max_batch_size=64,
        batch_rate=8.0,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
        send_client_responses=False,
        random_seed=seed,
    )
    if protocol == "hotstuff":
        defaults.update(batch_rate=None, min_batch_timeout=0.1, max_batch_timeout=0.0,
                        min_segment_size=4)
    if protocol == "raft":
        defaults.update(byzantine=False, client_signatures=False, min_segment_size=4,
                        election_timeout=(5.0, 10.0))
    defaults.update(overrides)
    return ISSConfig(num_nodes=num_nodes, protocol=protocol, **defaults)


def run_adversarial(
    config,
    specs,
    duration=12.0,
    rate=300.0,
    drain_time=10.0,
    batch_flush_interval=0.0,
    crash_specs=(),
    restart_specs=(),
):
    deployment = Deployment(
        config,
        network_config=NetworkConfig(batch_flush_interval=batch_flush_interval),
        workload=WorkloadConfig(num_clients=4, total_rate=rate, duration=duration),
        byzantine_specs=specs,
        crash_specs=crash_specs,
        restart_specs=restart_specs,
        drain_time=drain_time,
    )
    return deployment, deployment.run()


class TestByzantineSpec:
    def test_rejects_unknown_behaviour(self):
        with pytest.raises(ValueError):
            ByzantineSpec(node=0, behaviour="meltdown")

    def test_censor_requires_buckets(self):
        with pytest.raises(ValueError):
            ByzantineSpec(node=0, behaviour=BYZ_CENSOR)

    def test_replay_requires_factor(self):
        with pytest.raises(ValueError):
            ByzantineSpec(node=0, behaviour=BYZ_REPLAY, replay_factor=1)

    def test_make_adversary_types(self):
        assert isinstance(make_adversary(ByzantineSpec(node=1)), EquivocationAdversary)
        assert isinstance(
            make_adversary(ByzantineSpec(node=1, behaviour=BYZ_INVALID_VOTES)),
            InvalidVoteAdversary,
        )
        assert isinstance(
            make_adversary(ByzantineSpec(node=1, behaviour=BYZ_REPLAY)),
            ReplayAdversary,
        )
        # Censorship is node behaviour, not a send hook.
        assert make_adversary(
            ByzantineSpec(node=1, behaviour=BYZ_CENSOR, buckets=(0,))
        ) is None


class TestEquivocation:
    @pytest.mark.parametrize("flush_interval", [0.0, 0.02], ids=["unbatched", "batched"])
    def test_pbft_safety_detection_eviction(self, flush_interval):
        """Equivocating leader: identical prefixes, ⊥ slots, detection,
        Blacklist eviction — with wire batching off and on."""
        specs = byzantine_leaders(1, 4, behaviour=BYZ_EQUIVOCATE)
        deployment, result = run_adversarial(
            small_config(), specs, batch_flush_interval=flush_interval
        )
        report = result.report
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert report.completed > 0
        # The adversary actually attacked...
        assert deployment.injector.adversary_for(3).equivocations_sent > 0
        # ...the attacked slots stalled into ⊥ and were attributed...
        assert all(node.nil_committed > 0 for node in correct)
        # ...every correct node proved the equivocation from f+1 votes...
        per_node = report.byzantine["per_node"]
        for node in correct:
            assert per_node[node.node_id]["equivocations_detected"] > 0
        # ...and the Blacklist policy rotated the adversary out.
        sample = correct[0]
        assert 3 not in sample.manager.leaders_for(sample.current_epoch)

    def test_hotstuff_safety_and_eviction(self):
        specs = byzantine_leaders(1, 4, behaviour=BYZ_EQUIVOCATE)
        deployment, result = run_adversarial(
            small_config("hotstuff"), specs, duration=12.0, drain_time=12.0
        )
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert result.report.completed > 0
        assert all(node.nil_committed > 0 for node in correct)
        sample = correct[0]
        assert 3 not in sample.manager.leaders_for(sample.current_epoch)

    def test_f_adversaries_at_seven_nodes(self):
        """f = 2 equivocating leaders out of n = 7: still safe, still live."""
        specs = byzantine_leaders(2, 7, behaviour=BYZ_EQUIVOCATE)
        deployment, result = run_adversarial(
            small_config(num_nodes=7), specs, duration=12.0, drain_time=12.0
        )
        correct = correct_nodes(result, specs)
        assert len(correct) == 5
        assert prefixes_identical(correct)
        assert result.report.completed > 0

    def test_delayed_start(self):
        """An adversary that turns Byzantine mid-run is installed on time."""
        spec = ByzantineSpec(node=3, behaviour=BYZ_EQUIVOCATE, start_time=6.0)
        deployment, result = run_adversarial(small_config(), [spec])
        adversary = deployment.injector.adversary_for(3)
        assert adversary is not None and adversary.equivocations_sent > 0
        assert prefixes_identical(correct_nodes(result, [spec]))


class TestCensorship:
    def test_censored_buckets_eventually_delivered(self):
        """Bucket rotation delivers everything a censoring leader drops."""
        config = small_config()
        buckets = censorship_targets(config.num_buckets, 4)
        specs = byzantine_leaders(1, 4, behaviour=BYZ_CENSOR, buckets=buckets)
        deployment, result = run_adversarial(
            config, specs, duration=10.0, drain_time=20.0
        )
        report = result.report
        censored = report.byzantine["censored"]
        assert censored["buckets"] == sorted(buckets)
        assert censored["submitted"] > 0
        # Every censored request completed once its bucket rotated to an
        # honest leader (the generous drain covers the rotation lag).
        assert censored["completed"] == censored["submitted"]
        assert censored["latency"].count == censored["completed"]
        assert prefixes_identical(correct_nodes(result, specs))
        # The adversary's own queues hold no hostage requests at the end.
        for node in correct_nodes(result, specs):
            assert node.buckets.pending_in(buckets) == 0

    def test_censor_start_time_is_honoured(self):
        """A censor spec with a future start_time censors nothing: the run
        is bit-identical (deliveries and traffic) to a clean one."""
        config = small_config()
        buckets = censorship_targets(config.num_buckets, 4)
        specs = [
            ByzantineSpec(
                node=3, behaviour=BYZ_CENSOR, start_time=1e9, buckets=tuple(buckets)
            )
        ]
        armed_dep, armed = run_adversarial(small_config(), specs)
        clean_dep, clean = run_adversarial(small_config(), [])
        assert armed.report.completed == clean.report.completed
        assert (
            armed_dep.network.stats.messages_sent
            == clean_dep.network.stats.messages_sent
        )
        censored = armed.report.byzantine["censored"]
        assert censored["completed"] == censored["submitted"]

    @pytest.mark.parametrize("behaviour", [BYZ_CENSOR, BYZ_REPLAY])
    def test_raft_survives_in_model_behaviours(self, behaviour):
        """Raft (CFT) paired only with behaviours inside its fault model."""
        config = small_config("raft")
        buckets = (
            censorship_targets(config.num_buckets, 4)
            if behaviour == BYZ_CENSOR
            else ()
        )
        specs = byzantine_leaders(1, 4, behaviour=behaviour, buckets=buckets)
        deployment, result = run_adversarial(
            config, specs, duration=10.0, drain_time=15.0
        )
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert result.report.completed > 0
        if behaviour == BYZ_CENSOR:
            censored = result.report.byzantine["censored"]
            assert censored["completed"] == censored["submitted"] > 0

    def test_censorship_rotation_scenario(self):
        row = censorship_rotation(num_nodes=4, rate=300.0, duration=8.0)
        assert row["prefixes_identical"]
        assert row["censored_submitted"] > 0
        assert row["censored_completion_ratio"] >= 0.95


class TestInvalidVotes:
    def test_forged_votes_rejected_and_counted(self):
        specs = byzantine_leaders(1, 4, behaviour=BYZ_INVALID_VOTES)
        deployment, result = run_adversarial(small_config(), specs)
        report = result.report
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert report.completed > 0
        assert deployment.injector.adversary_for(3).votes_forged > 0
        per_node = report.byzantine["per_node"]
        # Forged checkpoint signatures are rejected (and counted) at every
        # correct node; epochs still stabilise on the honest 2f+1.
        for node in correct:
            assert per_node[node.node_id]["invalid_sigs_rejected"] > 0
            assert node.epochs_completed > 0

    def test_hotstuff_rejects_forged_partials(self):
        specs = byzantine_leaders(1, 4, behaviour=BYZ_INVALID_VOTES)
        deployment, result = run_adversarial(
            small_config("hotstuff"), specs, duration=10.0, drain_time=12.0
        )
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert result.report.completed > 0
        assert sum(node.invalid_votes_rejected for node in correct) > 0


class TestReplayFlooding:
    @pytest.mark.parametrize("flush_interval", [0.0, 0.02], ids=["unbatched", "batched"])
    def test_duplicates_absorbed(self, flush_interval):
        specs = byzantine_leaders(1, 4, behaviour=BYZ_REPLAY, replay_factor=3)
        deployment, result = run_adversarial(
            small_config(), specs, batch_flush_interval=flush_interval
        )
        report = result.report
        adversary = deployment.injector.adversary_for(3)
        assert adversary.duplicates_sent > 0
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert report.completed > 0
        # Idempotence: no request is ever delivered twice at any node.
        for node in correct:
            delivered = [
                node.log.entry(sn)
                for sn in range(node.log.first_undelivered)
            ]
            rids = [
                request.rid
                for entry in delivered
                if isinstance(entry, Batch)
                for request in entry.requests
            ]
            assert len(rids) == len(set(rids))

    def test_replay_matches_clean_delivery(self):
        """Flooding changes traffic, never what correct nodes deliver."""
        clean_dep, clean = run_adversarial(small_config(), [])
        specs = byzantine_leaders(1, 4, behaviour=BYZ_REPLAY, replay_factor=4)
        noisy_dep, noisy = run_adversarial(small_config(), specs)
        assert noisy_dep.network.stats.messages_sent > clean_dep.network.stats.messages_sent
        assert noisy.report.completed == clean.report.completed


class TestAdversaryCrashInterplay:
    @pytest.mark.parametrize("flush_interval", [0.0, 0.02], ids=["unbatched", "batched"])
    def test_byzantine_leader_plus_correct_node_restart(self, flush_interval):
        """A correct node crash/restarts while another node equivocates.

        The recovered node must catch up through state transfer and agree
        with every other correct node despite the adversary staying active
        the whole time — the crash-recovery and adversary machineries must
        compose.
        """
        specs = byzantine_leaders(1, 4, behaviour=BYZ_EQUIVOCATE)
        deployment, result = run_adversarial(
            small_config(seed=11),
            specs,
            duration=20.0,
            drain_time=12.0,
            batch_flush_interval=flush_interval,
            crash_specs=[CrashSpec(node=1, trigger="at-time", time=4.0)],
            restart_specs=[RestartSpec(node=1, time=12.0)],
        )
        report = result.report
        assert report.recoveries, "the restarted node must produce a recovery record"
        assert report.recoveries[0]["time_to_caught_up"] >= 0.0
        correct = correct_nodes(result, specs)
        assert len(correct) == 3  # restarted node counts as correct again
        assert prefixes_identical(correct)
        restarted = result.nodes[1]
        assert restarted.delivered_count() > 0
        assert report.completed > 0

    def test_byzantine_node_crash_then_restart_stays_byzantine(self):
        """An adversary that crashes and comes back keeps its send hook."""
        specs = byzantine_leaders(1, 4, behaviour=BYZ_EQUIVOCATE)
        deployment, result = run_adversarial(
            small_config(seed=11),
            specs,
            duration=18.0,
            drain_time=10.0,
            crash_specs=[CrashSpec(node=3, trigger="at-time", time=5.0)],
            restart_specs=[RestartSpec(node=3, time=9.0)],
        )
        assert deployment.injector.adversary_for(3) is not None
        correct = correct_nodes(result, specs)
        assert prefixes_identical(correct)
        assert result.report.completed > 0


class TestBrbEquivocation:
    """The BRB layer alone already defuses an equivocating sender."""

    NUM_NODES = 4
    MAX_FAULTY = 1

    def _cluster(self):
        queues = []
        nodes = {}

        def broadcast_from(src):
            def fn(message):
                for dst in nodes:
                    queues.append((src, dst, message))
            return fn

        delivered = {}
        for node in range(self.NUM_NODES):
            nodes[node] = ReliableBroadcast(
                instance="i",
                node_id=node,
                sender=0,
                num_nodes=self.NUM_NODES,
                max_faulty=self.MAX_FAULTY,
                broadcast_fn=broadcast_from(node),
                deliver_fn=lambda payload, n=node: delivered.__setitem__(n, payload),
            )
        return nodes, queues, delivered

    def _flush(self, nodes, queues):
        while queues:
            src, dst, message = queues.pop(0)
            nodes[dst].handle_message(src, message)

    def test_equivocating_sender_cannot_split_delivery(self):
        nodes, queues, delivered = self._cluster()
        # Byzantine sender 0: payload "A" to nodes {0, 1}, "B" to {2, 3}.
        for dst in (0, 1):
            queues.append((0, dst, BrbSend(instance="i", payload="A")))
        for dst in (2, 3):
            queues.append((0, dst, BrbSend(instance="i", payload="B")))
        self._flush(nodes, queues)
        # Agreement: no two correct nodes deliver different payloads.
        values = {payload for node, payload in delivered.items() if node != 0}
        assert len(values) <= 1


class TestByzantineSmokeGolden:
    def test_matches_byzantine_golden_trace(self):
        """The seeded equivocation scenario replays bit-identically."""
        figures = byzantine_smoke.run_smoke()
        assert figures["prefixes_identical"]
        assert figures["adversary_evicted"]
        assert figures["equivocations_detected_total"] > 0
        assert byzantine_smoke.check_against_golden(
            figures, byzantine_smoke.golden_path()
        ) is None

    def test_golden_trace_file_is_well_formed(self):
        golden = json.loads(byzantine_smoke.golden_path().read_text())
        assert golden["trace_len"] > 0
        assert len(golden["trace_sha256"]) == 64
        assert golden["equivocations_detected_total"] > 0
