"""End-to-end total-order tests: all nodes deliver the same request sequence.

The SMR properties are about *per-request* total order (Equation 2), not just
per-batch agreement, so these tests compare the exact delivered request
sequences across nodes, including under faults and unreliable links.
"""

import pytest

from repro.core.config import ISSConfig, NetworkConfig, WorkloadConfig
from repro.harness.runner import Deployment
from repro.workload.faults import epoch_start_crashes


def run_deployment(num_nodes=4, protocol="pbft", duration=8.0, rate=200.0,
                   crash_specs=(), drop_rate=0.0, **overrides):
    defaults = dict(
        epoch_length=16,
        max_batch_size=32,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=3.0,
        epoch_change_timeout=3.0,
    )
    if protocol == "raft":
        defaults.update(byzantine=False, client_signatures=False, min_segment_size=4,
                        election_timeout=(3.0, 6.0))
    defaults.update(overrides)
    config = ISSConfig(num_nodes=num_nodes, protocol=protocol, **defaults)
    workload = WorkloadConfig(num_clients=4, total_rate=rate, duration=duration, payload_size=64)
    network = NetworkConfig(drop_rate=drop_rate)
    deployment = Deployment(
        config, network_config=network, workload=workload, crash_specs=crash_specs, drain_time=10.0
    )
    # Track the exact delivered request sequence per node.
    sequences = {node.node_id: [] for node in deployment.nodes}
    collector_callback = deployment.collector.record_delivery

    def tracking(node_id, delivered):
        sequences[node_id].append((delivered.sn, delivered.request.rid))
        collector_callback(node_id, delivered)

    for node in deployment.nodes:
        node.on_deliver = tracking
    result = deployment.run()
    return result, sequences


def assert_common_prefix(sequences, alive_ids):
    reference_id = min(alive_ids)
    reference = sequences[reference_id]
    for node_id in alive_ids:
        other = sequences[node_id]
        for index in range(min(len(reference), len(other))):
            assert reference[index] == other[index], (
                f"request order diverges at position {index} between nodes "
                f"{reference_id} and {node_id}"
            )


class TestTotalOrder:
    def test_request_sequence_identical_across_nodes(self):
        result, sequences = run_deployment()
        alive = [n.node_id for n in result.nodes if not n.crashed]
        assert_common_prefix(sequences, alive)
        # Request sequence numbers are gapless 0..k at every node (Equation 2).
        for node_id in alive:
            sns = [sn for sn, _ in sequences[node_id]]
            assert sns == list(range(len(sns)))

    def test_request_sequence_identical_under_crash(self):
        result, sequences = run_deployment(
            duration=15.0, crash_specs=epoch_start_crashes(1, 4, epoch=0)
        )
        alive = [n.node_id for n in result.nodes if not n.crashed]
        assert_common_prefix(sequences, alive)

    def test_request_sequence_identical_for_raft(self):
        result, sequences = run_deployment(protocol="raft", num_nodes=3)
        alive = [n.node_id for n in result.nodes if not n.crashed]
        assert_common_prefix(sequences, alive)

    def test_no_request_delivered_twice_at_any_node(self):
        result, sequences = run_deployment(duration=10.0)
        for node_id, sequence in sequences.items():
            rids = [rid for _, rid in sequence]
            assert len(rids) == len(set(rids))

    def test_raft_total_order_with_lossy_links(self):
        """Raft's retransmissions mask a lossy network; order still agrees."""
        result, sequences = run_deployment(
            protocol="raft", num_nodes=3, duration=10.0, rate=100.0, drop_rate=0.05
        )
        alive = [n.node_id for n in result.nodes if not n.crashed]
        assert result.report.completed > 0
        assert_common_prefix(sequences, alive)
