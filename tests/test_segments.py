"""Unit tests for epoch/segment arithmetic."""

import pytest

from repro.core.segment import (
    LAYOUT_CONTIGUOUS,
    LAYOUT_ROUND_ROBIN,
    build_segments,
    epoch_first_sn,
    epoch_last_sn,
    epoch_of,
    epoch_seq_nrs,
    segment_of,
    segment_seq_nrs,
    validate_epoch_partition,
)


class TestEpochMath:
    def test_epoch_of(self):
        assert epoch_of(0, 12) == 0
        assert epoch_of(11, 12) == 0
        assert epoch_of(12, 12) == 1
        assert epoch_of(25, 12) == 2

    def test_epoch_boundaries_are_contiguous(self):
        """max(Sn(e)) + 1 == min(Sn(e+1)) for all e (Section 2.3)."""
        for epoch in range(5):
            assert epoch_last_sn(epoch, 12) + 1 == epoch_first_sn(epoch + 1, 12)

    def test_epoch_seq_nrs(self):
        assert list(epoch_seq_nrs(1, 12)) == list(range(12, 24))

    def test_negative_sn_rejected(self):
        with pytest.raises(ValueError):
            epoch_of(-1, 12)


class TestSegmentSeqNrs:
    def test_paper_figure1_example(self):
        """Epoch 0 with 3 segments over 12 sequence numbers (Figure 1)."""
        seg0 = segment_seq_nrs(0, 0, 3, 12)
        seg1 = segment_seq_nrs(0, 1, 3, 12)
        seg2 = segment_seq_nrs(0, 2, 3, 12)
        assert seg0 == (0, 3, 6, 9)
        assert seg1 == (1, 4, 7, 10)
        assert seg2 == (2, 5, 8, 11)
        assert max(seg1) == 10  # max(Seg(0,1)) = 10 as stated in the caption

    def test_epoch1_with_two_segments(self):
        """Epoch 1 with 2 segments: max(Sn(1)) = 23 (Figure 1)."""
        seg0 = segment_seq_nrs(1, 0, 2, 12)
        seg1 = segment_seq_nrs(1, 1, 2, 12)
        assert sorted(seg0 + seg1) == list(range(12, 24))
        assert max(seg0 + seg1) == 23

    @pytest.mark.parametrize("num_leaders", [1, 2, 3, 4, 5])
    def test_round_robin_partitions_epoch(self, num_leaders):
        epoch_length = 20
        all_sns = []
        for index in range(num_leaders):
            all_sns.extend(segment_seq_nrs(2, index, num_leaders, epoch_length))
        assert sorted(all_sns) == list(epoch_seq_nrs(2, epoch_length))

    @pytest.mark.parametrize("num_leaders", [1, 2, 3, 4, 5])
    def test_contiguous_partitions_epoch(self, num_leaders):
        epoch_length = 20
        all_sns = []
        for index in range(num_leaders):
            all_sns.extend(
                segment_seq_nrs(2, index, num_leaders, epoch_length, layout=LAYOUT_CONTIGUOUS)
            )
        assert sorted(all_sns) == list(epoch_seq_nrs(2, epoch_length))

    def test_segment_sizes_balanced(self):
        sizes = [len(segment_seq_nrs(0, i, 3, 16)) for i in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_leader_index(self):
        with pytest.raises(ValueError):
            segment_seq_nrs(0, 3, 3, 12)

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            segment_seq_nrs(0, 0, 2, 12, layout="diagonal")


class TestBuildSegments:
    def test_segments_carry_leaders_and_buckets(self):
        segments = build_segments(epoch=0, leaders=[0, 1, 2], num_nodes=4, epoch_length=12, num_buckets=64)
        assert [s.leader for s in segments] == [0, 1, 2]
        validate_epoch_partition(segments, 0, 12, 64)

    def test_bucket_partition_holds_for_partial_leadersets(self):
        segments = build_segments(epoch=3, leaders=[1, 3], num_nodes=4, epoch_length=16, num_buckets=64)
        validate_epoch_partition(segments, 3, 16, 64)

    def test_segment_of_lookup(self):
        segments = build_segments(epoch=0, leaders=[0, 1], num_nodes=4, epoch_length=8, num_buckets=16)
        segment = segment_of(5, segments)
        assert 5 in segment.seq_nrs
        with pytest.raises(KeyError):
            segment_of(99, segments)

    def test_duplicate_leaders_rejected(self):
        with pytest.raises(ValueError):
            build_segments(epoch=0, leaders=[0, 0], num_nodes=4, epoch_length=8, num_buckets=16)

    def test_empty_leaderset_rejected(self):
        with pytest.raises(ValueError):
            build_segments(epoch=0, leaders=[], num_nodes=4, epoch_length=8, num_buckets=16)

    def test_validate_epoch_partition_detects_gaps(self):
        segments = build_segments(epoch=0, leaders=[0, 1], num_nodes=4, epoch_length=8, num_buckets=16)
        broken = [segments[0]]
        with pytest.raises(ValueError):
            validate_epoch_partition(broken, 0, 8, 16)
