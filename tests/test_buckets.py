"""Unit tests for request buckets and the rotating bucket assignment."""

import pytest

from repro.core.buckets import (
    BucketPool,
    BucketQueue,
    assignment_for_epoch,
    bucket_of,
    buckets_for_leader,
    extra_buckets,
    init_buckets,
)
from repro.core.types import RequestId
from tests.conftest import make_request


class TestBucketOf:
    def test_deterministic(self):
        rid = RequestId(client=3, timestamp=9)
        assert bucket_of(rid, 64) == bucket_of(rid, 64)

    def test_within_range(self):
        for client in range(10):
            for ts in range(20):
                assert 0 <= bucket_of(RequestId(client, ts), 16) < 16

    def test_payload_independent(self):
        a = make_request(client=1, timestamp=5, payload=b"a")
        b = make_request(client=1, timestamp=5, payload=b"completely different")
        assert bucket_of(a.rid, 32) == bucket_of(b.rid, 32)

    def test_roughly_uniform(self):
        counts = [0] * 16
        for client in range(8):
            for ts in range(200):
                counts[bucket_of(RequestId(client, ts), 16)] += 1
        assert min(counts) > 40  # 100 expected per bucket

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            bucket_of(RequestId(0, 0), 0)


class TestAssignment:
    def test_init_buckets_partition_nodes(self):
        num_nodes, num_buckets = 4, 32
        seen = []
        for node in range(num_nodes):
            seen.extend(init_buckets(epoch=0, node=node, num_nodes=num_nodes, num_buckets=num_buckets))
        assert sorted(seen) == list(range(num_buckets))

    def test_init_buckets_rotate_with_epoch(self):
        a = init_buckets(epoch=0, node=0, num_nodes=4, num_buckets=16)
        b = init_buckets(epoch=1, node=0, num_nodes=4, num_buckets=16)
        assert a != b

    def test_extra_buckets_are_non_leader_buckets(self):
        leaders = [0, 1]
        extras = extra_buckets(epoch=0, leaders=leaders, num_nodes=4, num_buckets=16)
        for bucket in extras:
            owner = (bucket + 0) % 4
            assert owner not in leaders

    def test_paper_figure2_example(self):
        """8 buckets, 4 nodes, 2 leaders (nodes 2 and 3), epoch 1 (Figure 2)."""
        num_nodes, num_buckets, epoch = 4, 8, 1
        leaders = [2, 3]
        assert init_buckets(epoch, 2, num_nodes, num_buckets) == [1, 5]
        assert init_buckets(epoch, 3, num_nodes, num_buckets) == [2, 6]
        assert sorted(extra_buckets(epoch, leaders, num_nodes, num_buckets)) == [0, 3, 4, 7]
        assignment = assignment_for_epoch(epoch, leaders, num_nodes, num_buckets)
        # Every bucket assigned exactly once across the two leaders.
        assert sorted(assignment[2] + assignment[3]) == list(range(8))
        assert set(init_buckets(epoch, 2, num_nodes, num_buckets)) <= set(assignment[2])
        assert set(init_buckets(epoch, 3, num_nodes, num_buckets)) <= set(assignment[3])

    @pytest.mark.parametrize("epoch", [0, 1, 2, 5, 13])
    @pytest.mark.parametrize("leaders", [[0], [0, 1], [1, 3], [0, 1, 2, 3]])
    def test_assignment_partitions_buckets(self, epoch, leaders):
        num_nodes, num_buckets = 4, 64
        assignment = assignment_for_epoch(epoch, leaders, num_nodes, num_buckets)
        all_buckets = sorted(b for buckets in assignment.values() for b in buckets)
        assert all_buckets == list(range(num_buckets))

    @pytest.mark.parametrize("epoch", [0, 1, 3, 7])
    def test_fast_assignment_matches_per_leader_formula(self, epoch):
        num_nodes, num_buckets = 5, 40
        leaders = [0, 2, 4]
        fast = assignment_for_epoch(epoch, leaders, num_nodes, num_buckets)
        for leader in leaders:
            slow = buckets_for_leader(epoch, leader, leaders, num_nodes, num_buckets)
            assert sorted(fast[leader]) == slow

    def test_every_node_eventually_gets_every_bucket(self):
        """Rotation guarantee behind the liveness argument (Lemma 5.4)."""
        num_nodes, num_buckets = 4, 16
        leaders = list(range(num_nodes))
        seen = {node: set() for node in range(num_nodes)}
        for epoch in range(num_nodes * num_buckets):
            assignment = assignment_for_epoch(epoch, leaders, num_nodes, num_buckets)
            for node, buckets in assignment.items():
                seen[node].update(buckets)
        for node in range(num_nodes):
            assert seen[node] == set(range(num_buckets))

    def test_non_leader_raises_in_per_leader_formula(self):
        with pytest.raises(ValueError):
            buckets_for_leader(0, 3, [0, 1], 4, 16)


class TestBucketQueue:
    def test_fifo_order(self):
        queue = BucketQueue(0)
        requests = [make_request(timestamp=i) for i in range(5)]
        for request in requests:
            queue.add(request)
        assert queue.take_oldest(3) == requests[:3]
        assert queue.take_oldest(10) == requests[3:]

    def test_add_is_idempotent_while_pending(self):
        queue = BucketQueue(0)
        request = make_request()
        assert queue.add(request)
        assert not queue.add(request)
        assert len(queue) == 1

    def test_add_is_idempotent_after_removal(self):
        """Exactly-once semantics: a proposed request is not re-added on
        client re-transmission (Section 3.7)."""
        queue = BucketQueue(0)
        request = make_request()
        queue.add(request)
        queue.remove(request.rid)
        assert not queue.add(request)
        assert len(queue) == 0

    def test_resurrect_restores_fifo_position(self):
        queue = BucketQueue(0)
        first, second = make_request(timestamp=0), make_request(timestamp=1)
        queue.add(first)
        queue.add(second)
        queue.remove(first.rid)
        queue.resurrect(first)
        assert queue.peek_oldest() == first

    def test_remove_unknown_returns_none(self):
        queue = BucketQueue(0)
        assert queue.remove(RequestId(9, 9)) is None

    def test_forget_history_allows_readd(self):
        queue = BucketQueue(0)
        request = make_request()
        queue.add(request)
        queue.remove(request.rid)
        queue.forget_history(request.rid)
        assert queue.add(request)

    def test_pending_lists_in_order(self):
        queue = BucketQueue(0)
        requests = [make_request(timestamp=i) for i in range(4)]
        for request in reversed(requests):
            queue.add(request)
        # Arrival order (reversed insertion) is what counts.
        assert queue.pending() == list(reversed(requests))

    def test_add_after_remove_stays_idempotent_under_resubmission(self):
        """A flood of re-transmissions after proposal never re-enters the
        queue: only resurrect() (an aborted proposal) can bring it back."""
        queue = BucketQueue(0)
        request = make_request()
        queue.add(request)
        queue.remove(request.rid)  # proposed
        for _ in range(5):  # client resubmits on every epoch change
            assert not queue.add(request)
        assert len(queue) == 0
        queue.resurrect(request)  # the proposal aborted (⊥)
        assert len(queue) == 1
        assert not queue.add(request)  # still exactly once while pending

    def test_duplicate_readd_after_forget_history(self):
        """forget_history intentionally re-opens add(): after delivered-state
        GC the watermark check — not the queue — must reject resubmissions,
        which is why GC only collects ids below the low watermark."""
        queue = BucketQueue(0)
        request = make_request()
        queue.add(request)
        queue.remove(request.rid)
        assert not queue.add(request)  # remembered
        queue.forget_history(request.rid)
        assert queue.add(request)  # memory gone: add is possible again
        assert len(queue) == 1


class TestBucketPool:
    def test_add_routes_to_hash_bucket(self):
        pool = BucketPool(num_buckets=8)
        request = make_request(client=2, timestamp=7)
        assert pool.add_request(request)
        assert request.rid in pool.queue(pool.bucket_of(request.rid))

    def test_delivered_requests_never_readded(self):
        pool = BucketPool(num_buckets=8)
        request = make_request()
        pool.add_request(request)
        pool.mark_delivered(request)
        assert not pool.add_request(request)
        assert pool.is_delivered(request.rid)

    def test_cut_batch_respects_max_size_and_order(self):
        pool = BucketPool(num_buckets=4)
        requests = [make_request(client=c, timestamp=t) for c in range(3) for t in range(10)]
        for request in requests:
            pool.add_request(request)
        cut = pool.cut_batch(list(range(4)), max_size=12)
        assert len(cut) == 12
        assert len(set(r.rid for r in cut)) == 12

    def test_cut_batch_only_draws_from_given_buckets(self):
        pool = BucketPool(num_buckets=8)
        requests = [make_request(client=c, timestamp=t) for c in range(4) for t in range(8)]
        for request in requests:
            pool.add_request(request)
        allowed = [0, 1, 2, 3]
        cut = pool.cut_batch(allowed, max_size=100)
        for request in cut:
            assert pool.bucket_of(request.rid) in allowed

    def test_resurrect_skips_delivered(self):
        pool = BucketPool(num_buckets=4)
        kept, gone = make_request(client=0, timestamp=0), make_request(client=0, timestamp=1)
        pool.add_request(kept)
        pool.add_request(gone)
        cut = pool.cut_batch(list(range(4)), max_size=10)
        assert len(cut) == 2
        pool.mark_delivered(gone)
        pool.resurrect([kept, gone])
        assert pool.total_pending() == 1
        assert not pool.is_delivered(kept.rid)

    def test_pending_in_counts_by_bucket(self):
        pool = BucketPool(num_buckets=4)
        for i in range(20):
            pool.add_request(make_request(client=i % 3, timestamp=i))
        total = sum(pool.pending_in([b]) for b in range(4))
        assert total == pool.total_pending() == 20

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            BucketPool(0)

    def test_forget_delivered_below_collects_the_prefix(self):
        """Delivered-filter GC drops exactly the watermark-covered range and
        reports how much it collected."""
        pool = BucketPool(num_buckets=8)
        requests = [make_request(client=1, timestamp=t) for t in range(6)]
        for request in requests:
            pool.add_request(request)
            pool.mark_delivered(request)
        assert pool.delivered_count() == 6
        assert pool.forget_delivered_below(1, 0, 4) == 4
        assert pool.delivered_count() == 2
        for timestamp in range(4):
            assert not pool.is_delivered(RequestId(1, timestamp))
        for timestamp in (4, 5):
            assert pool.is_delivered(RequestId(1, timestamp))
        # Idempotent: re-collecting the same range drops nothing more.
        assert pool.forget_delivered_below(1, 0, 4) == 0
        # Other clients' state is untouched.
        other = make_request(client=2, timestamp=0)
        pool.add_request(other)
        pool.mark_delivered(other)
        pool.forget_delivered_below(1, 4, 6)
        assert pool.is_delivered(other.rid)
