"""Unit tests for the EpochManager and the Orderer."""

import pytest

from repro.core.config import ISSConfig, POLICY_BLACKLIST
from repro.core.log import Log
from repro.core.manager import EpochManager
from repro.core.orderer import Orderer, default_factory
from repro.core.sb import SBContext, SBInstance
from repro.core.segment import epoch_seq_nrs
from repro.core.types import NIL, SegmentDescriptor
from tests.conftest import make_batch, make_request


class RecordingInstance(SBInstance):
    """Minimal SB implementation used to test the Orderer lifecycle."""

    def __init__(self, context):
        super().__init__(context)
        self.started = False
        self.stopped = False
        self.messages = []

    def start(self):
        self.started = True

    def handle_message(self, src, message):
        self.messages.append((src, message))

    def stop(self):
        self.stopped = True


def make_context(segment: SegmentDescriptor, config: ISSConfig) -> SBContext:
    return SBContext(
        node_id=0,
        config=config,
        segment=segment,
        all_nodes=list(range(config.num_nodes)),
        send_fn=lambda dst, msg: None,
        local_fn=lambda msg: None,
        schedule_fn=lambda delay, fn: None,
        now_fn=lambda: 0.0,
        cut_batch_fn=lambda sn: make_batch(),
        validate_batch_fn=lambda batch: True,
        deliver_fn=lambda sn, value: None,
        pending_fn=lambda: 0,
    )


class TestEpochManager:
    def make_manager(self, **overrides) -> EpochManager:
        config = ISSConfig(
            num_nodes=overrides.pop("num_nodes", 4),
            epoch_length=overrides.pop("epoch_length", 8),
            min_segment_size=overrides.pop("min_segment_size", 1),
            batch_rate=overrides.pop("batch_rate", 16.0),
            **overrides,
        )
        return EpochManager(config)

    def test_leaders_default_to_all_nodes(self):
        manager = self.make_manager()
        assert manager.leaders_for(0) == [0, 1, 2, 3]

    def test_leaderset_capped_by_min_segment_size(self):
        manager = self.make_manager(num_nodes=8, epoch_length=8, min_segment_size=4)
        assert len(manager.leaders_for(0)) == 2

    def test_capped_leaderset_rotates_across_epochs(self):
        manager = self.make_manager(num_nodes=8, epoch_length=8, min_segment_size=4)
        selections = {tuple(manager.leaders_for(epoch)) for epoch in range(8)}
        assert len(selections) > 1  # different nodes get their turn

    def test_segments_partition_epoch(self):
        manager = self.make_manager()
        segments = manager.segments_for(2)
        sns = sorted(sn for segment in segments for sn in segment.seq_nrs)
        assert sns == list(epoch_seq_nrs(2, 8))

    def test_segments_cached(self):
        manager = self.make_manager()
        assert manager.segments_for(0) is manager.segments_for(0)

    def test_epoch_complete_requires_every_position(self):
        manager = self.make_manager()
        log = Log()
        for sn in range(7):
            log.commit(sn, NIL, epoch=0, now=0.0)
        assert not manager.epoch_complete(0, log)
        log.commit(7, NIL, epoch=0, now=0.0)
        assert manager.epoch_complete(0, log)

    def test_finish_epoch_updates_policy_history(self):
        manager = self.make_manager(leader_policy=POLICY_BLACKLIST)
        log = Log()
        segments = manager.segments_for(0)
        victim = segments[-1].leader
        for segment in segments:
            for sn in segment.seq_nrs:
                entry = NIL if segment.leader == victim else make_batch(make_request(timestamp=sn))
                log.commit(sn, entry, epoch=0, now=0.0)
        manager.finish_epoch(0, log)
        assert victim not in manager.leaders_for(1)

    def test_proposal_interval_scales_with_leaderset(self):
        manager = self.make_manager(batch_rate=16.0)
        assert manager.proposal_interval(0) == pytest.approx(4 / 16.0)

    def test_proposal_interval_zero_without_rate(self):
        manager = self.make_manager(batch_rate=None)
        assert manager.proposal_interval(0) == 0.0


class TestOrderer:
    def test_open_segment_starts_instance(self):
        config = ISSConfig(num_nodes=4, epoch_length=8, batch_rate=None)
        orderer = Orderer(lambda ctx: RecordingInstance(ctx))
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1), buckets=(0,))
        instance = orderer.open_segment(make_context(segment, config))
        assert instance.started
        assert orderer.has_instance((0, 0))
        assert orderer.instances_created == 1

    def test_messages_routed_by_instance_id(self):
        config = ISSConfig(num_nodes=4, epoch_length=8, batch_rate=None)
        orderer = Orderer(lambda ctx: RecordingInstance(ctx))
        seg_a = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0,), buckets=(0,))
        seg_b = SegmentDescriptor(epoch=0, leader=1, seq_nrs=(1,), buckets=(1,))
        a = orderer.open_segment(make_context(seg_a, config))
        b = orderer.open_segment(make_context(seg_b, config))
        assert orderer.handle_message((0, 1), src=2, payload="hello")
        assert b.messages == [(2, "hello")]
        assert a.messages == []

    def test_unknown_instance_returns_false(self):
        orderer = Orderer(lambda ctx: RecordingInstance(ctx))
        assert not orderer.handle_message((5, 0), src=1, payload="x")

    def test_stop_epoch_garbage_collects(self):
        config = ISSConfig(num_nodes=4, epoch_length=8, batch_rate=None)
        orderer = Orderer(lambda ctx: RecordingInstance(ctx))
        seg = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0,), buckets=(0,))
        instance = orderer.open_segment(make_context(seg, config))
        orderer.stop_epoch(0)
        assert instance.stopped
        assert not orderer.has_instance((0, 0))
        assert orderer.instances_stopped == 1

    def test_stop_all(self):
        config = ISSConfig(num_nodes=4, epoch_length=8, batch_rate=None)
        orderer = Orderer(lambda ctx: RecordingInstance(ctx))
        for leader in range(3):
            seg = SegmentDescriptor(epoch=0, leader=leader, seq_nrs=(leader,), buckets=(leader,))
            orderer.open_segment(make_context(seg, config))
        orderer.stop_all()
        assert orderer.instances_stopped == 3
        assert list(orderer.active_instances()) == []

    @pytest.mark.parametrize("protocol", ["pbft", "hotstuff", "raft", "consensus"])
    def test_default_factory_builds_each_protocol(self, protocol):
        byzantine = protocol != "raft"
        config = ISSConfig(
            num_nodes=4, protocol=protocol, byzantine=byzantine, epoch_length=8, batch_rate=None
        )
        factory = default_factory(config)
        from repro.crypto.signatures import KeyStore

        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0,), buckets=(0,))
        context = make_context(segment, config)
        context.key_store = KeyStore()
        instance = factory(context)
        assert isinstance(instance, SBInstance)

    def test_default_factory_rejects_unknown_protocol(self):
        config = ISSConfig(num_nodes=4, epoch_length=8, batch_rate=None)
        config.protocol = "unknown"  # bypass __post_init__ validation on purpose
        with pytest.raises(ValueError):
            default_factory(config)
