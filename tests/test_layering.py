"""Boundary lint: protocol code must not depend on the simulator.

The transport-agnostic node boundary (``repro.runtime.api``) only holds if
nothing in the protocol layers — ``core``, ``pbft``, ``hotstuff``,
``raft``, ``consensus``, plus the shared ``runtime``, ``storage``,
``crypto`` and ``app`` layers — transitively imports ``repro.sim``.  These
tests import each protocol layer in a **fresh interpreter** and assert no
``repro.sim`` module was pulled into ``sys.modules``, so a future import
from the simulator anywhere in the dependency closure fails CI
immediately.

The simulator-side shims (``repro.sim.batching``, ``repro.sim.faults``)
must keep re-exporting the runtime classes *by identity*, not by copy —
isinstance checks and pickled golden traces rely on it.
"""

import subprocess
import sys

#: Protocol-layer module roots that must stay simulator-free.
PROTOCOL_MODULES = [
    "repro.core.iss",
    "repro.core.client",
    "repro.pbft.pbft",
    "repro.hotstuff.hotstuff",
    "repro.raft.raft",
    "repro.consensus.sb_consensus",
    "repro.runtime.api",
    "repro.runtime.wire",
    "repro.runtime.faults",
    "repro.storage.node_storage",
    "repro.storage.durable",
    "repro.crypto.signatures",
    "repro.app.kv",
    "repro.net.transport",
    "repro.net.host",
]


def _imported_sim_modules(imports):
    """Import ``imports`` in a fresh interpreter; return loaded sim modules."""
    script = (
        "import sys\n"
        + "".join(f"import {module}\n" for module in imports)
        + "print(sorted(m for m in sys.modules if m.startswith('repro.sim')))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    return eval(result.stdout.strip())  # noqa: S307 - our own printed list


def test_protocol_layers_never_import_the_simulator():
    loaded = _imported_sim_modules(PROTOCOL_MODULES)
    assert loaded == [], (
        f"protocol modules transitively imported the simulator: {loaded}; "
        "the runtime boundary (repro.runtime.api) has been breached"
    )


def test_each_protocol_root_is_independently_sim_free():
    # Import one at a time so a breach is attributed to the module that
    # introduced it, not to whichever import happened to run first.
    for module in PROTOCOL_MODULES:
        loaded = _imported_sim_modules([module])
        assert loaded == [], f"{module} transitively imports {loaded}"


def test_lazy_package_import_stays_sim_free():
    # `import repro` itself (PEP 562 lazy exports) must not load anything:
    # only touching a simulator-backed attribute may pull repro.sim in.
    script = (
        "import sys, repro\n"
        "assert not any(m.startswith('repro.sim') for m in sys.modules)\n"
        "assert not any(m.startswith('repro.core') for m in sys.modules)\n"
        "repro.ISSConfig\n"
        "assert not any(m.startswith('repro.sim') for m in sys.modules)\n"
        "print('ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    assert result.stdout.strip() == "ok"


def test_sim_shims_preserve_class_identity():
    from repro.runtime.faults import CrashSpec as runtime_crash
    from repro.runtime.wire import MessageBatcher as runtime_batcher
    from repro.sim.batching import MessageBatcher as sim_batcher
    from repro.sim.faults import CrashSpec as sim_crash

    assert sim_crash is runtime_crash
    assert sim_batcher is runtime_batcher
