"""Unit tests for leader-selection policies (Algorithm 4)."""

import pytest

from repro.core.config import ISSConfig, POLICY_BACKOFF, POLICY_BLACKLIST, POLICY_SIMPLE
from repro.core.leader_policy import (
    BackoffPolicy,
    BlacklistPolicy,
    FailureHistory,
    SimplePolicy,
    make_policy,
)
from repro.core.log import Log
from repro.core.types import NIL, SegmentDescriptor
from tests.conftest import make_batch, make_request


def history_with_failures(failures):
    """Build a FailureHistory where ``failures`` maps node -> (sn, epoch)."""
    history = FailureHistory()
    for node, (sn, epoch) in failures.items():
        segment = SegmentDescriptor(epoch=epoch, leader=node, seq_nrs=(sn,), buckets=())
        log = Log()
        log.commit(sn, NIL, epoch=epoch, now=0.0)
        history.record_epoch(epoch, [segment], log)
    return history


class TestFailureHistory:
    def test_records_nil_positions_per_leader(self):
        log = Log()
        log.commit(0, make_batch(make_request()), epoch=0, now=0.0)
        log.commit(1, NIL, epoch=0, now=0.0)
        segments = [
            SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0,), buckets=()),
            SegmentDescriptor(epoch=0, leader=1, seq_nrs=(1,), buckets=()),
        ]
        history = FailureHistory()
        history.record_epoch(0, segments, log)
        assert history.last_failure(0) == -1
        assert history.last_failure(1) == 1
        assert history.failed_in_epoch(1, 0)
        assert not history.failed_in_epoch(0, 0)

    def test_keeps_highest_failure(self):
        history = history_with_failures({2: (5, 0)})
        log = Log()
        log.commit(9, NIL, epoch=1, now=0.0)
        history.record_epoch(1, [SegmentDescriptor(epoch=1, leader=2, seq_nrs=(9,), buckets=())], log)
        assert history.last_failure(2) == 9
        assert history.failed_in_epoch(2, 1)
        assert not history.failed_in_epoch(2, 0)


class TestSimplePolicy:
    def test_all_nodes_always_lead(self):
        policy = SimplePolicy(num_nodes=5, max_faulty=1)
        history = history_with_failures({0: (3, 0), 4: (1, 0)})
        for epoch in range(3):
            assert policy.leaders(epoch, history) == [0, 1, 2, 3, 4]

    def test_name(self):
        assert SimplePolicy(4, 1).name == POLICY_SIMPLE


class TestBlacklistPolicy:
    def test_excludes_most_recent_offenders_up_to_f(self):
        policy = BlacklistPolicy(num_nodes=7, max_faulty=2)
        history = history_with_failures({1: (5, 0), 3: (9, 0), 5: (2, 0)})
        leaders = policy.leaders(1, history)
        # The two highest failure positions (nodes 3 and 1) are excluded.
        assert 3 not in leaders
        assert 1 not in leaders
        assert 5 in leaders
        assert len(leaders) == 5

    def test_no_failures_means_everyone_leads(self):
        policy = BlacklistPolicy(num_nodes=4, max_faulty=1)
        assert policy.leaders(0, FailureHistory()) == [0, 1, 2, 3]

    def test_leaderset_never_below_two_thirds(self):
        """At least 2f+1 nodes always remain leaders."""
        policy = BlacklistPolicy(num_nodes=10, max_faulty=3)
        history = history_with_failures({n: (n, 0) for n in range(10)})
        leaders = policy.leaders(1, history)
        assert len(leaders) >= 7

    def test_crashed_node_stays_excluded(self):
        policy = BlacklistPolicy(num_nodes=4, max_faulty=1)
        history = history_with_failures({3: (7, 0)})
        for epoch in range(1, 6):
            assert 3 not in policy.leaders(epoch, history)


class TestBackoffPolicy:
    def test_ban_applied_after_failure(self):
        policy = BackoffPolicy(num_nodes=4, max_faulty=1, ban_period=2, decrease=1)
        history = history_with_failures({2: (6, 0)})
        policy.epoch_finished(0, history)
        assert 2 not in policy.leaders(1, history)
        assert policy.penalty_of(2) == 2

    def test_ban_decreases_linearly_when_behaving(self):
        policy = BackoffPolicy(num_nodes=4, max_faulty=1, ban_period=2, decrease=1)
        history = history_with_failures({2: (6, 0)})
        policy.epoch_finished(0, history)
        policy.epoch_finished(1, history)  # behaved in epoch 1
        policy.epoch_finished(2, history)
        assert policy.penalty_of(2) == 0
        assert 2 in policy.leaders(3, history)

    def test_ban_doubles_on_repeat_offense(self):
        policy = BackoffPolicy(num_nodes=4, max_faulty=1, ban_period=4, decrease=1)
        history = FailureHistory()
        log = Log()
        log.commit(0, NIL, epoch=0, now=0.0)
        seg = SegmentDescriptor(epoch=0, leader=1, seq_nrs=(0,), buckets=())
        history.record_epoch(0, [seg], log)
        policy.epoch_finished(0, history)
        assert policy.penalty_of(1) == 4
        log2 = Log()
        log2.commit(10, NIL, epoch=1, now=0.0)
        history.record_epoch(1, [SegmentDescriptor(epoch=1, leader=1, seq_nrs=(10,), buckets=())], log2)
        policy.epoch_finished(1, history)
        assert policy.penalty_of(1) == 7  # 4*2 - 1

    def test_falls_back_to_all_nodes_when_everyone_banned(self):
        policy = BackoffPolicy(num_nodes=2, max_faulty=0, ban_period=3, decrease=1)
        history = history_with_failures({0: (0, 0), 1: (1, 0)})
        policy.epoch_finished(0, history)
        assert policy.leaders(1, history) == [0, 1]


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [(POLICY_SIMPLE, SimplePolicy), (POLICY_BLACKLIST, BlacklistPolicy), (POLICY_BACKOFF, BackoffPolicy)],
    )
    def test_factory(self, name, cls):
        config = ISSConfig(num_nodes=4, leader_policy=name)
        assert isinstance(make_policy(config), cls)
